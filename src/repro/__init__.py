"""repro — a faithful Python reproduction of EasyView (CGO 2024).

EasyView brings performance profiles into IDEs: a generic calling-context-
tree representation of profiles, converters from mainstream profiler
formats, an analysis engine (transforms, aggregation, differencing, derived
metrics), flame-graph/tree-table visualization, and an LSP-style protocol
binding views to source code.

Quickstart::

    from repro import ProfileBuilder, open_profile
    from repro.viz import render_flamegraph

See README.md for the full tour.
"""

from .builder import ProfileBuilder, validate
from .core import (CCT, CCTNode, Frame, FrameKind, Metric, MetricSchema,
                   MonitoringPoint, PointKind, Profile, ProfileMeta,
                   intern_frame)
from .core.serialize import dump, dumps, load, loads
from .errors import (AnalysisError, ConversionError, EasyViewError,
                     FormatError, FormulaError, ProtocolError, SchemaError,
                     Span)

__version__ = "1.0.0"

__all__ = [
    "ProfileBuilder", "validate", "CCT", "CCTNode", "Frame", "FrameKind",
    "Metric", "MetricSchema", "MonitoringPoint", "PointKind", "Profile",
    "ProfileMeta", "intern_frame", "dump", "dumps", "load", "loads",
    "EasyViewError", "FormatError", "ConversionError", "SchemaError",
    "AnalysisError", "FormulaError", "ProtocolError", "Span", "open_profile",
    "__version__",
]


def open_profile(path, format=None):
    """Open a profile of any supported format (auto-sniffed by default).

    A convenience wrapper around :func:`repro.converters.open_profile`,
    imported lazily to keep base import time low.
    """
    from .converters import open_profile as _open
    return _open(path, format=format)
