"""The agent's on-disk spool: captures that outlived a collector outage.

When every ship attempt for a capture fails, the agent parks the
envelope here and moves on — sampling must not stop because the network
did.  On the next successful contact the spool drains oldest-first, so
the store receives the stream in capture order (the collector tolerates
disorder anyway; digests, not arrival order, decide identity).

Layout: one record per file, named ``<seq>-<digest12>.evspool`` inside
the spool directory.  Single-file records make crash-safety trivial —
a record is written to a ``.tmp`` name and renamed into place, so a
reader never sees a half-written spool entry; anything left as ``.tmp``
is an aborted write and is swept on the next :meth:`DiskSpool.put`.

The spool is bounded (``max_records``): when full, the *oldest* record
is dropped to make room, on the theory that a regression watch cares
far more about fresh captures than about stale ones — and a counter
(``continuous.agent.spool_dropped``) makes every drop visible.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

from ..obs import get_registry
from .envelope import CaptureEnvelope, EnvelopeError

_SUFFIX = ".evspool"
_TMP_SUFFIX = ".tmp"


class DiskSpool:
    """A directory of pending capture envelopes, drained oldest-first."""

    def __init__(self, root: str, max_records: int = 256) -> None:
        if max_records < 1:
            raise ValueError("a spool must hold at least one record")
        self.root = os.path.abspath(root)
        self.max_records = max_records
        os.makedirs(self.root, exist_ok=True)
        registry = get_registry()
        self._dropped = registry.counter(
            "continuous.agent.spool_dropped",
            "spooled captures evicted because the spool was full")
        self._depth = registry.gauge(
            "continuous.agent.spool_depth",
            "capture envelopes currently parked on disk")
        self._depth.set(len(self._names()))

    # -- internals ---------------------------------------------------------

    def _names(self) -> List[str]:
        """Record filenames in replay (oldest-first) order.

        The ``<seq>`` prefix is zero-padded at write time, so plain
        lexicographic order is capture order.
        """
        try:
            entries = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n for n in entries if n.endswith(_SUFFIX))

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _sweep_tmp(self) -> None:
        for name in os.listdir(self.root):
            if name.endswith(_TMP_SUFFIX):
                try:
                    os.unlink(self._path(name))
                except OSError:
                    pass

    # -- queue operations --------------------------------------------------

    def __len__(self) -> int:
        return len(self._names())

    def put(self, envelope: CaptureEnvelope) -> str:
        """Park one envelope; returns the record filename.

        Evicts the oldest record first when the spool is at capacity.
        """
        self._sweep_tmp()
        names = self._names()
        while len(names) >= self.max_records:
            victim = names.pop(0)
            try:
                os.unlink(self._path(victim))
            except OSError:
                pass
            self._dropped.inc()
        name = "%016d-%s%s" % (envelope.seq, envelope.digest[:12], _SUFFIX)
        tmp = self._path(name + _TMP_SUFFIX)
        with open(tmp, "wb") as handle:
            handle.write(envelope.to_bytes())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path(name))
        self._depth.set(len(names) + 1)
        return name

    def peek(self) -> Optional[CaptureEnvelope]:
        """The oldest spooled envelope, or None when empty.

        A record that no longer parses (torn by outside interference or
        a partial disk) is deleted and skipped — the spool never wedges
        on one bad file.
        """
        for name in self._names():
            try:
                with open(self._path(name), "rb") as handle:
                    return CaptureEnvelope.from_bytes(handle.read())
            except (OSError, EnvelopeError):
                try:
                    os.unlink(self._path(name))
                except OSError:
                    pass
        return None

    def pop(self) -> None:
        """Discard the oldest record (its envelope was shipped)."""
        names = self._names()
        if names:
            try:
                os.unlink(self._path(names[0]))
            except OSError:
                pass
        self._depth.set(max(0, len(names) - 1))

    def drain(self) -> Iterator[CaptureEnvelope]:
        """Yield envelopes oldest-first, removing each *after* it is
        yielded — callers that stop mid-drain (the collector went away
        again) keep the unshipped tail on disk."""
        while True:
            envelope = self.peek()
            if envelope is None:
                return
            yield envelope
            self.pop()
