"""The capture envelope: one profile plus its shipping metadata.

A :class:`CaptureEnvelope` is the unit both halves of the loop agree on.
The agent wraps every capture in one; the collector unwraps it from an
HTTP request; the spool persists it byte-for-byte between the two when
the collector is unreachable.

Two serializations, same fields:

* **HTTP** — the profile blob travels as the POST body and the metadata
  as ``X-Easyview-*`` headers (labels JSON-encoded in one header), so
  the collector can admission-check and dedup an upload *before*
  parsing the body;
* **spool** — ``EVSPOOL1 <json metadata>\\n<blob>``, a self-describing
  single-file record (magic + one metadata line + raw bytes) that
  replays losslessly after an outage.

The ``digest`` is the BLAKE2b of the serialized profile bytes.  Content
digests, not sequence numbers, drive deduplication: a spool replay that
races a late success, or a retry whose response was lost, re-sends the
same bytes and therefore the same digest — the collector stores one
record either way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import EasyViewError

SPOOL_MAGIC = b"EVSPOOL1"

#: HTTP header names for every metadata field (the labels header carries
#: a JSON object; everything else is a scalar).
HEADER_SERVICE = "X-Easyview-Service"
HEADER_HOST = "X-Easyview-Host"
HEADER_TYPE = "X-Easyview-Type"
HEADER_SEQ = "X-Easyview-Seq"
HEADER_FORMAT = "X-Easyview-Format"
HEADER_TIME = "X-Easyview-Time-Nanos"
HEADER_LABELS = "X-Easyview-Labels"
HEADER_DIGEST = "X-Easyview-Digest"


class EnvelopeError(EasyViewError):
    """A malformed envelope (bad spool record or upload headers)."""


def blob_digest(blob: bytes) -> str:
    """Content digest of a capture's profile bytes."""
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass
class CaptureEnvelope:
    """One captured profile, addressed for shipping."""

    service: str
    host: str
    ptype: str
    seq: int
    blob: bytes
    format: str = "easyview"
    time_nanos: int = 0
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.service:
            raise EnvelopeError("an envelope needs a service name")
        if not isinstance(self.blob, bytes) or not self.blob:
            raise EnvelopeError("an envelope needs a non-empty blob")
        self.seq = int(self.seq)
        self.time_nanos = int(self.time_nanos)

    @property
    def digest(self) -> str:
        return blob_digest(self.blob)

    # -- metadata ----------------------------------------------------------

    def meta(self) -> Dict[str, object]:
        """The shipping metadata as plain JSON-ready data."""
        return {
            "service": self.service,
            "host": self.host,
            "type": self.ptype,
            "seq": self.seq,
            "format": self.format,
            "timeNanos": self.time_nanos,
            "labels": dict(self.labels),
            "digest": self.digest,
        }

    def store_labels(self) -> Dict[str, str]:
        """Ingest labels for the ProfStore record.

        The agent's identity labels plus the content digest — the digest
        label is what lets a restarted collector re-prime its dedup set
        from the store index alone.
        """
        labels = dict(self.labels)
        labels.setdefault("host", self.host)
        labels["agent_seq"] = str(self.seq)
        labels["digest"] = self.digest
        return labels

    # -- HTTP form ---------------------------------------------------------

    def to_headers(self) -> Dict[str, str]:
        """The metadata as HTTP request headers (body carries the blob)."""
        return {
            HEADER_SERVICE: self.service,
            HEADER_HOST: self.host,
            HEADER_TYPE: self.ptype,
            HEADER_SEQ: str(self.seq),
            HEADER_FORMAT: self.format,
            HEADER_TIME: str(self.time_nanos),
            HEADER_LABELS: json.dumps(self.labels, sort_keys=True),
            HEADER_DIGEST: self.digest,
        }

    @classmethod
    def from_headers(cls, headers: Mapping[str, str],
                     blob: bytes) -> "CaptureEnvelope":
        """Rebuild an envelope from upload headers plus the body.

        Raises :class:`EnvelopeError` on missing/malformed metadata —
        including a digest header that does not match the body, which
        catches truncated or corrupted uploads before they reach the
        store.
        """
        def get(name: str, default: Optional[str] = None) -> str:
            value = headers.get(name, default)
            if value is None:
                raise EnvelopeError("missing upload header %s" % name)
            return value

        try:
            labels_raw = json.loads(get(HEADER_LABELS, "{}"))
        except ValueError as exc:
            raise EnvelopeError("unparseable %s header: %s"
                                % (HEADER_LABELS, exc))
        if not isinstance(labels_raw, dict):
            raise EnvelopeError("%s must be a JSON object" % HEADER_LABELS)
        try:
            envelope = cls(
                service=get(HEADER_SERVICE),
                host=get(HEADER_HOST, ""),
                ptype=get(HEADER_TYPE, "cpu"),
                seq=int(get(HEADER_SEQ, "0")),
                blob=blob,
                format=get(HEADER_FORMAT, "easyview"),
                time_nanos=int(get(HEADER_TIME, "0")),
                labels={str(k): str(v) for k, v in labels_raw.items()},
            )
        except ValueError as exc:
            raise EnvelopeError("malformed upload header: %s" % exc)
        claimed = headers.get(HEADER_DIGEST)
        if claimed is not None and claimed != envelope.digest:
            raise EnvelopeError(
                "digest mismatch: header says %s, body hashes to %s"
                % (claimed, envelope.digest))
        return envelope

    # -- spool form --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """The single-file spool record."""
        meta = json.dumps(self.meta(), sort_keys=True).encode("utf-8")
        return SPOOL_MAGIC + b" " + meta + b"\n" + self.blob

    @classmethod
    def from_bytes(cls, data: bytes) -> "CaptureEnvelope":
        """Parse a spool record; raises :class:`EnvelopeError` if invalid."""
        prefix = SPOOL_MAGIC + b" "
        if not data.startswith(prefix):
            raise EnvelopeError("not a spool record (bad magic)")
        newline = data.find(b"\n", len(prefix))
        if newline < 0:
            raise EnvelopeError("truncated spool record (no metadata line)")
        try:
            meta = json.loads(data[len(prefix):newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise EnvelopeError("unparseable spool metadata: %s" % exc)
        blob = data[newline + 1:]
        try:
            envelope = cls(
                service=str(meta["service"]),
                host=str(meta.get("host", "")),
                ptype=str(meta.get("type", "cpu")),
                seq=int(meta.get("seq", 0)),
                blob=blob,
                format=str(meta.get("format", "easyview")),
                time_nanos=int(meta.get("timeNanos", 0)),
                labels={str(k): str(v)
                        for k, v in dict(meta.get("labels") or {}).items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EnvelopeError("malformed spool metadata: %s" % exc)
        claimed = meta.get("digest")
        if claimed is not None and claimed != envelope.digest:
            raise EnvelopeError(
                "spool record corrupt: metadata digest %s, blob hashes to %s"
                % (claimed, envelope.digest))
        return envelope


def sort_key(envelope: CaptureEnvelope) -> Tuple[str, int]:
    """Replay order: by service, then capture sequence."""
    return (envelope.service, envelope.seq)
