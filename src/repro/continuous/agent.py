"""The capture agent: sample on a cadence, stamp, ship, spool.

An agent binds four pieces:

* a **source** — anything callable returning a
  :class:`~repro.core.profile.Profile` per tick.  Two ship in-repo:
  :class:`SamplerSource` wraps the wall-clock
  :class:`~repro.profilers.sampling.SamplingProfiler` around a target
  callable, and :class:`MachineSource` runs a named
  :class:`~repro.profilers.workloads.SCENARIOS` workload (the
  deterministic path the tests and the CI smoke job use);
* a **shipper** — :class:`HTTPShipper` POSTs envelopes to a collector's
  ``/upload``; tests inject any callable with the same contract;
* a **retry policy** — capped exponential backoff with full jitter
  (decorrelated retries keep a fleet of agents from stampeding a
  recovering collector in lockstep);
* a **spool** — where captures go when every attempt fails, replayed
  ahead of fresh captures on the next successful contact.

Every moving part that touches time or randomness (``clock``,
``sleep``, ``rng``) is injectable, so the retry schedule and the
cadence are exactly testable without wall-clock waits.
"""

from __future__ import annotations

import random
import socket
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.profile import Profile
from ..core.serialize import dumps as serialize_profile
from ..errors import EasyViewError
from ..obs import get_registry, get_tracer
from .envelope import CaptureEnvelope
from .spool import DiskSpool

_tracer = get_tracer()


class ShipError(EasyViewError):
    """A ship attempt failed.

    ``retryable`` distinguishes transient refusals (connection errors,
    429/503 with a retry hint) from permanent rejections (400/413/422 —
    re-sending the same bytes can never succeed, so the agent drops the
    capture and says so instead of spooling it forever).
    """

    def __init__(self, message: str, retryable: bool = True,
                 retry_after_ms: Optional[int] = None) -> None:
        super().__init__(message)
        self.retryable = retryable
        self.retry_after_ms = retry_after_ms


@dataclass
class RetryPolicy:
    """Capped exponential backoff with full jitter."""

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0

    def delay(self, attempt: int, rng: Callable[[], float],
              retry_after_ms: Optional[int] = None) -> float:
        """Seconds to wait after failed attempt ``attempt`` (0-based).

        The exponential ceiling doubles per attempt; the actual delay is
        uniform in [0, ceiling] ("full jitter").  A server-provided
        retry hint becomes the floor — never retry sooner than the
        collector asked.
        """
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        delay = ceiling * rng()
        if retry_after_ms is not None:
            delay = max(delay, retry_after_ms / 1000.0)
        return delay


# -- sources ---------------------------------------------------------------


class SamplerSource:
    """Each tick: run ``target()`` under the in-repo sampling profiler."""

    def __init__(self, target: Callable[[], Any],
                 interval_seconds: float = 0.001,
                 all_threads: bool = False) -> None:
        self.target = target
        self.interval_seconds = interval_seconds
        self.all_threads = all_threads

    def __call__(self) -> Profile:
        from ..profilers.sampling import SamplingProfiler
        profiler = SamplingProfiler(interval_seconds=self.interval_seconds,
                                    all_threads=self.all_threads)
        _, profile = profiler.profile(self.target)
        return profile


class MachineSource:
    """Each tick: run one named deterministic workload scenario.

    ``params`` pass through to the scenario builder; a per-tick
    ``seed`` offset (when the scenario accepts one) keeps successive
    captures distinct-but-reproducible.
    """

    def __init__(self, scenario: str, vary_seed: bool = True,
                 **params: Any) -> None:
        from ..profilers.workloads import SCENARIOS
        if scenario not in SCENARIOS:
            raise EasyViewError(
                "unknown scenario %r (have: %s)"
                % (scenario, ", ".join(sorted(SCENARIOS))))
        self.scenario = scenario
        self.params = params
        #: Offset the builder's seed per tick so successive captures are
        #: distinct (identical bytes dedup away at the collector) while
        #: staying reproducible.  Off for builders without a ``seed``.
        self.vary_seed = vary_seed
        self.ticks = 0

    def __call__(self) -> Profile:
        import inspect
        from ..profilers.workloads import SCENARIOS
        builder = SCENARIOS[self.scenario]
        params = dict(self.params)
        if self.vary_seed and "seed" in inspect.signature(builder).parameters:
            base = params.get(
                "seed", inspect.signature(builder).parameters["seed"].default)
            params["seed"] = int(base) + self.ticks
        self.ticks += 1
        return builder(**params)


# -- shippers --------------------------------------------------------------


class HTTPShipper:
    """POST envelopes to a collector's ``/upload`` endpoint."""

    def __init__(self, url: str, timeout: float = 5.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def __call__(self, envelope: CaptureEnvelope) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.url + "/upload", data=envelope.blob,
            headers=dict(envelope.to_headers(),
                         **{"Content-Type": "application/octet-stream"}),
            method="POST")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                import json
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            retry_after = exc.headers.get("Retry-After-Ms")
            raise ShipError(
                "collector said %d: %s" % (exc.code, body.strip()),
                retryable=exc.code in (429, 503),
                retry_after_ms=int(retry_after) if retry_after else None)
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            raise ShipError("collector unreachable: %s" % exc,
                            retryable=True)


# -- the agent -------------------------------------------------------------


class CaptureAgent:
    """Capture → envelope → ship (with retries) → spool on failure."""

    def __init__(self, source: Callable[[], Profile],
                 shipper: Callable[[CaptureEnvelope], Dict[str, Any]],
                 service: str,
                 host: str = "",
                 ptype: str = "cpu",
                 labels: Optional[Dict[str, str]] = None,
                 cadence_seconds: float = 1.0,
                 spool: Optional[DiskSpool] = None,
                 retry: Optional[RetryPolicy] = None,
                 clock: Callable[[], float] = time.time,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Callable[[], float] = random.random) -> None:
        self.source = source
        self.shipper = shipper
        self.service = service
        self.host = host or socket.gethostname()
        self.ptype = ptype
        self.labels = dict(labels or {})
        self.cadence_seconds = cadence_seconds
        self.spool = spool
        self.retry = retry or RetryPolicy()
        self.clock = clock
        self.sleep = sleep
        self.rng = rng
        self.seq = 0

        registry = get_registry()
        self._captures = registry.counter(
            "continuous.agent.captures", "profiles captured")
        self._shipped = registry.counter(
            "continuous.agent.shipped", "envelopes accepted by a collector")
        self._retries = registry.counter(
            "continuous.agent.retries", "ship attempts beyond the first")
        self._spooled = registry.counter(
            "continuous.agent.spooled",
            "captures parked on disk after exhausting retries")
        self._replayed = registry.counter(
            "continuous.agent.replayed",
            "spooled captures later accepted by a collector")
        self._dropped = registry.counter(
            "continuous.agent.dropped",
            "captures permanently rejected by the collector")
        self._ship_seconds = registry.histogram(
            "continuous.agent.ship_seconds",
            description="latency of successful ship attempts")

    # -- one capture -------------------------------------------------------

    def capture(self) -> CaptureEnvelope:
        """Run the source once and wrap the result."""
        with _tracer.span("continuous.agent.capture",
                          service=self.service):
            profile = self.source()
        envelope = CaptureEnvelope(
            service=self.service, host=self.host, ptype=self.ptype,
            seq=self.seq, blob=serialize_profile(profile),
            time_nanos=(profile.meta.time_nanos
                        or int(self.clock() * 1e9)),
            labels=dict(self.labels))
        self.seq += 1
        self._captures.inc()
        return envelope

    def _ship_once(self, envelope: CaptureEnvelope) -> Dict[str, Any]:
        started = self.clock()
        result = self.shipper(envelope)
        self._ship_seconds.observe(max(0.0, self.clock() - started))
        return result

    def ship(self, envelope: CaptureEnvelope) -> Optional[Dict[str, Any]]:
        """Ship with retry/backoff; spool when the collector stays away.

        Returns the collector's response, or None when the envelope was
        spooled (transient exhaustion) or dropped (permanent rejection).
        """
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self._retries.inc()
            try:
                return self._ship_once(envelope)
            except ShipError as exc:
                if not exc.retryable:
                    self._dropped.inc()
                    return None
                if attempt + 1 >= self.retry.max_attempts:
                    break
                self.sleep(self.retry.delay(
                    attempt, self.rng, retry_after_ms=exc.retry_after_ms))
        if self.spool is not None:
            self.spool.put(envelope)
            self._spooled.inc()
        return None

    def replay_spool(self) -> int:
        """Drain spooled captures (oldest first); stop on first failure.

        Single-attempt sends: if the collector is still away, the rest of
        the spool stays put for the next tick instead of burning the full
        retry schedule per record.
        """
        if self.spool is None:
            return 0
        replayed = 0
        while True:
            envelope = self.spool.peek()
            if envelope is None:
                return replayed
            try:
                self._ship_once(envelope)
            except ShipError as exc:
                if exc.retryable:
                    return replayed
                self._dropped.inc()    # permanent: discard and keep going
            else:
                self._shipped.inc()
                self._replayed.inc()
            self.spool.pop()
            replayed += 1

    def tick(self) -> Optional[Dict[str, Any]]:
        """One cadence step: replay any backlog, then capture and ship."""
        self.replay_spool()
        envelope = self.capture()
        result = self.ship(envelope)
        if result is not None:
            self._shipped.inc()
        return result

    def run(self, ticks: int) -> List[Optional[Dict[str, Any]]]:
        """Run ``ticks`` cadence steps, sleeping the cadence in between."""
        results: List[Optional[Dict[str, Any]]] = []
        for i in range(ticks):
            if i:
                self.sleep(self.cadence_seconds)
            results.append(self.tick())
        return results
