"""Scheduled regression watch over a stored capture stream.

Every tick compares two adjacent time windows of one service's stream:

* the **current** window — ``(now - window, now]``;
* the **baseline** window — ``(now - window - baseline, now - window]``.

Each window is merged with the store's windowed aggregate
(:meth:`~repro.store.ProfileStore.query_window`), which keys the
engine's cache on the window's *membership digest* — repeated ticks
over an unchanged window never reload or re-merge profiles, which is
what makes a tight watch cadence affordable.  The two aggregates are
then compared with the existing differential engine
(:func:`repro.analysis.diff.diff_trees`) on the per-capture *mean*
column, so windows with different capture counts compare fairly.

Ranking attributes regressions to the frames that caused them: a
node's **self delta** is its inclusive delta minus its children's, so
a slowdown injected into one function ranks that function first — not
every ancestor on its call path (whose inclusive deltas are just as
large but explain nothing).  Ordering is completely deterministic
(self delta descending, then path) so reports golden-test cleanly.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..analysis.diff import TAG_ADDED, TAG_DELETED, diff_trees, summarize
from ..analysis.viewtree import ViewNode, ViewTree
from ..errors import EasyViewError
from ..obs import get_registry, get_tracer
from ..store.query import Query, parse_age, parse_query

_tracer = get_tracer()


@dataclass
class Regression:
    """One ranked entry of a watch report."""

    path: str
    tag: str
    baseline: float
    current: float
    delta: float          # inclusive current - baseline
    self_delta: float     # delta not explained by callees
    ratio: float          # current / baseline (0 when baseline is 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "tag": self.tag,
            "baseline": round(self.baseline, 6),
            "current": round(self.current, 6),
            "delta": round(self.delta, 6),
            "selfDelta": round(self.self_delta, 6),
            "ratio": round(self.ratio, 6),
        }


@dataclass
class WatchReport:
    """One tick's findings, JSON-ready and deterministically ordered."""

    query: str
    metric: str
    window_nanos: int
    baseline_nanos: int
    now_nanos: int
    current_captures: int
    baseline_captures: int
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    tags: Dict[str, int] = field(default_factory=dict)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "metric": self.metric,
            "windowNanos": self.window_nanos,
            "baselineNanos": self.baseline_nanos,
            "nowNanos": self.now_nanos,
            "currentCaptures": self.current_captures,
            "baselineCaptures": self.baseline_captures,
            "regressions": [r.to_dict() for r in self.regressions],
            "improvements": [r.to_dict() for r in self.improvements],
            "tags": dict(sorted(self.tags.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """The terminal rendering of this report."""
        lines = [
            "watch %s  metric=%s" % (self.query or "<all>", self.metric),
            "  current window: %d capture(s); baseline: %d capture(s)"
            % (self.current_captures, self.baseline_captures),
        ]
        if not self.current_captures or not self.baseline_captures:
            lines.append("  (not enough data in one of the windows)")
            return "\n".join(lines)
        if not self.regressions and not self.improvements:
            lines.append("  no change")
            return "\n".join(lines)
        if self.regressions:
            lines.append("  regressions (self delta, current/baseline):")
            for entry in self.regressions:
                lines.append("    [%s] %-44s %+.4g  x%.3f"
                             % (entry.tag, entry.path, entry.self_delta,
                                entry.ratio))
        if self.improvements:
            lines.append("  improvements:")
            for entry in self.improvements:
                lines.append("    [%s] %-44s %+.4g"
                             % (entry.tag, entry.path, entry.self_delta))
        return "\n".join(lines)


def _node_path(node: ViewNode) -> str:
    return " > ".join(n.frame.name for n in node.path())


def _pick_metric(tree: ViewTree, metric: Optional[str]) -> str:
    """Resolve the column to diff on.

    Aggregate schemas carry derived ``<metric>:<op>`` columns; the mean
    is the fair cross-window comparison (windows rarely hold the same
    number of captures).  An explicit ``metric`` naming an exact column
    wins; a bare input-metric name resolves to its ``:mean``.
    """
    names = tree.schema.names()
    if metric:
        if metric in names:
            return metric
        if "%s:mean" % metric in names:
            return "%s:mean" % metric
        raise EasyViewError("no metric %r in window aggregate (have: %s)"
                            % (metric, ", ".join(names)))
    for name in names:
        if name.endswith(":mean"):
            return name
    return names[0]


class RegressionWatch:
    """Windowed diff of a capture stream, scheduled or one-shot."""

    def __init__(self, store: Any, query: str = "",
                 window: str = "60s", baseline: Optional[str] = None,
                 metric: Optional[str] = None,
                 shape: str = "top_down",
                 min_self_delta: float = 0.0,
                 min_ratio: float = 1.0,
                 top: int = 20,
                 clock: Optional[Callable[[], int]] = None) -> None:
        self.store = store
        self.base_query = query
        self.window_nanos = parse_age(window)
        self.baseline_nanos = parse_age(baseline) if baseline \
            else self.window_nanos
        if self.window_nanos <= 0 or self.baseline_nanos <= 0:
            raise EasyViewError("watch windows must be positive")
        self.metric = metric
        self.shape = shape
        #: Absolute floor on a reported self delta — anything at or below
        #: is noise (0.0 keeps exact no-change windows empty without
        #: suppressing real movement in low-cost frames).
        self.min_self_delta = min_self_delta
        #: Relative floor: current/baseline must reach this to count as a
        #: regression (1.0 = any growth).
        self.min_ratio = min_ratio
        self.top = top
        self.clock = clock or getattr(store, "clock", None) \
            or (lambda: time.time_ns())

        registry = get_registry()
        self._ticks = registry.counter(
            "continuous.watch.ticks", "watch comparisons run")
        self._found = registry.counter(
            "continuous.watch.regressions", "ranked regressions reported")
        self._tick_seconds = registry.histogram(
            "continuous.watch.tick_seconds",
            description="latency of one watch comparison")

    # -- window selection --------------------------------------------------

    def _window_query(self, since: int, until: int) -> Query:
        query = parse_query(self.base_query, now_nanos=until)
        query.since_nanos = since + 1   # windows are (since, until]
        query.until_nanos = until
        return query

    def tick(self, now_nanos: Optional[int] = None) -> WatchReport:
        """Compare the two windows ending at ``now`` and rank the drift."""
        start = time.monotonic()
        now = int(now_nanos if now_nanos is not None else self.clock())
        split = now - self.window_nanos
        with _tracer.span("continuous.watch.tick"):
            current = self.store.query_window(
                self._window_query(split, now), shape=self.shape)
            baseline = self.store.query_window(
                self._window_query(split - self.baseline_nanos, split),
                shape=self.shape)
        report = self._compare(baseline, current, now)
        self._ticks.inc()
        self._found.inc(len(report.regressions))
        self._tick_seconds.observe(max(0.0, time.monotonic() - start))
        return report

    # -- comparison --------------------------------------------------------

    def _compare(self, baseline: Any, current: Any,
                 now: int) -> WatchReport:
        report = WatchReport(
            query=self.base_query, metric=self.metric or "",
            window_nanos=self.window_nanos,
            baseline_nanos=self.baseline_nanos, now_nanos=now,
            current_captures=len(current.entries),
            baseline_captures=len(baseline.entries))
        if baseline.tree is None or current.tree is None:
            # One empty window: nothing to diff.  (A service's first
            # window after deploy, or a stream gap — not a regression.)
            return report

        metric_name = _pick_metric(current.tree, self.metric)
        report.metric = metric_name
        schema = baseline.tree.schema.union(current.tree.schema)
        diff = diff_trees(baseline.tree, current.tree,
                          metric_index=schema.index_of(metric_name))
        index = diff.schema.index_of(metric_name)
        report.tags = summarize(diff)

        entries: List[Regression] = []
        for node in diff.nodes():
            if node is diff.root:
                continue
            before = node.baseline.get(index, 0.0)
            after = node.inclusive.get(index, 0.0)
            delta = after - before
            child_delta = sum(
                child.inclusive.get(index, 0.0)
                - child.baseline.get(index, 0.0)
                for child in node.children.values())
            self_delta = delta - child_delta
            ratio = after / before if before else 0.0
            entries.append(Regression(
                path=_node_path(node), tag=node.tag or "=",
                baseline=before, current=after, delta=delta,
                self_delta=self_delta, ratio=ratio))

        def floor(entry: Regression) -> float:
            # Aggregation sums floats in pool-arrival order, so "equal"
            # windows can differ by a few ulps; a scale-relative epsilon
            # keeps that noise out of reports without a unit-dependent
            # absolute threshold.
            noise = 1e-9 * (abs(entry.baseline) + abs(entry.current))
            return max(self.min_self_delta, noise)

        def keep_regression(entry: Regression) -> bool:
            if entry.tag == TAG_DELETED:
                return False
            if entry.self_delta <= floor(entry):
                return False
            if entry.tag != TAG_ADDED and entry.baseline \
                    and entry.current / entry.baseline < self.min_ratio:
                return False
            return True

        regressions = sorted(
            (e for e in entries if keep_regression(e)),
            key=lambda e: (-e.self_delta, e.path))
        improvements = sorted(
            (e for e in entries
             if e.self_delta < -floor(e) or e.tag == TAG_DELETED),
            key=lambda e: (e.self_delta, e.path))
        report.regressions = regressions[:self.top]
        report.improvements = improvements[:self.top]
        return report

    # -- scheduling --------------------------------------------------------

    def run(self, ticks: int, interval_seconds: float = 0.0,
            sleep: Callable[[float], None] = time.sleep,
            on_report: Optional[Callable[[WatchReport], None]] = None
            ) -> List[WatchReport]:
        """Run ``ticks`` comparisons on a fixed schedule."""
        reports: List[WatchReport] = []
        for i in range(ticks):
            if i and interval_seconds > 0:
                sleep(interval_seconds)
            report = self.tick()
            reports.append(report)
            if on_report is not None:
                on_report(report)
        return reports
