"""The collector: an HTTP ingest front for a :class:`ProfileStore`.

``http.server`` (threaded) is deliberately boring — one process, no
framework, stdlib only — because the interesting discipline all lives
in reused layers:

* **admission** — the same
  :class:`~repro.serve.admission.AdmissionController` the PVP socket
  server runs, with per-*service* source tracking.  A full server maps
  to HTTP 429, a flooding service to 429 with reason ``service``, a
  draining collector to 503; every denial carries ``Retry-After-Ms``
  so agents back off by the server's clock, not their own guess.
* **linting** — uploads run through
  :func:`repro.lint.lint_profile` with ``require_time=True`` (the
  EV312 gate): stampless captures are *accepted* with a warning (the
  store indexes them at ingest time, per EV312's contract), while
  rule errors (NaN metrics, structural damage) are rejected with 422
  and the diagnostics in the body.
* **dedup** — content digests (see :mod:`.envelope`).  The seen-set is
  primed from the store's own index at startup (every record carries
  its ``digest`` ingest label), so restarts do not re-admit bytes the
  store already holds.
* **storage** — accepted captures go through
  :meth:`~repro.store.ProfileStore.ingest`, whose WAL batches them
  into immutable segments at its own ``flush_records`` cadence.

Endpoints: ``POST /upload``, ``GET /healthz`` (JSON counters),
``GET /metrics`` (Prometheus text — satellite of this PR).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Set, Tuple

from ..lint import has_errors
from ..lint.profile_lint import lint_profile
from ..obs import get_registry, get_tracer, registry_prometheus
from ..serve.admission import AdmissionController, Denial
from .envelope import CaptureEnvelope, EnvelopeError

_tracer = get_tracer()

#: Default cap on one upload's body, in bytes.  Far above any profile the
#: workloads produce, far below what a misbehaving client could stream.
DEFAULT_MAX_BODY = 8 * 1024 * 1024


class Collector:
    """Threaded HTTP ingest front over one ProfileStore."""

    def __init__(self, store: Any, host: str = "127.0.0.1", port: int = 0,
                 max_pending: int = 32, max_service_queue: int = 8,
                 retry_after_ms: int = 50,
                 max_body_bytes: int = DEFAULT_MAX_BODY) -> None:
        self.store = store
        self.max_body_bytes = max_body_bytes
        self.admission = AdmissionController(
            max_pending=max_pending, max_source_queue=max_service_queue,
            retry_after_ms=retry_after_ms, source_reason="service")

        registry = get_registry()
        self._uploads = registry.counter(
            "continuous.collector.uploads", "captures accepted and stored")
        self._duplicates = registry.counter(
            "continuous.collector.duplicates",
            "uploads dropped as already-stored content")
        self._rejected = registry.counter(
            "continuous.collector.rejected",
            "uploads refused as malformed, oversized, or lint-invalid")
        self._denied = registry.counter(
            "continuous.collector.denied",
            "uploads refused by admission control")
        self._pending_gauge = registry.gauge(
            "continuous.collector.pending", "uploads currently in flight")
        self._ingest_seconds = registry.histogram(
            "continuous.collector.ingest_seconds",
            description="parse+lint+store latency of accepted uploads")

        self._lock = threading.Lock()
        self._seen: Set[str] = set()
        self._prime_seen()

        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- dedup -------------------------------------------------------------

    def _prime_seen(self) -> None:
        """Load every stored record's content digest into the seen-set."""
        try:
            entries = self.store.select("")
        except Exception:
            return
        with self._lock:
            for entry in entries:
                digest = entry.labels.get("digest")
                if digest:
                    self._seen.add(digest)

    def _mark_seen(self, digest: str) -> bool:
        """True when ``digest`` is new (and now claimed by this upload)."""
        with self._lock:
            if digest in self._seen:
                return False
            self._seen.add(digest)
            return True

    def _unmark(self, digest: str) -> None:
        with self._lock:
            self._seen.discard(digest)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://%s:%d" % (host, port)

    def start(self) -> "Collector":
        thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="easyview-collector", daemon=True)
        with self._lock:
            self._thread = thread
        thread.start()
        return self

    def drain(self) -> None:
        """Refuse new uploads; in-flight ones finish normally."""
        self.admission.start_drain()

    def stop(self, flush: bool = True) -> None:
        self._server.shutdown()
        with self._lock:  # claim the thread once; join it outside the lock
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        self._server.server_close()
        if flush:
            self.store.flush()

    def __enter__(self) -> "Collector":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- request handling --------------------------------------------------

    def handle_upload(self, headers: Any,
                      body: bytes) -> Tuple[int, Dict[str, Any]]:
        """Process one POST /upload; returns (status, JSON body).

        Order matters and is cheapest-first: admission (headers only) →
        size → envelope validation → dedup (digest only) → parse → lint
        → store.  A flood of duplicates or garbage never costs a parse.
        """
        service = headers.get("X-Easyview-Service", "") or "<unknown>"
        denial = self.admission.try_admit(source=service)
        if denial is not None:
            self._denied.inc()
            return self._denial_response(denial)
        self._pending_gauge.inc()
        try:
            with _tracer.span("continuous.collector.upload",
                              service=service) as span:
                status, payload = self._admit_upload(headers, body, span)
            return status, payload
        finally:
            self._pending_gauge.dec()
            self.admission.release(source=service)

    def _denial_response(self, denial: Denial) -> Tuple[int, Dict[str, Any]]:
        status = 503 if denial.reason == "draining" else 429
        return status, {"error": {"code": "denied",
                                  "message": "admission refused",
                                  **denial.to_dict()}}

    def _admit_upload(self, headers: Any, body: bytes,
                      span: Any) -> Tuple[int, Dict[str, Any]]:
        if len(body) > self.max_body_bytes:
            self._rejected.inc()
            return 413, {"error": {
                "code": "oversized",
                "message": "body is %d bytes; the cap is %d"
                           % (len(body), self.max_body_bytes)}}
        try:
            envelope = CaptureEnvelope.from_headers(headers, body)
        except EnvelopeError as exc:
            self._rejected.inc()
            return 400, {"error": {"code": "malformed", "message": str(exc)}}
        if span is not None:
            span.set("digest", envelope.digest)

        if not self._mark_seen(envelope.digest):
            self._duplicates.inc()
            return 200, {"status": "duplicate", "digest": envelope.digest}

        started = self.store.clock()
        try:
            from ..converters import parse_bytes
            try:
                profile = parse_bytes(envelope.blob, format=envelope.format)
            except Exception as exc:
                self._rejected.inc()
                self._unmark(envelope.digest)
                return 400, {"error": {
                    "code": "malformed",
                    "message": "unparseable %s profile: %s"
                               % (envelope.format, exc)}}

            # The agent stamps capture time on the envelope; a profile
            # whose own metadata lacks a timestamp inherits it here, so
            # the store's time index reflects *capture* time even when
            # spool replay lands the upload much later.  (EV312 then has
            # nothing to warn about.)
            if profile.meta.time_nanos <= 0 and envelope.time_nanos > 0:
                profile.meta.time_nanos = envelope.time_nanos

            diagnostics = lint_profile(
                profile, require_time=True,
                subject="%s/%s#%d" % (envelope.service, envelope.host,
                                      envelope.seq))
            if has_errors(diagnostics):
                self._rejected.inc()
                self._unmark(envelope.digest)
                return 422, {"error": {
                    "code": "lint",
                    "message": "profile failed lint",
                    "diagnostics": [d.to_dict() for d in diagnostics
                                    if d.severity.name == "ERROR"]}}

            result = self.store.ingest(
                profile, service=envelope.service, ptype=envelope.ptype,
                labels=envelope.store_labels())
        except Exception:
            self._unmark(envelope.digest)
            raise
        self._uploads.inc()
        self._ingest_seconds.observe(
            max(0.0, (self.store.clock() - started) / 1e9))
        return 200, {
            "status": "stored",
            "digest": envelope.digest,
            "seq": result.entry.seq,
            "timeNanos": result.entry.time_nanos,
            "assignedTime": result.assigned_time,
            "warnings": [d.to_dict() for d in result.diagnostics
                         if d.severity.name != "ERROR"],
        }

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.admission.draining else "ok",
            "pending": self.admission.pending,
            "uploads": self._uploads.value,
            "duplicates": self._duplicates.value,
            "rejected": self._rejected.value,
            "denied": self._denied.value,
            "store": {"root": self.store.root,
                      "records": len(self.store.select(""))},
        }


def _make_handler(collector: Collector) -> type:
    """The BaseHTTPRequestHandler subclass bound to one collector."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "easyview-collector"

        # http.server logs every request to stderr by default; the
        # collector's telemetry lives in repro.obs instead.
        def log_message(self, format: str, *args: Any) -> None:
            pass

        def _send_json(self, status: int, payload: Dict[str, Any],
                       extra_headers: Optional[Dict[str, str]] = None
                       ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def do_POST(self) -> None:
            if self.path != "/upload":
                self._send_json(404, {"error": {"code": "not_found",
                                                "message": self.path}})
                return
            length = int(self.headers.get("Content-Length", "0") or 0)
            if length > collector.max_body_bytes:
                # Refuse before reading: answer 413 from the header alone
                # and drop the connection rather than swallow the body.
                self.close_connection = True
                collector._rejected.inc()
                self._send_json(413, {"error": {
                    "code": "oversized",
                    "message": "declared %d bytes; the cap is %d"
                               % (length, collector.max_body_bytes)}})
                return
            body = self.rfile.read(length)
            status, payload = collector.handle_upload(self.headers, body)
            extra = {}
            error = payload.get("error", {})
            if "retryAfterMs" in error:
                extra["Retry-After-Ms"] = str(error["retryAfterMs"])
            self._send_json(status, payload, extra)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._send_json(200, collector.health())
            elif self.path == "/metrics":
                body = registry_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(404, {"error": {"code": "not_found",
                                                "message": self.path}})

    return Handler
