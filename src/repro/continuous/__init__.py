"""``repro.continuous``: the continuous-profiling loop.

The paper's workflow is interactive — a developer opens one profile in
the IDE and explores it.  This package closes the *fleet* loop around
that workflow, the way production continuous profilers (Google-Wide
Profiling, Parca, Pyroscope) do, while reusing every layer the repo
already has:

* :mod:`.agent` — a capture agent that samples a target on a cadence
  (the in-repo :class:`~repro.profilers.sampling.SamplingProfiler` or a
  deterministic :class:`~repro.profilers.machine.ProgramMachine`
  scenario), stamps each capture with ``service``/``host``/``seq``
  labels, and ships it over HTTP with retry/backoff/jitter plus an
  on-disk :mod:`spool <.spool>` that rides out collector outages;
* :mod:`.collector` — an ``http.server``-based ingest front that reuses
  :class:`repro.serve.admission.AdmissionController` (the socket
  server's discipline, transport-independent since this PR), lints each
  upload, dedups by content digest, and lands accepted captures in a
  :class:`~repro.store.ProfileStore`;
* :mod:`.watch` — a scheduled regression watch running windowed
  aggregate queries over the stored stream and diffing the current
  window against a baseline window with the existing diff engine,
  producing a ranked, deterministic regression report.

Everything self-reports through :mod:`repro.obs`, so the loop's health
(captures, ships, spools, dedups, rejections, watch ticks) is visible in
``easyview obs metrics`` — including the Prometheus rendering the
collector serves at ``GET /metrics``.
"""

from __future__ import annotations

from .agent import CaptureAgent, MachineSource, RetryPolicy, SamplerSource
from .collector import Collector
from .envelope import CaptureEnvelope, EnvelopeError
from .spool import DiskSpool
from .watch import RegressionWatch, WatchReport

__all__ = [
    "CaptureAgent", "CaptureEnvelope", "Collector", "DiskSpool",
    "EnvelopeError", "MachineSource", "RegressionWatch", "RetryPolicy",
    "SamplerSource", "WatchReport",
]
