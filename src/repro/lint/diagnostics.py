"""Diagnostic objects: what every ProfLint analyzer produces.

A :class:`Diagnostic` is the IDE-consumable unit: a rule ID, a severity, a
message, and a location — a character :class:`~repro.errors.Span` into the
analyzed source for formula/callback findings, or a context description for
profile-structure findings.  :meth:`Diagnostic.to_dict` emits the
LSP-flavored shape carried by the ``ide/publishDiagnostics`` notification
of the Profile View Protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import Span


class Severity(enum.IntEnum):
    """LSP ``DiagnosticSeverity`` numbering (lower is worse)."""

    ERROR = 1
    WARNING = 2
    INFO = 3
    HINT = 4

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError("unknown severity %r (error, warning, info, "
                             "hint)" % name) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a lint rule."""

    rule: str                     # e.g. "EV101"
    severity: Severity
    message: str
    #: Character range into the linted source (formulas, callbacks).
    span: Optional[Span] = None
    #: Analyzer family: "formula", "callback", or "profile".
    source: str = ""
    #: What was linted: a formula text, a file path, a profile name.
    subject: str = ""
    #: 1-based source line for callback findings (0 = not line-based).
    line: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """LSP-style payload for ``ide/publishDiagnostics``."""
        payload: Dict[str, Any] = {
            "ruleId": self.rule,
            "severity": int(self.severity),
            "message": self.message,
            "source": "proflint:%s" % self.source if self.source
                      else "proflint",
        }
        if self.span is not None:
            payload["range"] = self.span.to_dict()
        if self.subject:
            payload["subject"] = self.subject
        if self.line:
            payload["line"] = self.line
        return payload

    def format(self) -> str:
        """One-line human rendering: ``EV101 error: message [at 4..9]``."""
        where = ""
        if self.line:
            where = " (line %d)" % self.line
        elif self.span is not None:
            where = " (chars %d..%d)" % (self.span.start, self.span.end)
        subject = " in %s" % self.subject if self.subject else ""
        return "%s %s: %s%s%s" % (self.rule, self.severity.name.lower(),
                                  self.message, where, subject)


def worst_severity(diagnostics: List[Diagnostic]) -> Optional[Severity]:
    """The most severe level present, or None for an empty list."""
    if not diagnostics:
        return None
    return Severity(min(int(d.severity) for d in diagnostics))


def has_errors(diagnostics: List[Diagnostic]) -> bool:
    """True when any diagnostic is an error."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Deterministic ordering: severity, then location, then rule ID."""
    return sorted(diagnostics, key=lambda d: (
        int(d.severity), d.subject, d.line,
        d.span.start if d.span else -1, d.rule, d.message))
