"""Structural linting of profiles and raw pprof payloads (rules EV3xx).

Two layers:

* :func:`lint_pprof` inspects a decoded ``profile.proto`` message *before*
  conversion — dangling string-table indices, samples referencing
  undefined locations, locations referencing undefined functions or
  mappings, value rows that do not match the declared sample types;
* :func:`lint_profile` checks EasyView-model invariants on a built
  :class:`~repro.core.profile.Profile` — NaN and negative metric values,
  cached inclusive values smaller than the exclusive values they must
  contain, CCT cycles, broken parent links, monitoring points with the
  wrong context arity or contexts outside the tree, unused metric columns.

:func:`lint_path` stitches both layers together for a file on disk and is
what ``easyview lint`` runs.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.metric import Aggregation
from ..core.monitor import POINT_ARITY
from ..core.profile import Profile
from ..errors import EasyViewError
from ..proto import pprof_pb
from .diagnostics import Diagnostic
from .registry import Findings, LintConfig, Rule, Severity, register

register(Rule("EV301", "profile", Severity.ERROR,
              "string-table index outside the table",
              bad="function.name = 17 with 5 table entries",
              good="indices < len(string_table)"))
register(Rule("EV302", "profile", Severity.ERROR,
              "reference to an undefined location/function/mapping id",
              bad="sample.location_id = [99] with no location 99",
              good="every referenced id is declared"))
register(Rule("EV303", "profile", Severity.ERROR,
              "NaN metric value",
              bad="node.metrics[0] = float('nan')",
              good="drop unmeasured values instead of storing NaN"))
register(Rule("EV304", "profile", Severity.WARNING,
              "negative value for a summed metric",
              bad="cpu = -5.0", good="cpu = 5.0"))
register(Rule("EV305", "profile", Severity.ERROR,
              "cached inclusive value smaller than the exclusive value",
              bad="inclusive = 10 while exclusive = 25",
              good="inclusive >= exclusive at every node"))
register(Rule("EV306", "profile", Severity.ERROR,
              "cycle in the calling context tree",
              bad="a node reachable from itself via children",
              good="the CCT is a tree"))
register(Rule("EV307", "profile", Severity.ERROR,
              "orphan node: broken parent link or context outside the tree",
              bad="child.parent is not the node listing it",
              good="parent links mirror the children maps"))
register(Rule("EV308", "profile", Severity.ERROR,
              "monitoring point with the wrong context arity",
              bad="USE_REUSE point with 1 context",
              good="USE_REUSE carries [allocation, use, reuse]"))
register(Rule("EV309", "profile", Severity.INFO,
              "declared metric never carries a value",
              bad="schema declares 'alloc' but no node has it",
              good="drop unused columns before sharing"))
register(Rule("EV310", "profile", Severity.ERROR,
              "metric column index outside the schema",
              bad="values = {7: 1.0} with a 2-column schema",
              good="column indices come from the schema"))
register(Rule("EV311", "profile", Severity.WARNING,
              "sample value count differs from declared sample types",
              bad="2 sample_types but a 3-value sample",
              good="one value per declared type"))
register(Rule("EV312", "profile", Severity.WARNING,
              "wall-clock/time metadata missing or non-monotonic",
              bad="time_nanos = 0 (or duration_nanos = -5)",
              good="stamp capture time and a non-negative duration"))

_RELATIVE_TOLERANCE = 1e-9


def lint_pprof(message: pprof_pb.Profile,
               config: Optional[LintConfig] = None,
               subject: str = "<pprof>") -> List[Diagnostic]:
    """Lint a decoded pprof message; returns diagnostics (empty = clean)."""
    findings = Findings(config, subject=subject)
    table_size = len(message.string_table)

    def check_string(index: int, owner: str) -> None:
        if not 0 <= index < table_size:
            findings.add("EV301",
                         "%s references string %d but the table has %d "
                         "entries" % (owner, index, table_size))

    for i, value_type in enumerate(message.sample_type):
        check_string(value_type.type, "sample_type[%d].type" % i)
        check_string(value_type.unit, "sample_type[%d].unit" % i)
    check_string(message.period_type.type, "period_type.type")
    check_string(message.period_type.unit, "period_type.unit")
    for i, index in enumerate(message.comment):
        check_string(index, "comment[%d]" % i)

    mappings = set()
    for i, mapping in enumerate(message.mapping):
        mappings.add(mapping.id)
        check_string(mapping.filename, "mapping[%d].filename" % i)
        check_string(mapping.build_id, "mapping[%d].build_id" % i)

    functions = set()
    for i, function in enumerate(message.function):
        functions.add(function.id)
        check_string(function.name, "function[%d].name" % i)
        check_string(function.system_name, "function[%d].system_name" % i)
        check_string(function.filename, "function[%d].filename" % i)

    locations = set()
    for i, location in enumerate(message.location):
        locations.add(location.id)
        if location.mapping_id and location.mapping_id not in mappings:
            findings.add("EV302",
                         "location[%d] references undefined mapping %d"
                         % (i, location.mapping_id))
        for j, line in enumerate(location.line):
            if line.function_id and line.function_id not in functions:
                findings.add(
                    "EV302",
                    "location[%d].line[%d] references undefined function "
                    "%d" % (i, j, line.function_id))

    declared = len(message.sample_type)
    for i, sample in enumerate(message.sample):
        for location_id in sample.location_id:
            if location_id not in locations:
                findings.add("EV302",
                             "sample[%d] references undefined location %d"
                             % (i, location_id))
        if declared and len(sample.value) != declared:
            findings.add("EV311",
                         "sample[%d] carries %d values but %d sample "
                         "types are declared"
                         % (i, len(sample.value), declared))
        for label in sample.label:
            check_string(label.key, "sample[%d] label key" % i)
            if label.str:
                check_string(label.str, "sample[%d] label value" % i)
            if label.num_unit:
                check_string(label.num_unit, "sample[%d] label unit" % i)

    return findings.items


def lint_pprof_bytes(data: bytes, config: Optional[LintConfig] = None,
                     subject: str = "<pprof>") -> List[Diagnostic]:
    """Parse and lint a raw (optionally gzipped) pprof payload."""
    return lint_pprof(pprof_pb.loads(data), config=config, subject=subject)


def lint_profile(profile: Profile, config: Optional[LintConfig] = None,
                 subject: str = "",
                 require_time: bool = False) -> List[Diagnostic]:
    """Lint a built profile's CCT, metrics, and monitoring points.

    ``require_time`` additionally flags a *missing* wall-clock stamp
    (EV312) — the profile store turns this on at ingest so its time index
    never silently receives epoch-zero entries; ordinary lint runs only
    flag time metadata that is present but non-monotonic.
    """
    findings = Findings(config,
                        subject=subject or (profile.meta.tool
                                            or "<profile>"))

    # EV312: time metadata sanity.  Negative stamps/durations mean the
    # capture interval runs backwards; a missing stamp is only an ingest-
    # time concern (require_time).
    if profile.meta.time_nanos < 0:
        findings.add("EV312",
                     "wall-clock time %d ns is negative — capture times "
                     "must be non-negative" % profile.meta.time_nanos)
    if profile.meta.duration_nanos < 0:
        findings.add("EV312",
                     "duration %d ns is negative — the capture interval is "
                     "non-monotonic (end precedes start)"
                     % profile.meta.duration_nanos)
    if require_time and profile.meta.time_nanos == 0:
        findings.add("EV312",
                     "profile carries no wall-clock capture time; the "
                     "store will index it at its ingest time instead of "
                     "epoch zero")
    schema_size = len(profile.schema)
    used = set()
    sum_metrics = set()
    for index, metric in enumerate(profile.schema):
        if metric.aggregation is Aggregation.SUM:
            sum_metrics.add(index)

    # One guarded DFS finds cycles and orphan links without looping forever.
    visited = set()
    stack = [profile.root]
    while stack:
        node = stack.pop()
        if id(node) in visited:
            findings.add("EV306",
                         "context %r is reachable twice: the CCT contains "
                         "a cycle or shared subtree" % node.frame.label())
            continue
        visited.add(id(node))
        for frame, child in node.children.items():
            if child.parent is not node:
                findings.add("EV307",
                             "child %r of %r has a broken parent link"
                             % (child.frame.label(), node.frame.label()))
            if frame is not child.frame and frame != child.frame:
                findings.add("EV307",
                             "child keyed as %r but carries frame %r under "
                             "%r" % (frame.label(), child.frame.label(),
                                     node.frame.label()))
            stack.append(child)

        for index, value in node.metrics.items():
            if not 0 <= index < schema_size:
                findings.add("EV310",
                             "context %r carries metric column %d but the "
                             "schema has %d columns"
                             % (node.frame.label(), index, schema_size))
                continue
            used.add(index)
            name = profile.schema[index].name
            if math.isnan(value):
                findings.add("EV303", "context %r has NaN for metric %r"
                             % (node.frame.label(), name))
            elif value < 0 and index in sum_metrics:
                findings.add("EV304",
                             "context %r has negative value %g for summed "
                             "metric %r" % (node.frame.label(), value, name))
            inclusive = node.inclusive.get(index)
            if inclusive is not None and not math.isnan(inclusive) \
                    and not math.isnan(value):
                slack = abs(inclusive) * _RELATIVE_TOLERANCE + 1e-12
                if index in sum_metrics and inclusive + slack < value:
                    findings.add(
                        "EV305",
                        "context %r: inclusive %g < exclusive %g for "
                        "metric %r — inclusive values must contain their "
                        "own context" % (node.frame.label(), inclusive,
                                         value, name))

    for position, point in enumerate(profile.points):
        if not point.arity_ok():
            findings.add("EV308",
                         "point #%d of kind %s expects %d contexts, got %d"
                         % (position, point.kind.name,
                            POINT_ARITY.get(point.kind, 0),
                            len(point.contexts)))
        for context in point.contexts:
            if id(context) not in visited:
                findings.add("EV307",
                             "point #%d references context %r that is not "
                             "reachable from the CCT root"
                             % (position, context.frame.label()))
        for index, value in point.values.items():
            if not 0 <= index < schema_size:
                findings.add("EV310",
                             "point #%d carries metric column %d but the "
                             "schema has %d columns"
                             % (position, index, schema_size))
                continue
            used.add(index)
            if math.isnan(value):
                findings.add("EV303", "point #%d has NaN for metric %r"
                             % (position, profile.schema[index].name))

    for index, metric in enumerate(profile.schema):
        if index not in used:
            findings.add("EV309", "metric %r is declared but never "
                         "carries a value" % metric.name)

    return findings.items


def lint_path(path: str, format: Optional[str] = None,
              config: Optional[LintConfig] = None) -> List[Diagnostic]:
    """Lint a profile file: raw-payload checks (pprof) plus model checks.

    Conversion failures become EV302 diagnostics rather than exceptions, so
    ``easyview lint`` always produces a report.
    """
    from .. import converters

    with open(path, "rb") as handle:
        data = handle.read()
    diagnostics: List[Diagnostic] = []

    converter = None
    try:
        converter = (converters.get(format) if format
                     else converters.detect(data, path))
    except EasyViewError:
        pass
    if converter is not None and converter.name == "pprof":
        diagnostics.extend(lint_pprof_bytes(data, config=config,
                                            subject=path))

    try:
        profile = (converter.parse(data) if converter is not None
                   else converters.parse_bytes(data, format=format,
                                               path=path))
    except EasyViewError as exc:
        findings = Findings(config, subject=path)
        findings.add("EV302", "profile does not convert: %s" % exc)
        diagnostics.extend(findings.items)
        return diagnostics
    diagnostics.extend(lint_profile(profile, config=config, subject=path))
    return diagnostics
