"""Static analysis of derived-metric formulas (rules EV1xx).

Runs entirely on the AST from :mod:`repro.analysis.formula` — no metric
value is ever touched — so a bad formula is reported *before* the engine
walks a million-node view tree.  Every diagnostic carries the character
span of the offending subexpression in the formula text.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..analysis import formula as fm
from ..errors import FormulaError, Span
from .diagnostics import Diagnostic
from .registry import Findings, LintConfig, Rule, Severity, register

register(Rule("EV100", "formula", Severity.ERROR,
              "formula does not lex or parse",
              bad="cycles +", good="cycles + 1"))
register(Rule("EV101", "formula", Severity.ERROR,
              "reference to a metric the profile does not define",
              bad="cyclez / instructions", good="cycles / instructions"))
register(Rule("EV102", "formula", Severity.ERROR,
              "call to an unknown builtin function",
              bad="frob(cycles)", good="sqrt(cycles)"))
register(Rule("EV103", "formula", Severity.ERROR,
              "builtin called with the wrong number of arguments",
              bad="max(cycles)", good="max(cycles, 1)"))
register(Rule("EV104", "formula", Severity.INFO,
              "constant subexpression could be folded",
              bad="cycles * (1000 / 8)", good="cycles * 125"))
register(Rule("EV105", "formula", Severity.WARNING,
              "division by constant zero always evaluates to 0",
              bad="cycles / 0", good="cycles / instructions"))
register(Rule("EV106", "formula", Severity.WARNING,
              "if() condition is constant, one branch is dead",
              bad="if(1, cycles, instructions)",
              good="if(cycles > 0, cycles, instructions)"))
register(Rule("EV107", "formula", Severity.ERROR,
              "@N cross-profile reference outside the loaded profiles",
              bad="bytes@3 - bytes@1",
              good="bytes@2 - bytes@1"))

#: Prefixes multi-profile environments attach to plain metric names.
_REF_PREFIXES = ("inclusive.", "exclusive.")


def split_ref(name: str):
    """Split a formula reference into (base metric, profile number or None).

    ``inclusive.bytes@2`` → ``("bytes", 2)``; an unparsable ``@`` suffix
    yields ``(name, None)`` with the suffix left in the base so EV101 can
    report the whole reference.
    """
    base = name
    for prefix in _REF_PREFIXES:
        if base.startswith(prefix):
            base = base[len(prefix):]
            break
    profile = None
    if "@" in base:
        candidate, _, suffix = base.rpartition("@")
        if suffix.isdigit():
            base = candidate
            profile = int(suffix)
    return base, profile


def _is_constant(expr: fm.Expr) -> bool:
    """True when the expression references no metrics (pure arithmetic)."""
    if isinstance(expr, fm.Num):
        return True
    if isinstance(expr, fm.Ref):
        return False
    if isinstance(expr, fm.Unary):
        return _is_constant(expr.operand)
    if isinstance(expr, fm.Binary):
        return _is_constant(expr.left) and _is_constant(expr.right)
    if isinstance(expr, fm.Call):
        return all(_is_constant(arg) for arg in expr.args)
    return False


def _constant_value(expr: fm.Expr) -> Optional[float]:
    """Evaluate a constant subexpression, or None when it is not constant
    (or fails, e.g. unknown function — other rules report that)."""
    if not _is_constant(expr):
        return None
    try:
        return fm.evaluate(expr, {})
    except FormulaError:
        return None


def lint_formula(source: str,
                 metrics: Optional[Iterable[str]] = None,
                 profile_count: int = 1,
                 config: Optional[LintConfig] = None) -> List[Diagnostic]:
    """Lint one formula; returns diagnostics (empty = clean).

    ``metrics`` is the known-metrics environment (a schema's names);
    passing ``None`` skips the undefined-metric check (EV101) for callers
    that lint formulas without a loaded profile.  ``profile_count`` bounds
    ``@N`` cross-profile references (EV107).
    """
    findings = Findings(config, subject=source)
    known: Optional[Set[str]] = set(metrics) if metrics is not None else None

    try:
        expr = fm.parse(source)
    except FormulaError as exc:
        findings.add("EV100", str(exc), span=exc.span or Span(0, len(source)))
        return findings.items

    def literal_like(node: fm.Expr) -> bool:
        # A number, or a signed number: folding `-3` buys nothing.
        return isinstance(node, fm.Num) or (
            isinstance(node, fm.Unary) and isinstance(node.operand, fm.Num))

    def walk(node: fm.Expr, fold_candidate: bool) -> None:
        # `fold_candidate` marks maximal constant subtrees: once a node is
        # reported for EV104, its constant children are not re-reported.
        if fold_candidate and _is_constant(node) and not literal_like(node):
            value = _constant_value(node)
            if value is not None:
                findings.add(
                    "EV104",
                    "constant subexpression %r always evaluates to %g"
                    % (node.span.slice(source) if node.span else "?", value),
                    span=node.span)
            fold_candidate = False

        if isinstance(node, fm.Ref):
            base, profile = split_ref(node.name)
            if profile is not None and not 1 <= profile <= profile_count:
                findings.add(
                    "EV107",
                    "reference %r names profile %d but only %d profile%s "
                    "loaded" % (node.name, profile, profile_count,
                                " is" if profile_count == 1 else "s are"),
                    span=node.span)
            elif known is not None and base not in known \
                    and node.name not in known:
                findings.add(
                    "EV101",
                    "unknown metric %r (have: %s)"
                    % (node.name, ", ".join(sorted(known))),
                    span=node.span)
            return
        if isinstance(node, fm.Unary):
            walk(node.operand, fold_candidate)
            return
        if isinstance(node, fm.Binary):
            if node.op in ("/", "%"):
                denominator = _constant_value(node.right)
                if denominator == 0.0:
                    findings.add(
                        "EV105",
                        "denominator is constant 0; %r always evaluates "
                        "to 0" % (node.span.slice(source) if node.span
                                  else node.op),
                        span=node.right.span or node.span)
            walk(node.left, fold_candidate)
            walk(node.right, fold_candidate)
            return
        if isinstance(node, fm.Call):
            fn_known = node.name in fm._FUNCTIONS
            if not fn_known:
                findings.add(
                    "EV102",
                    "unknown function %r (have: %s)"
                    % (node.name, ", ".join(sorted(fm._FUNCTIONS))),
                    span=node.span)
            else:
                expected = fm._ARITY[node.name]
                if len(node.args) != expected:
                    findings.add(
                        "EV103",
                        "%s() takes %d argument%s, got %d"
                        % (node.name, expected,
                           "" if expected == 1 else "s", len(node.args)),
                        span=node.span)
                if node.name == "if" and node.args and _is_constant(
                        node.args[0]):
                    cond = _constant_value(node.args[0])
                    if cond is not None:
                        findings.add(
                            "EV106",
                            "if() condition is constant %g; the %s branch "
                            "is dead" % (cond,
                                         "else" if cond else "then"),
                            span=node.args[0].span or node.span)
            for arg in node.args:
                walk(arg, fold_candidate)
            return
        # Num: nothing to check (EV104 handled above via fold_candidate).

    if _is_constant(expr):
        value = _constant_value(expr)
        if value is not None:
            findings.add(
                "EV104",
                "formula is constant: every context gets %g" % value,
                span=expr.span or Span(0, len(source)))
        walk(expr, fold_candidate=False)
    else:
        walk(expr, fold_candidate=True)
    return findings.items
