"""Shared helpers for analyzers that walk Python source ASTs.

Both the callback vetting family (``EV2xx``) and the SelfCheck codebase
analyzers (``EV4xx``, :mod:`repro.sa`) turn ``ast`` nodes into the char
:class:`~repro.errors.Span` diagnostics the IDE renders as squiggles.
The arithmetic lives here once: line offsets into the source text, node
spans, and attribute-chain flattening.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from ..errors import Span


def line_offsets(source: str) -> List[int]:
    """Character offset of each line start (1-based lines, offsets[0]=0)."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def node_span(node: ast.AST, offsets: List[int]) -> Optional[Span]:
    """Character span of an AST node within the source text."""
    lineno = getattr(node, "lineno", None)
    if lineno is None or lineno > len(offsets) - 1:
        return None
    start = offsets[lineno - 1] + node.col_offset
    end_lineno = getattr(node, "end_lineno", None) or lineno
    end_col = getattr(node, "end_col_offset", None)
    if end_col is None or end_lineno > len(offsets) - 1:
        return Span(start, start + 1)
    return Span(start, offsets[end_lineno - 1] + end_col)


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` under a chain of attribute/subscript accesses."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Flatten ``a.b.c`` (subscripts transparent) to ``("a", "b", "c")``.

    Returns None when the chain does not bottom out in a plain ``Name``
    (e.g. a call result or literal receiver).
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return None
