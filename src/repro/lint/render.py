"""Renderers for lint reports: stable JSON and ANSI terminal text.

The JSON shape is the same LSP-flavored payload the Profile View Protocol
carries in ``ide/publishDiagnostics``, wrapped with summary counts — and it
is deterministic (sorted diagnostics, sorted keys) so it can be snapshotted
in golden tests and diffed across runs.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .diagnostics import Diagnostic, Severity, sort_diagnostics

_COLORS = {
    Severity.ERROR: "\x1b[31m",    # red
    Severity.WARNING: "\x1b[33m",  # yellow
    Severity.INFO: "\x1b[36m",     # cyan
    Severity.HINT: "\x1b[2m",      # dim
}
_RESET = "\x1b[0m"


def severity_counts(diagnostics: List[Diagnostic]) -> Dict[str, int]:
    """``{"error": n, "warning": n, "info": n, "hint": n}`` (zeros kept)."""
    counts = {severity.name.lower(): 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.name.lower()] += 1
    return counts


def to_report(diagnostics: List[Diagnostic]) -> Dict[str, object]:
    """The JSON-ready report object for a lint run."""
    ordered = sort_diagnostics(diagnostics)
    return {
        "diagnostics": [d.to_dict() for d in ordered],
        "counts": severity_counts(ordered),
        "ok": not any(d.severity is Severity.ERROR for d in ordered),
    }


def render_json(diagnostics: List[Diagnostic], indent: int = 2) -> str:
    """Deterministic JSON text for golden tests and tooling."""
    return json.dumps(to_report(diagnostics), indent=indent, sort_keys=True)


def render_text(diagnostics: List[Diagnostic], color: bool = False) -> str:
    """Line-per-finding terminal report with a trailing summary."""
    ordered = sort_diagnostics(diagnostics)
    lines = []
    for diagnostic in ordered:
        text = diagnostic.format()
        if color:
            prefix = _COLORS.get(diagnostic.severity, "")
            text = "%s%s%s" % (prefix, text, _RESET) if prefix else text
        lines.append(text)
    counts = severity_counts(ordered)
    summary = ", ".join("%d %s%s" % (n, name, "" if n == 1 else "s")
                        for name, n in counts.items() if n)
    lines.append("clean: no findings" if not ordered
                 else "findings: %s" % summary)
    return "\n".join(lines)
