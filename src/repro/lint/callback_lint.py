"""Static vetting of user callbacks and pane scripts (rules EV2xx).

The paper sandboxes user Python by compiling it to WASM; this module gives
the equivalent guarantees *statically*, by walking the Python ``ast`` of
``elide``/``remap``/metric callbacks and programming-pane sources before
they ever run: no imports, no filesystem/network/process escape, no
dynamic code execution, no nondeterminism inside a deterministic viewer,
and no mutation of the shared tree state a callback merely observes.

Unlike the substring blocklist in :mod:`repro.analysis.pane` (a fast
runtime gate), this analyzer understands structure — ``reopen(x)`` passes,
``open(x)`` is flagged, and each finding carries its line and character
span.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, List, Optional, Union

from ..errors import Span
from .diagnostics import Diagnostic
from .pysource import line_offsets as _line_offsets
from .pysource import node_span as _node_span
from .pysource import root_name as _root_name
from .registry import Findings, LintConfig, Rule, Severity, register

register(Rule("EV200", "callback", Severity.ERROR,
              "callback source does not parse as Python",
              bad="def elide(node) return False",
              good="def elide(node): return False"))
register(Rule("EV201", "callback", Severity.ERROR,
              "import inside a sandboxed callback",
              bad="import os",
              good="use the provided helpers (nodes, value, derive, ...)"))
register(Rule("EV202", "callback", Severity.ERROR,
              "filesystem, network, or process access",
              bad="open('/etc/passwd')",
              good="emit(value(node, 'cpu'))"))
register(Rule("EV203", "callback", Severity.ERROR,
              "dynamic code execution or namespace escape",
              bad="eval('1+1')", good="1 + 1"))
register(Rule("EV204", "callback", Severity.WARNING,
              "nondeterminism: results change run to run",
              bad="random.random() > 0.5",
              good="value(node, 'cpu') > 1000"))
register(Rule("EV205", "callback", Severity.WARNING,
              "mutation of shared tree state from a read-only callback",
              bad="node.metrics[0] = 0",
              good="derive('scaled', 'cpu / 1000')"))
register(Rule("EV206", "callback", Severity.ERROR,
              "dunder access escapes the sandbox namespace",
              bad="node.__class__.__init__",
              good="node.frame.name"))

#: Modules whose very mention means OS / network / process reach.
_OS_MODULES = frozenset({
    "os", "sys", "io", "socket", "subprocess", "shutil", "pathlib",
    "tempfile", "glob", "ftplib", "http", "urllib", "requests",
    "multiprocessing", "threading", "signal", "ctypes", "pickle",
    "importlib", "builtins",
})

#: Bare calls that reach the filesystem or interpreter state.
_OS_CALLS = frozenset({"open", "input", "exit", "quit", "breakpoint"})

#: Dynamic-execution / namespace-escape calls.
_DYNAMIC_CALLS = frozenset({
    "eval", "exec", "compile", "__import__", "globals", "locals", "vars",
    "getattr", "setattr", "delattr", "memoryview",
})

#: Modules (and names) that make results differ between runs.
_NONDETERMINISTIC = frozenset({"random", "time", "datetime", "uuid",
                               "secrets"})

#: Viewer-owned objects a callback receives but must not mutate, and the
#: mutating method names that give mutation away.
_SHARED_ROOTS = frozenset({"tree", "node", "frame", "profile", "root"})
_MUTATORS = frozenset({
    "add_value", "set_value", "add_sample", "add_point", "add_metric",
    "add_path", "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "update", "setdefault", "sort", "reverse",
})


class _CallbackVisitor(ast.NodeVisitor):
    def __init__(self, findings: Findings, offsets: List[int],
                 shared_roots: frozenset) -> None:
        self.findings = findings
        self.offsets = offsets
        self.shared = shared_roots

    def _add(self, rule: str, message: str, node: ast.AST) -> None:
        self.findings.add(rule, message, span=_node_span(node, self.offsets),
                          line=getattr(node, "lineno", 0))

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        names = ", ".join(alias.name for alias in node.names)
        self._add("EV201", "import of %r: callbacks run sandboxed and may "
                  "not import" % names, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._add("EV201", "import from %r: callbacks run sandboxed and "
                  "may not import" % (node.module or "."), node)

    # -- names and attributes ---------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _NONDETERMINISTIC:
            self._add("EV204", "%r makes the callback nondeterministic; "
                      "views must be reproducible" % node.id, node)
        elif node.id in _OS_MODULES:
            self._add("EV202", "%r reaches outside the viewer sandbox"
                      % node.id, node)
        elif node.id.startswith("__") and node.id != "__debug__":
            self._add("EV206", "dunder name %r is blocked by the sandbox"
                      % node.id, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("__") and node.attr.endswith("__"):
            self._add("EV206", "dunder attribute %r escapes the sandbox "
                      "namespace" % node.attr, node)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id in _DYNAMIC_CALLS:
                self._add("EV203", "call to %s(): dynamic execution is "
                          "blocked in callbacks" % callee.id, node)
            elif callee.id in _OS_CALLS:
                self._add("EV202", "call to %s(): callbacks may not touch "
                          "the filesystem or interpreter" % callee.id, node)
        elif isinstance(callee, ast.Attribute):
            root = _root_name(callee)
            if callee.attr in _MUTATORS and root in self.shared:
                self._add("EV205", "%s.%s() mutates shared tree state; "
                          "callbacks observe, transforms mutate"
                          % (root, callee.attr), node)
        self.generic_visit(node)

    # -- mutation ----------------------------------------------------------

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root in self.shared:
                self._add("EV205", "assignment into %r mutates shared tree "
                          "state owned by the viewer" % root, target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)


def lint_source(source: str, subject: str = "<callback>",
                config: Optional[LintConfig] = None,
                extra_shared: Optional[frozenset] = None
                ) -> List[Diagnostic]:
    """Lint callback / pane source text; returns diagnostics (empty = ok)."""
    findings = Findings(config, subject=subject)
    source = textwrap.dedent(source)
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        offset = (exc.offset or 1) - 1
        offsets = _line_offsets(source)
        lineno = min(exc.lineno or 1, len(offsets) - 1)
        position = offsets[lineno - 1] + offset
        findings.add("EV200", "syntax error: %s" % exc.msg,
                     span=Span.point(position), line=exc.lineno or 0)
        return findings.items

    shared = _SHARED_ROOTS | (extra_shared or frozenset())
    # Parameters of user-defined callbacks are viewer-owned objects too:
    # `def elide(n): n.metrics.clear()` must be flagged like `node`.
    for fn in ast.walk(module):
        if isinstance(fn, (ast.FunctionDef, ast.Lambda)):
            args = fn.args
            params = [a.arg for a in
                      args.posonlyargs + args.args + args.kwonlyargs]
            shared = shared | frozenset(params)

    visitor = _CallbackVisitor(findings, _line_offsets(source), shared)
    visitor.visit(module)
    return findings.items


def lint_callback(fn: Union[Callable, str],
                  subject: str = "",
                  config: Optional[LintConfig] = None) -> List[Diagnostic]:
    """Lint a callback given as a function object (or source text).

    Source is recovered with :func:`inspect.getsource`; callables whose
    source is unavailable (C builtins, REPL lambdas) yield no findings —
    static vetting is best-effort by nature.
    """
    if isinstance(fn, str):
        return lint_source(fn, subject=subject or "<callback>",
                           config=config)
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        return []
    return lint_source(source,
                       subject=subject or getattr(fn, "__name__",
                                                  "<callback>"),
                       config=config)
