"""The rule registry: every ProfLint rule, its ID, and its configuration.

Rule IDs are stable and documented in ``docs/LINTING.md`` (EV1xx-EV3xx)
and ``docs/SELFCHECK.md`` (EV4xx):

* ``EV1xx`` — formula static analysis,
* ``EV2xx`` — callback / programming-pane vetting,
* ``EV3xx`` — profile & CCT invariants,
* ``EV4xx`` — SelfCheck: concurrency and resource safety of EasyView's
  own codebase (:mod:`repro.sa`).

Analyzers *declare* their rules here (with a bad/good example each, which
the doc and the test suite consume) and *emit* findings through
:meth:`LintConfig.diag`, which applies per-rule enable/disable switches and
severity overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..errors import Span
from .diagnostics import Diagnostic, Severity

FAMILIES = ("formula", "callback", "profile", "selfcheck")

#: Directive aliases: the ID-prefix spelling of each family, so
#: ``"EV4xx=off"`` means the same as ``"selfcheck=off"`` (and likewise
#: for the three artifact families).
FAMILY_PREFIXES = {
    "EV1xx": "formula",
    "EV2xx": "callback",
    "EV3xx": "profile",
    "EV4xx": "selfcheck",
}


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    id: str
    family: str              # one of FAMILIES
    severity: Severity       # default severity
    summary: str             # one-line description
    bad: str = ""            # an input that triggers the rule
    good: str = ""           # the corrected counterpart


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Register a rule (import-time, once per ID)."""
    if rule.id in _REGISTRY:
        raise ValueError("duplicate lint rule id %r" % rule.id)
    if rule.family not in FAMILIES:
        raise ValueError("rule %s has unknown family %r"
                         % (rule.id, rule.family))
    _REGISTRY[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError("unknown lint rule %r (have: %s)"
                       % (rule_id, ", ".join(sorted(_REGISTRY)))) from None


def all_rules(family: Optional[str] = None) -> List[Rule]:
    """Every registered rule, sorted by ID (optionally one family)."""
    rules = sorted(_REGISTRY.values(), key=lambda r: r.id)
    if family is not None:
        rules = [r for r in rules if r.family == family]
    return rules


class LintConfig:
    """Per-run rule configuration: disables and severity overrides.

    Accepts directive strings as the CLI takes them: ``"EV104=off"``
    disables a rule, ``"EV305=warning"`` re-levels one, and a bare
    ``"EV104"`` also disables.  Family names work too — ``"formula=off"``,
    ``"selfcheck=off"`` — as do their ID-prefix aliases (``"EV4xx=off"``),
    and a family directive with a severity (``"selfcheck=hint"``)
    re-levels every rule in the family.
    """

    def __init__(self, disabled: Optional[Iterable[str]] = None,
                 severities: Optional[Mapping[str, Severity]] = None
                 ) -> None:
        self.disabled = set(disabled or ())
        self.severities: Dict[str, Severity] = dict(severities or {})

    @classmethod
    def from_directives(cls, directives: Iterable[str]) -> "LintConfig":
        config = cls()
        for directive in directives:
            name, _, value = directive.partition("=")
            name = FAMILY_PREFIXES.get(name.strip(), name.strip())
            value = value.strip().lower()
            if not value or value == "off":
                config.disabled.add(name)
            elif value == "on":
                config.disabled.discard(name)
            else:
                config.severities[name] = Severity.parse(value)
        return config

    def enabled(self, rule_id: str) -> bool:
        if rule_id in self.disabled:
            return False
        rule = _REGISTRY.get(rule_id)
        return rule is None or rule.family not in self.disabled

    def severity(self, rule_id: str) -> Severity:
        override = self.severities.get(rule_id)
        if override is not None:
            return override
        rule = get_rule(rule_id)
        family_override = self.severities.get(rule.family)
        if family_override is not None:
            return family_override
        return rule.severity

    def diag(self, rule_id: str, message: str,
             span: Optional[Span] = None, subject: str = "",
             line: int = 0) -> Optional[Diagnostic]:
        """Build a diagnostic for a rule, or None when it is disabled."""
        if not self.enabled(rule_id):
            return None
        rule = get_rule(rule_id)
        return Diagnostic(rule=rule_id, severity=self.severity(rule_id),
                          message=message, span=span, source=rule.family,
                          subject=subject, line=line)


#: The everything-on default configuration.
DEFAULT_CONFIG = LintConfig()


class Findings:
    """A small accumulator analyzers append into (drops disabled rules)."""

    def __init__(self, config: Optional[LintConfig] = None,
                 subject: str = "") -> None:
        self.config = config or DEFAULT_CONFIG
        self.subject = subject
        self.items: List[Diagnostic] = []

    def add(self, rule_id: str, message: str, span: Optional[Span] = None,
            line: int = 0) -> None:
        diagnostic = self.config.diag(rule_id, message, span=span,
                                      subject=self.subject, line=line)
        if diagnostic is not None:
            self.items.append(diagnostic)
