"""ProfLint: static analysis and diagnostics for EasyView artifacts.

Three analyzer families, one diagnostic model:

* :mod:`~repro.lint.formula_lint` (``EV1xx``) — derived-metric formulas,
* :mod:`~repro.lint.callback_lint` (``EV2xx``) — user callbacks and
  programming-pane scripts,
* :mod:`~repro.lint.profile_lint` (``EV3xx``) — profile data and CCT
  invariants, including raw pprof payloads.

Findings surface through ``easyview lint`` on the command line and through
``ide/publishDiagnostics`` notifications of the Profile View Protocol; rule
IDs and examples are catalogued in ``docs/LINTING.md``.
"""

from .callback_lint import lint_callback, lint_source
from .diagnostics import (Diagnostic, Severity, has_errors, sort_diagnostics,
                          worst_severity)
from .formula_lint import lint_formula, split_ref
from .profile_lint import (lint_path, lint_pprof, lint_pprof_bytes,
                           lint_profile)
from .registry import (DEFAULT_CONFIG, FAMILIES, FAMILY_PREFIXES, Findings,
                       LintConfig, Rule, all_rules, get_rule)
from .render import render_json, render_text, severity_counts, to_report

__all__ = [
    "Diagnostic", "Severity", "has_errors", "sort_diagnostics",
    "worst_severity",
    "Rule", "LintConfig", "Findings", "DEFAULT_CONFIG", "FAMILIES",
    "FAMILY_PREFIXES", "all_rules", "get_rule",
    "lint_formula", "split_ref",
    "lint_callback", "lint_source",
    "lint_profile", "lint_pprof", "lint_pprof_bytes", "lint_path",
    "render_json", "render_text", "severity_counts", "to_report",
]
