"""A scriptable IDE host speaking the Profile View Protocol.

The mock IDE plays the editor's role end-to-end: it holds a workspace of
source documents, receives every ``ide/*`` action the viewer emits (opening
documents, highlighting lines, rendering lenses/hovers/windows), and drives
the viewer with ``view/*`` requests over real serialized JSON-RPC messages.
Tests and the user-study simulation use it to exercise the same protocol
path the VSCode extension would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError
from .actions import Capabilities
from .protocol import (Request, Response, parse_message, IDE_OPEN_DOCUMENT,
                       IDE_CODE_LENS, IDE_HOVER, IDE_FLOATING_WINDOW,
                       IDE_SET_DECORATIONS, IDE_PUBLISH_DIAGNOSTICS)
from .session import ViewerSession


@dataclass
class EditorState:
    """What the simulated editor currently shows."""

    open_file: str = ""
    cursor_line: int = 0
    highlighted: List[Tuple[str, int]] = field(default_factory=list)
    code_lenses: List[Dict[str, Any]] = field(default_factory=list)
    hovers: List[Dict[str, Any]] = field(default_factory=list)
    floating_windows: List[Dict[str, Any]] = field(default_factory=list)
    decorations: List[Dict[str, Any]] = field(default_factory=list)
    #: Lint findings last published by the viewer (rendered as squiggles).
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)


class MockIDE:
    """A headless editor hosting one viewer session."""

    def __init__(self, capabilities: Optional[Capabilities] = None,
                 workspace: Optional[Dict[str, str]] = None) -> None:
        self.capabilities = capabilities or Capabilities.full()
        #: path → document text; the select action verifies links resolve.
        self.workspace: Dict[str, str] = dict(workspace or {})
        self.state = EditorState()
        self.action_log: List[Tuple[str, Dict[str, Any]]] = []
        self.session = ViewerSession(sink=self._receive_action,
                                     capabilities=self.capabilities)
        self._next_request_id = 1

    # -- viewer → IDE ------------------------------------------------------------

    def _receive_action(self, method: str, params: Dict[str, Any]) -> None:
        self.action_log.append((method, params))
        if method == IDE_OPEN_DOCUMENT:
            self.state.open_file = params["file"]
            self.state.cursor_line = params["line"]
            if params.get("highlight"):
                self.state.highlighted.append((params["file"],
                                               params["line"]))
        elif method == IDE_CODE_LENS:
            self.state.code_lenses.append(params)
        elif method == IDE_HOVER:
            self.state.hovers.append(params)
        elif method == IDE_FLOATING_WINDOW:
            self.state.floating_windows.append(params)
        elif method == IDE_SET_DECORATIONS:
            self.state.decorations.append(params)
        elif method == IDE_PUBLISH_DIAGNOSTICS:
            # Like LSP's publishDiagnostics: each notification replaces the
            # previously shown set rather than appending to it.
            self.state.diagnostics = list(params.get("diagnostics", []))
        else:
            raise ProtocolError("viewer emitted unknown action %r" % method)

    # -- IDE → viewer -------------------------------------------------------------

    def request(self, method: str, **params: Any) -> Any:
        """Send one request through real JSON-RPC serialization.

        The request is serialized to JSON, parsed back (as a separate
        process would), dispatched, and the response likewise round-trips —
        so tests cover the wire format, not just the Python API.
        """
        request = Request(method=method, params=params,
                          id=self._next_request_id)
        self._next_request_id += 1
        parsed = parse_message(request.to_json())
        assert isinstance(parsed, Request)
        response = self.session.handle(parsed)
        wire = parse_message(response.to_json())
        assert isinstance(wire, Response)
        if not wire.ok:
            raise ProtocolError("request %s failed: %s"
                                % (method, wire.error))
        return wire.result

    # -- conveniences used by tests and the study simulation -------------------------

    def open_profile(self, path: str, format: Optional[str] = None) -> int:
        """Open a profile; returns its profile id."""
        result = self.request("view/open", path=path,
                              **({"format": format} if format else {}))
        return int(result["profileId"])

    def actions_of(self, method: str) -> List[Dict[str, Any]]:
        """All received actions of one kind."""
        return [params for m, params in self.action_log if m == method]

    def document_exists(self, path: str) -> bool:
        """Whether a code link's target exists in the workspace."""
        return path in self.workspace

    def line_text(self, path: str, line: int) -> str:
        """The workspace text at a linked location (1-based line)."""
        document = self.workspace.get(path, "")
        lines = document.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""
