"""IDE action payloads (§VI-B) and capability negotiation.

*Code link* is the one mandatory action: clicking a flame-graph block or a
tree-table row opens the source file at the line and highlights it.  The
optional actions — color semantics, code lens, hovers, floating windows —
enrich the experience when the host IDE supports them; the viewer degrades
gracefully when it does not (capabilities are negotiated at session start,
exactly like LSP's ``initialize``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Capabilities:
    """What the host IDE can render.  ``code_link`` is always true."""

    code_link: bool = True
    code_lens: bool = False
    hover: bool = False
    floating_window: bool = False
    decorations: bool = False

    @classmethod
    def full(cls) -> "Capabilities":
        """Everything on (what the VSCode extension negotiates)."""
        return cls(code_link=True, code_lens=True, hover=True,
                   floating_window=True, decorations=True)

    @classmethod
    def minimal(cls) -> "Capabilities":
        """A bare editor: only the mandatory code link."""
        return cls()

    def to_dict(self) -> Dict[str, bool]:
        return {"codeLink": self.code_link, "codeLens": self.code_lens,
                "hover": self.hover, "floatingWindow": self.floating_window,
                "decorations": self.decorations}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Capabilities":
        return cls(code_link=True,
                   code_lens=bool(payload.get("codeLens")),
                   hover=bool(payload.get("hover")),
                   floating_window=bool(payload.get("floatingWindow")),
                   decorations=bool(payload.get("decorations")))


@dataclass
class CodeLink:
    """Mandatory: open ``file`` at ``line`` and highlight it."""

    file: str
    line: int
    highlight: bool = True
    context: str = ""  # the frame label that was clicked

    def to_params(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line,
                "highlight": self.highlight, "context": self.context}


@dataclass
class CodeLens:
    """Optional: an annotation above/below a source statement.

    Shows metric values and, when the profile carries them, the assembly
    instructions attributed to the statement.
    """

    file: str
    line: int
    text: str
    assembly: List[str] = field(default_factory=list)

    def to_params(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line, "text": self.text,
                "assembly": self.assembly}


@dataclass
class Hover:
    """Optional: a popup tied to a source line with metrics and tips."""

    file: str
    line: int
    lines: List[str]

    def to_params(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line, "lines": self.lines}


@dataclass
class FloatingWindow:
    """Optional: a pane-level window summarizing the entire profile."""

    title: str
    body: str

    def to_params(self) -> Dict[str, Any]:
        return {"title": self.title, "body": self.body}


@dataclass
class Decoration:
    """Optional: background color for a source line (color semantics)."""

    file: str
    line: int
    color: Tuple[int, int, int]
    intensity: float = 1.0  # 0..1, scaled by the line's metric share

    def to_params(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line,
                "color": list(self.color), "intensity": self.intensity}
