"""The Profile View Protocol (PVP): EasyView's LSP-inspired message layer.

The paper defines, "like LSP", a set of activities that correlate profile
views with source code in *any* IDE (§VI).  PVP is that contract made
concrete: JSON-RPC 2.0 framing with two method namespaces —

* ``view/*`` — the IDE drives the viewer: open a profile, switch shapes,
  select/click a frame, search, request a hover;
* ``ide/*``  — the viewer drives the IDE: open a document at a line (code
  link — the one *mandatory* action), show code lenses, hovers, floating
  windows, and set color decorations (the optional actions).

Any editor that can speak these few messages gets the full EasyView
experience; the scriptable host in :mod:`repro.ide.mock_ide` is one such
editor, and the stdio server in :mod:`repro.ide.server` exposes the same
contract to external processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..errors import ProtocolError

JSONRPC_VERSION = "2.0"

# Error codes (JSON-RPC standard range + protocol-specific range).
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
PROFILE_NOT_LOADED = -32000
UNSUPPORTED_FORMAT = -32001
UNKNOWN_VIEW = -32002
UNKNOWN_NODE = -32003
# Serving-layer codes (the socket transport in :mod:`repro.serve`).
# ``CANCELLED``: a queued request was superseded by a newer request for
# the same session+pane and will never run.  ``DENIED``: admission
# control rejected the request outright (global in-flight cap or
# per-session queue depth); the error ``data`` carries a
# ``retryAfterMs`` hint.
CANCELLED = -32800
DENIED = -32801

# view/* methods (IDE → viewer).
VIEW_OPEN = "view/open"
VIEW_CLOSE = "view/close"
VIEW_SHAPE = "view/switchShape"
VIEW_SELECT = "view/select"
VIEW_CLICK = "view/click"
VIEW_SEARCH = "view/search"
VIEW_HOVER = "view/hover"
VIEW_ZOOM = "view/zoom"
VIEW_SUMMARY = "view/summary"
VIEW_DIFF = "view/diff"
VIEW_AGGREGATE = "view/aggregate"
VIEW_DERIVE = "view/deriveMetric"
VIEW_CAPABILITIES = "view/capabilities"
VIEW_TABLE = "view/table"
VIEW_TABLE_EXPAND = "view/tableExpand"
VIEW_EXPORT = "view/export"
VIEW_LINT = "view/lint"
VIEW_SELFCHECK = "view/selfcheck"
VIEW_ENGINE_STATS = "view/engineStats"
VIEW_OPEN_QUERY = "view/openQuery"

# store/* methods (IDE → profile store, via the same session).
STORE_INGEST = "store/ingest"
STORE_QUERY = "store/query"

# watch/* methods (IDE → the continuous-profiling regression watch).
WATCH_REPORT = "watch/report"

# obs/* methods (IDE → the viewer's own telemetry).  ``obs/metrics``
# supersedes and generalizes ``view/engineStats``: the engine's cache
# counters are one tenant of the snapshot it returns.
OBS_METRICS = "obs/metrics"
OBS_TRACE = "obs/trace"

# ide/* methods (viewer → IDE).
IDE_OPEN_DOCUMENT = "ide/openDocument"       # the mandatory code link
IDE_CODE_LENS = "ide/showCodeLens"
IDE_HOVER = "ide/showHover"
IDE_FLOATING_WINDOW = "ide/showFloatingWindow"
IDE_SET_DECORATIONS = "ide/setDecorations"
IDE_PUBLISH_DIAGNOSTICS = "ide/publishDiagnostics"

VIEW_METHODS = frozenset({
    VIEW_OPEN, VIEW_CLOSE, VIEW_SHAPE, VIEW_SELECT, VIEW_CLICK, VIEW_SEARCH,
    VIEW_HOVER, VIEW_ZOOM, VIEW_SUMMARY, VIEW_DIFF, VIEW_AGGREGATE,
    VIEW_DERIVE, VIEW_CAPABILITIES, VIEW_TABLE, VIEW_TABLE_EXPAND,
    VIEW_EXPORT, VIEW_LINT, VIEW_SELFCHECK, VIEW_ENGINE_STATS,
    VIEW_OPEN_QUERY,
})
STORE_METHODS = frozenset({STORE_INGEST, STORE_QUERY})
WATCH_METHODS = frozenset({WATCH_REPORT})
OBS_METHODS = frozenset({OBS_METRICS, OBS_TRACE})
IDE_METHODS = frozenset({
    IDE_OPEN_DOCUMENT, IDE_CODE_LENS, IDE_HOVER, IDE_FLOATING_WINDOW,
    IDE_SET_DECORATIONS, IDE_PUBLISH_DIAGNOSTICS,
})


@dataclass
class Request:
    """A JSON-RPC request (or notification when ``id`` is None)."""

    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    id: Optional[int] = None

    def to_json(self) -> str:
        payload: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION,
                                   "method": self.method,
                                   "params": self.params}
        if self.id is not None:
            payload["id"] = self.id
        return json.dumps(payload, sort_keys=True)

    @property
    def is_notification(self) -> bool:
        return self.id is None


@dataclass
class Response:
    """A JSON-RPC response: exactly one of ``result`` / ``error`` is set."""

    id: Optional[int]
    result: Any = None
    error: Optional[Dict[str, Any]] = None

    def to_json(self) -> str:
        payload: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "id": self.id}
        if self.error is not None:
            payload["error"] = self.error
        else:
            payload["result"] = self.result
        return json.dumps(payload, sort_keys=True)

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def success(cls, request_id: Optional[int], result: Any) -> "Response":
        return cls(id=request_id, result=result)

    @classmethod
    def failure(cls, request_id: Optional[int], code: int,
                message: str, data: Any = None) -> "Response":
        error: Dict[str, Any] = {"code": code, "message": message}
        if data is not None:
            error["data"] = data
        return cls(id=request_id, error=error)


Message = Union[Request, Response]


def parse_message(text: str) -> Message:
    """Parse one JSON-RPC message; raises ProtocolError on bad input."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError("unparseable message: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    if payload.get("jsonrpc") != JSONRPC_VERSION:
        raise ProtocolError("missing or wrong jsonrpc version")
    if "method" in payload:
        method = payload["method"]
        if not isinstance(method, str):
            raise ProtocolError("method must be a string")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("params must be an object")
        return Request(method=method, params=params, id=payload.get("id"))
    if "result" in payload or "error" in payload:
        return Response(id=payload.get("id"),
                        result=payload.get("result"),
                        error=payload.get("error"))
    raise ProtocolError("message is neither request nor response")


def require_params(request: Request, *names: str) -> None:
    """Validate that required parameters are present."""
    missing = [name for name in names if name not in request.params]
    if missing:
        raise ProtocolError("%s requires parameters: %s"
                            % (request.method, ", ".join(missing)))
