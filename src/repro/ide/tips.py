"""Optimization tips: analysis findings routed to source locations.

§VI-B: hovers "open an interface to record any advanced analysis results
and show the optimization guidance with user-defined analysis".  This
module is that interface's standard library: it runs every applicable
domain analysis over a profile and indexes the resulting guidance by
(file, line), so the session can append the right tip to the right hover.

Built-in advisors:

* leak verdicts (§VII-C1) on allocation sites with snapshot series;
* use/reuse fusion guidance (§VII-C2) on use and reuse sites;
* redundancy fixes on dead/killing write sites;
* false-sharing / race guidance on the contending access sites.

User-defined advisors register with :meth:`TipEngine.add_advisor` — any
callable from profile to ``[(file, line, tip), ...]``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.profile import Profile
from ..errors import AnalysisError

LineKey = Tuple[str, int]
Advisor = Callable[[Profile], List[Tuple[str, int, str]]]


def _site(node: CCTNode) -> Optional[LineKey]:
    frame = node.frame
    if frame.file and frame.line > 0:
        return (frame.file, frame.line)
    # Data-object contexts sit under their allocation site.
    if node.parent is not None:
        parent = node.parent.frame
        if parent.file and parent.line > 0:
            return (parent.file, parent.line)
    return None


def _leak_advisor(profile: Profile) -> List[Tuple[str, int, str]]:
    from ..analysis.leak import detect_leaks
    tips = []
    try:
        verdicts = detect_leaks(profile, "inuse_bytes", min_peak=1.0)
    except AnalysisError:
        return []
    except Exception:
        return []
    for verdict in verdicts:
        if not verdict.suspicious:
            continue
        site = _site(verdict.context)
        if site:
            tips.append(site + (
                "potential leak: live bytes stay high across snapshots "
                "(retention %.0f%%) — check that this allocation is "
                "released" % (verdict.retention * 100),))
    return tips


def _reuse_advisor(profile: Profile) -> List[Tuple[str, int, str]]:
    from ..analysis.reuse import fusion_candidates, reuse_points
    if not reuse_points(profile):
        return []
    tips = []
    for pair in fusion_candidates(profile, top=5):
        guidance = ("data reused in %s — consider hoisting to %s and "
                    "fusing the loops"
                    % (pair.reuse.frame.name, pair.hoist_target()))
        for node in (pair.use, pair.reuse):
            site = _site(node)
            if site:
                tips.append(site + (guidance,))
    return tips


def _redundancy_advisor(profile: Profile) -> List[Tuple[str, int, str]]:
    from ..analysis.redundancy import redundancy_pairs
    tips = []
    for pair in redundancy_pairs(profile, top=10):
        site = _site(pair.dead)
        if site:
            tips.append(site + (
                "values written here are overwritten at %s without being "
                "read — eliminate the dead store (%s)"
                % (pair.killing.frame.label(), pair.fix_site()),))
    return tips


def _sharing_advisor(profile: Profile) -> List[Tuple[str, int, str]]:
    from ..analysis.sharing import access_pairs
    tips = []
    for pair in access_pairs(profile, top=10):
        for node in (pair.first, pair.second):
            site = _site(node)
            if site:
                tips.append(site + (pair.guidance(),))
    return tips


class TipEngine:
    """Collects per-line optimization tips from all advisors."""

    def __init__(self, include_builtin: bool = True) -> None:
        self._advisors: List[Advisor] = []
        if include_builtin:
            self._advisors.extend([_leak_advisor, _reuse_advisor,
                                   _redundancy_advisor, _sharing_advisor])

    def add_advisor(self, advisor: Advisor) -> "TipEngine":
        """Register a user-defined advisor (§VI-B user-defined analysis)."""
        self._advisors.append(advisor)
        return self

    def collect(self, profile: Profile) -> Dict[LineKey, List[str]]:
        """All tips, deduplicated, indexed by (file, line)."""
        table: Dict[LineKey, List[str]] = {}
        for advisor in self._advisors:
            for file, line, tip in advisor(profile):
                bucket = table.setdefault((file, line), [])
                if tip not in bucket:
                    bucket.append(tip)
        return table

    def tips_for(self, profile: Profile, file: str,
                 line: int) -> List[str]:
        """Tips for one source line."""
        return self.collect(profile).get((file, line), [])
