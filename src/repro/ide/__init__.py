"""IDE integration: the Profile View Protocol, IDE actions, annotation
builders, the viewer session, a stdio server, and a scriptable mock IDE."""

from . import protocol
from .actions import (Capabilities, CodeLens, CodeLink, Decoration,
                      FloatingWindow, Hover)
from .annotations import (build_code_lenses, build_decorations,
                          build_floating_window, build_hover,
                          line_attribution)
from .hosts import HOSTS, HostProfile, host, make_ide
from .mock_ide import EditorState, MockIDE
from .session import OpenedProfile, OpenStats, ViewerSession
from .tips import TipEngine


def __getattr__(name):
    # Loaded lazily: ``.server`` imports the transport-shared dispatch
    # layer from ``repro.serve``, whose line parser imports
    # ``repro.ide.protocol`` — eager loading here would make that a
    # circular import whenever ``repro.serve`` is imported first.
    if name == "StdioServer":
        from .server import StdioServer
        return StdioServer
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


__all__ = [
    "protocol", "Capabilities", "CodeLens", "CodeLink", "Decoration",
    "FloatingWindow", "Hover", "build_code_lenses", "build_decorations",
    "build_floating_window", "build_hover", "line_attribution",
    "HOSTS", "HostProfile", "host", "make_ide",
    "EditorState", "MockIDE", "StdioServer", "OpenedProfile", "OpenStats",
    "ViewerSession", "TipEngine",
]
