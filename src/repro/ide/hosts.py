"""Editor host presets: capability matrices for the IDEs EasyView targets.

The paper ships EasyView as a VSCode extension and notes it "can be easily
integrated into JetBrains products with its platform SDK" (§VI-B) —
support for other IDEs is listed as under development (§VIII).  Because
the Profile View Protocol negotiates capabilities at session start (like
LSP's ``initialize``), targeting a new editor is exactly one
:class:`~repro.ide.actions.Capabilities` preset: the viewer degrades
gracefully to whatever the host can render.

This module collects the presets and a factory that builds a ready-to-use
:class:`~repro.ide.mock_ide.MockIDE` per host, which the tests use to
prove every view works across the capability spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .actions import Capabilities
from .mock_ide import MockIDE


@dataclass(frozen=True)
class HostProfile:
    """One editor's identity and rendering capabilities."""

    name: str
    capabilities: Capabilities
    description: str = ""


#: Capability matrices for editors EasyView targets.
HOSTS: Dict[str, HostProfile] = {
    "vscode": HostProfile(
        name="vscode",
        capabilities=Capabilities.full(),
        description="Visual Studio Code — the paper's shipped target; "
                    "every action available"),
    "jetbrains": HostProfile(
        name="jetbrains",
        capabilities=Capabilities(code_link=True, code_lens=True,
                                  hover=True, floating_window=False,
                                  decorations=True),
        description="JetBrains platform SDK — no floating tool windows "
                    "inside the editor pane; summaries go to a tool "
                    "window instead"),
    "eclipse": HostProfile(
        name="eclipse",
        capabilities=Capabilities(code_link=True, code_lens=False,
                                  hover=True, floating_window=True,
                                  decorations=True),
        description="Eclipse — hovers and markers but no inline code lens"),
    "vim": HostProfile(
        name="vim",
        capabilities=Capabilities(code_link=True, code_lens=False,
                                  hover=False, floating_window=False,
                                  decorations=False),
        description="A bare editor speaking only the mandatory code link"),
}


def host(name: str) -> HostProfile:
    """Look up a host preset."""
    try:
        return HOSTS[name]
    except KeyError:
        raise KeyError("unknown host %r (have: %s)"
                       % (name, ", ".join(sorted(HOSTS)))) from None


def make_ide(name: str, workspace: Optional[Dict[str, str]] = None
             ) -> MockIDE:
    """A scripted IDE configured with one host's capabilities."""
    profile = host(name)
    return MockIDE(capabilities=profile.capabilities,
                   workspace=workspace)
