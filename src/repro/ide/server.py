"""A stdio JSON-RPC server exposing a viewer session to external editors.

Messages are newline-delimited JSON (one message per line), the framing
used by many LSP-adjacent tools.  An editor process writes ``view/*``
requests to the server's stdin and reads responses plus ``ide/*``
notifications from its stdout.  The server is single-threaded and
processes requests in order, which matches the paper's single-viewer
interaction model; the request parsing, dispatch, and error mapping live
in :mod:`repro.serve.dispatch`, shared byte-for-byte with the concurrent
socket transport in :mod:`repro.serve.server`.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, IO, Optional

from ..serve.dispatch import (DEFAULT_SLOW_SECONDS, Dispatcher,
                              MAX_LINE_BYTES, oversized_response,
                              parse_line, undecodable_response)
from .actions import Capabilities
from .protocol import Request, Response
from .session import ViewerSession


class StdioServer:
    """Serve one viewer session over line-delimited JSON-RPC.

    Robustness contract: oversized lines and non-UTF-8 input produce a
    JSON-RPC ``PARSE_ERROR`` response (never an uncaught exception or an
    unbounded read), an exception inside a request handler produces an
    ``INTERNAL_ERROR`` response carrying the trace id (never a dead
    server), and ``KeyboardInterrupt`` is a clean shutdown.

    Every request is counted, timed into the ``server.request_seconds``
    histogram, and tracked by the ``server.inflight`` gauge; slow
    requests log one structured JSON line on stderr with their trace id
    and session id (all via the shared :class:`Dispatcher`).
    """

    def __init__(self, stdin: Optional[IO[str]] = None,
                 stdout: Optional[IO[str]] = None,
                 capabilities: Optional[Capabilities] = None,
                 max_line_bytes: int = MAX_LINE_BYTES,
                 slow_seconds: Optional[float] = None,
                 log: Optional[IO[str]] = None) -> None:
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout
        self.max_line_bytes = max_line_bytes
        self.session = ViewerSession(sink=self._notify,
                                     capabilities=capabilities,
                                     session_id="stdio")
        self.dispatcher = Dispatcher(self.session,
                                     slow_seconds=slow_seconds, log=log)
        self._running = False

    @property
    def slow_seconds(self) -> float:
        return self.dispatcher.slow_seconds

    def _notify(self, method: str, params: Dict[str, Any]) -> None:
        """Forward an ide/* action as a JSON-RPC notification."""
        self._write(Request(method=method, params=params).to_json())

    def _write(self, line: str) -> None:
        self._stdout.write(line + "\n")
        self._stdout.flush()

    def _handle_request(self, message: Request) -> Response:
        return self.dispatcher.handle(message)

    def _read_line(self):
        """One bounded line read.

        Returns ``(kind, line)`` where kind is ``"eof"``, ``"line"``,
        ``"oversized"`` (line longer than the bound; its remainder is
        drained), or ``"undecodable"`` (bytes that are not UTF-8).  Reads
        the underlying byte buffer when one exists so a bad byte sequence
        surfaces as a value, not a decode exception mid-iteration.
        """
        reader = getattr(self._stdin, "buffer", self._stdin)
        chunk = reader.readline(self.max_line_bytes + 1)
        if not chunk:
            return "eof", None
        newline = b"\n" if isinstance(chunk, bytes) else "\n"
        if len(chunk) > self.max_line_bytes and not chunk.endswith(newline):
            # Drain the rest of the oversized line so the next read starts
            # on a message boundary.
            while True:
                more = reader.readline(self.max_line_bytes)
                if not more or more.endswith(newline):
                    break
            return "oversized", None
        if isinstance(chunk, bytes):
            try:
                return "line", chunk.decode("utf-8")
            except UnicodeDecodeError:
                return "undecodable", None
        return "line", chunk

    def serve_forever(self) -> int:
        """Read requests until EOF, ``shutdown``, or Ctrl-C; returns the
        number of requests handled."""
        self._running = True
        handled = 0
        try:
            while True:
                kind, line = self._read_line()
                if kind == "eof":
                    break
                if kind == "oversized":
                    handled += 1
                    self._write(oversized_response(self.max_line_bytes)
                                .to_json())
                    continue
                if kind == "undecodable":
                    handled += 1
                    self._write(undecodable_response().to_json())
                    continue
                message, error = parse_line(line)
                if message is None and error is None:
                    continue  # blank line
                handled += 1
                if error is not None:
                    self._write(error.to_json())
                    continue
                if message.method == "shutdown":
                    self._write(Response.success(message.id, {"ok": True})
                                .to_json())
                    break
                response = self._handle_request(message)
                if not message.is_notification:
                    self._write(response.to_json())
        except KeyboardInterrupt:
            pass  # Ctrl-C is a clean shutdown, not a crash
        finally:
            self._running = False
        return handled


def main() -> int:
    """Entry point: ``python -m repro.ide.server``."""
    server = StdioServer()
    server.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
