"""A stdio JSON-RPC server exposing a viewer session to external editors.

Messages are newline-delimited JSON (one message per line), the framing
used by many LSP-adjacent tools.  An editor process writes ``view/*``
requests to the server's stdin and reads responses plus ``ide/*``
notifications from its stdout.  The server is single-threaded and
processes requests in order, which matches the paper's single-viewer
interaction model.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, IO, Optional

from ..errors import ProtocolError
from ..obs import get_registry, get_tracer
from .actions import Capabilities
from .protocol import (INTERNAL_ERROR, INVALID_REQUEST, PARSE_ERROR,
                       Request, Response, parse_message)
from .session import ViewerSession


#: Upper bound on one request line.  An editor never legitimately sends
#: requests this large; anything bigger is a broken or hostile peer, and
#: reading it unbounded would balloon the server's memory.
MAX_LINE_BYTES = 10 * 1024 * 1024

#: A request slower than this gets a structured log line on stderr
#: carrying its trace id (overridable via ``EASYVIEW_SLOW_MS``).
DEFAULT_SLOW_SECONDS = 0.5


def _env_slow_seconds() -> float:
    try:
        return float(os.environ.get("EASYVIEW_SLOW_MS", "")) / 1e3
    except ValueError:
        return DEFAULT_SLOW_SECONDS


class StdioServer:
    """Serve one viewer session over line-delimited JSON-RPC.

    Robustness contract: oversized lines and non-UTF-8 input produce a
    JSON-RPC ``PARSE_ERROR`` response (never an uncaught exception or an
    unbounded read), an exception inside a request handler produces an
    ``INTERNAL_ERROR`` response carrying the trace id (never a dead
    server), and ``KeyboardInterrupt`` is a clean shutdown.

    Every request is counted, timed into the ``server.request_seconds``
    histogram, and tracked by the ``server.inflight`` gauge; slow
    requests log one structured JSON line on stderr with their trace id.
    """

    def __init__(self, stdin: Optional[IO[str]] = None,
                 stdout: Optional[IO[str]] = None,
                 capabilities: Optional[Capabilities] = None,
                 max_line_bytes: int = MAX_LINE_BYTES,
                 slow_seconds: Optional[float] = None,
                 log: Optional[IO[str]] = None) -> None:
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout
        self._log = log if log is not None else sys.stderr
        self.max_line_bytes = max_line_bytes
        self.slow_seconds = (slow_seconds if slow_seconds is not None
                             else _env_slow_seconds())
        self.session = ViewerSession(sink=self._notify,
                                     capabilities=capabilities)
        self._running = False
        registry = get_registry()
        self._requests = registry.counter(
            "server.requests", "PVP requests handled")
        self._errors = registry.counter(
            "server.errors", "PVP requests answered with an error")
        self._crashes = registry.counter(
            "server.handler_crashes",
            "unexpected exceptions inside a request handler")
        self._slow = registry.counter(
            "server.slow_requests", "requests over the slow threshold")
        self._inflight = registry.gauge(
            "server.inflight", "requests currently being handled")
        self._latency = registry.histogram(
            "server.request_seconds", description="per-request latency")

    def _notify(self, method: str, params: Dict[str, Any]) -> None:
        """Forward an ide/* action as a JSON-RPC notification."""
        self._write(Request(method=method, params=params).to_json())

    def _write(self, line: str) -> None:
        self._stdout.write(line + "\n")
        self._stdout.flush()

    def _handle_request(self, message: Request) -> Response:
        """Handle one request under a span, with latency accounting.

        Robustness contract: *no* exception from a request handler
        escapes to ``serve_forever`` — a handler crash becomes a JSON-RPC
        ``INTERNAL_ERROR`` response carrying the trace id, and the server
        keeps serving.  Requests slower than ``slow_seconds`` emit a
        structured log line (one JSON object) on stderr with the same
        trace id, so a slow interaction can be joined to its spans.
        """
        tracer = get_tracer()
        self._requests.inc()
        self._inflight.inc()
        started = time.perf_counter()
        trace_id = None
        try:
            with tracer.span("server.request",
                             method=message.method) as span:
                if span is not None:
                    trace_id = span.trace_id
                try:
                    response = self.session.handle(message)
                except Exception as exc:  # the handler crashed: answer,
                    self._crashes.inc()   # don't die
                    if span is not None:
                        span.set("crashed", type(exc).__name__)
                    detail = "internal error handling %s: %s" % (
                        message.method, exc)
                    if trace_id is not None:
                        detail += " (trace %s)" % trace_id
                    response = Response.failure(message.id, INTERNAL_ERROR,
                                                detail)
                if span is not None:
                    span.set("ok", response.ok)
        finally:
            elapsed = time.perf_counter() - started
            self._inflight.dec()
            self._latency.observe(elapsed)
        if not response.ok:
            self._errors.inc()
        if elapsed >= self.slow_seconds:
            self._slow.inc()
            self._log_slow(message, elapsed, trace_id, response.ok)
        return response

    def _log_slow(self, message: Request, elapsed: float,
                  trace_id: Optional[str], ok: bool) -> None:
        try:
            self._log.write(json.dumps({
                "event": "slow_request",
                "method": message.method,
                "seconds": round(elapsed, 6),
                "traceId": trace_id,
                "ok": ok,
            }, sort_keys=True) + "\n")
            self._log.flush()
        except (OSError, ValueError):
            pass  # logging must never take the server down

    def _read_line(self):
        """One bounded line read.

        Returns ``(kind, line)`` where kind is ``"eof"``, ``"line"``,
        ``"oversized"`` (line longer than the bound; its remainder is
        drained), or ``"undecodable"`` (bytes that are not UTF-8).  Reads
        the underlying byte buffer when one exists so a bad byte sequence
        surfaces as a value, not a decode exception mid-iteration.
        """
        reader = getattr(self._stdin, "buffer", self._stdin)
        chunk = reader.readline(self.max_line_bytes + 1)
        if not chunk:
            return "eof", None
        newline = b"\n" if isinstance(chunk, bytes) else "\n"
        if len(chunk) > self.max_line_bytes and not chunk.endswith(newline):
            # Drain the rest of the oversized line so the next read starts
            # on a message boundary.
            while True:
                more = reader.readline(self.max_line_bytes)
                if not more or more.endswith(newline):
                    break
            return "oversized", None
        if isinstance(chunk, bytes):
            try:
                return "line", chunk.decode("utf-8")
            except UnicodeDecodeError:
                return "undecodable", None
        return "line", chunk

    def serve_forever(self) -> int:
        """Read requests until EOF, ``shutdown``, or Ctrl-C; returns the
        number of requests handled."""
        self._running = True
        handled = 0
        try:
            while True:
                kind, line = self._read_line()
                if kind == "eof":
                    break
                if kind == "oversized":
                    handled += 1
                    self._write(Response.failure(
                        None, PARSE_ERROR,
                        "request exceeds %d bytes" % self.max_line_bytes)
                        .to_json())
                    continue
                if kind == "undecodable":
                    handled += 1
                    self._write(Response.failure(
                        None, PARSE_ERROR,
                        "request is not valid UTF-8").to_json())
                    continue
                line = line.strip()
                if not line:
                    continue
                handled += 1
                try:
                    message = parse_message(line)
                except ProtocolError as exc:
                    self._write(Response.failure(None, PARSE_ERROR,
                                                 str(exc)).to_json())
                    continue
                if not isinstance(message, Request):
                    self._write(Response.failure(
                        None, INVALID_REQUEST,
                        "expected a request").to_json())
                    continue
                if message.method == "shutdown":
                    self._write(Response.success(message.id, {"ok": True})
                                .to_json())
                    break
                response = self._handle_request(message)
                if not message.is_notification:
                    self._write(response.to_json())
        except KeyboardInterrupt:
            pass  # Ctrl-C is a clean shutdown, not a crash
        finally:
            self._running = False
        return handled


def main() -> int:
    """Entry point: ``python -m repro.ide.server``."""
    server = StdioServer()
    server.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
