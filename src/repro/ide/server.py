"""A stdio JSON-RPC server exposing a viewer session to external editors.

Messages are newline-delimited JSON (one message per line), the framing
used by many LSP-adjacent tools.  An editor process writes ``view/*``
requests to the server's stdin and reads responses plus ``ide/*``
notifications from its stdout.  The server is single-threaded and
processes requests in order, which matches the paper's single-viewer
interaction model.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, IO, Optional

from ..errors import ProtocolError
from .actions import Capabilities
from .protocol import (INVALID_REQUEST, PARSE_ERROR, Request, Response,
                       parse_message)
from .session import ViewerSession


class StdioServer:
    """Serve one viewer session over line-delimited JSON-RPC."""

    def __init__(self, stdin: Optional[IO[str]] = None,
                 stdout: Optional[IO[str]] = None,
                 capabilities: Optional[Capabilities] = None) -> None:
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout
        self.session = ViewerSession(sink=self._notify,
                                     capabilities=capabilities)
        self._running = False

    def _notify(self, method: str, params: Dict[str, Any]) -> None:
        """Forward an ide/* action as a JSON-RPC notification."""
        self._write(Request(method=method, params=params).to_json())

    def _write(self, line: str) -> None:
        self._stdout.write(line + "\n")
        self._stdout.flush()

    def serve_forever(self) -> int:
        """Read requests until EOF or a ``shutdown`` request; returns the
        number of requests handled."""
        self._running = True
        handled = 0
        for line in self._stdin:
            line = line.strip()
            if not line:
                continue
            handled += 1
            try:
                message = parse_message(line)
            except ProtocolError as exc:
                self._write(Response.failure(None, PARSE_ERROR,
                                             str(exc)).to_json())
                continue
            if not isinstance(message, Request):
                self._write(Response.failure(None, INVALID_REQUEST,
                                             "expected a request").to_json())
                continue
            if message.method == "shutdown":
                self._write(Response.success(message.id, {"ok": True})
                            .to_json())
                break
            response = self.session.handle(message)
            if not message.is_notification:
                self._write(response.to_json())
        self._running = False
        return handled


def main() -> int:
    """Entry point: ``python -m repro.ide.server``."""
    server = StdioServer()
    server.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
