"""The viewer session: EasyView's extension core.

A :class:`ViewerSession` owns the loaded profiles and their views, serves
``view/*`` requests, and emits ``ide/*`` actions through a transport
callable (the mock IDE, the stdio server, or a test harness).  It is also
the measured object of Fig. 5: :meth:`open` runs the full EasyView open
pipeline — parse, build the CCT, compute metrics, transform, lay out — and
records the end-to-end response time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..analysis import formula as formula_mod
from ..analysis import query as query_mod
from ..analysis.viewtree import ViewNode, ViewTree
from ..core.profile import Profile
from ..engine import AnalysisEngine, get_engine
from ..errors import EasyViewError, ProtocolError
from ..viz.histogram import sparkline, trend_label
from ..viz.layout import FlameLayout
from .actions import Capabilities, CodeLink, FloatingWindow, Hover
from .annotations import (build_decorations, build_hover,
                          build_floating_window)
from . import protocol as pvp

ActionSink = Callable[[str, Dict[str, Any]], None]

SHAPES = ("top_down", "bottom_up", "flat")


@dataclass
class OpenStats:
    """Timing breakdown of one profile open (the Fig. 5 measurement)."""

    parse_seconds: float = 0.0
    analyze_seconds: float = 0.0
    render_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.parse_seconds + self.analyze_seconds + self.render_seconds


class OpenedProfile:
    """One loaded profile, its cached views, and its node registry."""

    def __init__(self, profile_id: int, profile: Profile) -> None:
        self.id = profile_id
        self.profile = profile
        self.views: Dict[str, ViewTree] = {}
        self.layouts: Dict[str, FlameLayout] = {}
        self.tables: Dict[str, object] = {}   # shape -> TreeTable
        self.stats = OpenStats()
        self._node_ids: Dict[int, int] = {}
        self._nodes: List[ViewNode] = []

    def node_ref(self, node: ViewNode) -> int:
        """A stable integer handle for a view node (for the wire)."""
        ref = self._node_ids.get(id(node))
        if ref is None:
            ref = len(self._nodes)
            self._nodes.append(node)
            self._node_ids[id(node)] = ref
        return ref

    def node_by_ref(self, ref: int) -> ViewNode:
        if not 0 <= ref < len(self._nodes):
            raise ProtocolError("unknown node reference %d" % ref)
        return self._nodes[ref]


class ViewerSession:
    """The EasyView viewer: profiles in, views and IDE actions out."""

    def __init__(self, sink: Optional[ActionSink] = None,
                 capabilities: Optional[Capabilities] = None,
                 canvas_width: float = 1200.0,
                 engine: Optional[AnalysisEngine] = None,
                 session_id: str = "local") -> None:
        self._sink = sink or (lambda method, params: None)
        #: Which client this session belongs to ("stdio" for the stdio
        #: transport, "c<N>" for socket connections).  Slow-request log
        #: lines and the ``obs/trace`` payload carry it, so a trace in a
        #: multi-client server is attributable to its session.
        self.session_id = session_id
        self.capabilities = capabilities or Capabilities.full()
        self.canvas_width = canvas_width
        #: All view/hover/code-lens computation routes through the engine;
        #: by default sessions share the process-wide instance, so equal
        #: profiles opened by different sessions share cached work.
        self.engine = engine if engine is not None else get_engine()
        self._profiles: Dict[int, OpenedProfile] = {}
        self._next_id = 1
        #: Profile stores opened through store/* requests, keyed by their
        #: (absolute) root directory so repeated requests share one store.
        self._stores: Dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------------

    def open(self, source, format: Optional[str] = None,
             shape: str = "top_down") -> OpenedProfile:
        """Open a profile (path or :class:`Profile`) and build its first view.

        This is the measured "response time" operation: parsing, tree
        construction, metric computation, the default transform, and the
        initial flame-graph layout all happen here, timed per phase.
        """
        from ..core.gcguard import no_gc
        from ..analysis.metrics import compute_inclusive
        from ..viz.layout import layout_profile
        stats = OpenStats()
        with no_gc():  # §V-C: no cyclic GC during bulk tree construction
            t0 = time.perf_counter()
            if isinstance(source, Profile):
                profile = source
            else:
                from ..converters import open_profile
                profile = open_profile(source, format=format)
            t1 = time.perf_counter()
            stats.parse_seconds = t1 - t0

            opened = OpenedProfile(self._next_id, profile)
            self._next_id += 1
            compute_inclusive(profile)
            t2 = time.perf_counter()
            stats.analyze_seconds = t2 - t1

            # The initial view renders lazily straight off the CCT; the
            # full view tree materializes on first interaction that needs
            # it (see :meth:`view`).
            if shape == "top_down":
                opened.layouts[shape] = layout_profile(
                    profile, canvas_width=self.canvas_width)
            else:
                opened.views[shape] = self.engine.transform(profile, shape)
                opened.layouts[shape] = self.engine.layout(
                    opened.views[shape], canvas_width=self.canvas_width)
            t3 = time.perf_counter()
            stats.render_seconds = t3 - t2
        opened.stats = stats
        self._profiles[opened.id] = opened
        return opened

    def close(self, profile_id: int) -> None:
        """Drop a profile and its cached views."""
        self._profiles.pop(profile_id, None)

    def get(self, profile_id: int) -> OpenedProfile:
        try:
            return self._profiles[profile_id]
        except KeyError:
            raise ProtocolError("no open profile with id %d"
                                % profile_id) from None

    # -- views -------------------------------------------------------------------

    def view(self, profile_id: int, shape: str) -> ViewTree:
        """The (cached) view of one shape for an open profile.

        ``opened.views`` pins the tree object so node references stay
        valid for the profile's lifetime even if the engine's LRU evicts
        the entry; the engine supplies (and memoizes) the computation.
        """
        opened = self.get(profile_id)
        if shape not in opened.views:
            opened.views[shape] = self.engine.transform(opened.profile,
                                                        shape)
        return opened.views[shape]

    def tree_table(self, profile_id: int, shape: str):
        """The (cached) tree table for one shape (§VI-A(c))."""
        opened = self.get(profile_id)
        if shape not in opened.tables:
            from ..viz.treetable import TreeTable
            opened.tables[shape] = TreeTable(self.view(profile_id, shape))
        return opened.tables[shape]

    def flame_layout(self, profile_id: int, shape: str,
                     metric: str = "") -> FlameLayout:
        """The (cached) flame-graph layout for one shape."""
        opened = self.get(profile_id)
        tree = self.view(profile_id, shape)
        key = "%s:%s" % (shape, metric)
        if key not in opened.layouts:
            metric_index = tree.schema.index_of(metric) if metric else 0
            opened.layouts[key] = self.engine.layout(
                tree, metric_index=metric_index,
                canvas_width=self.canvas_width)
        return opened.layouts[key]

    # -- the mandatory action -----------------------------------------------------

    def select(self, profile_id: int, node: ViewNode) -> Optional[CodeLink]:
        """Code link: clicking a frame opens its source location (§VI-B).

        Emits ``ide/openDocument`` when the frame has line mapping; returns
        the link (or None when no mapping is available).
        """
        frame = node.frame
        if node.sources:
            # Prefer the original context's exact line over the merged frame.
            best = max(node.sources,
                       key=lambda s: sum(s.metrics.values()) if s.metrics else 0)
            if best.frame.file:
                frame = best.frame
        if not frame.file or frame.line <= 0:
            return None
        link = CodeLink(file=frame.file, line=frame.line,
                        context=node.frame.label())
        self._emit(pvp.IDE_OPEN_DOCUMENT, link.to_params())
        return link

    # -- optional actions -----------------------------------------------------------

    def show_hover(self, profile_id: int, shape: str, file: str,
                   line: int) -> Optional[Hover]:
        """Emit the hover for a source line: metrics plus the optimization
        tips the tip engine derived from the domain analyses (§VI-B)."""
        if not self.capabilities.hover:
            return None
        opened = self.get(profile_id)
        tips = self._tip_engine().tips_for(opened.profile, file, line)
        tree = self.view(profile_id, shape)
        hover = build_hover(tree, file, line, tips=tips,
                            attribution=self.engine.line_attribution(tree))
        if hover is not None:
            self._emit(pvp.IDE_HOVER, hover.to_params())
        return hover

    def _tip_engine(self):
        if not hasattr(self, "_tips"):
            from .tips import TipEngine
            self._tips = TipEngine()
        return self._tips

    def show_code_lenses(self, profile_id: int, shape: str,
                         file: Optional[str] = None) -> int:
        """Emit code lenses for a document; returns how many were sent.

        With no ``file``, lenses for every attributed document are built as
        one batch through the engine's worker pool (the whole-workspace
        refresh an IDE triggers after opening a profile).
        """
        if not self.capabilities.code_lens:
            return 0
        tree = self.view(profile_id, shape)
        if file is None:
            per_file = self.engine.code_lenses_batch(
                tree, self.engine.annotated_files(tree))
            lenses = [lens for path in sorted(per_file)
                      for lens in per_file[path]]
        else:
            lenses = self.engine.code_lenses(tree, file=file)
        for lens in lenses:
            self._emit(pvp.IDE_CODE_LENS, lens.to_params())
        return len(lenses)

    def show_summary(self, profile_id: int,
                     shape: str = "top_down") -> FloatingWindow:
        """Emit the whole-profile floating window."""
        window = build_floating_window(self.view(profile_id, shape))
        if self.capabilities.floating_window:
            self._emit(pvp.IDE_FLOATING_WINDOW, window.to_params())
        return window

    def show_decorations(self, profile_id: int, shape: str,
                         file: Optional[str] = None) -> int:
        """Emit color-semantics decorations; returns how many were sent."""
        if not self.capabilities.decorations:
            return 0
        tree = self.view(profile_id, shape)
        decorations = build_decorations(
            tree, file=file,
            attribution=self.engine.line_attribution(tree))
        for decoration in decorations:
            self._emit(pvp.IDE_SET_DECORATIONS, decoration.to_params())
        return len(decorations)

    # -- diagnostics ---------------------------------------------------------------

    def lint(self, profile_id: Optional[int] = None,
             formula: Optional[str] = None,
             callback_source: Optional[str] = None,
             disable: Sequence[str] = ()) -> List[Any]:
        """Run ProfLint and publish the findings to the IDE.

        Lints any combination of: an open profile's structure, a formula
        (checked against that profile's metric names when one is given),
        and callback source text.  The findings go out as one
        ``ide/publishDiagnostics`` notification — the IDE side renders them
        as squiggles — and are also returned to the caller.
        """
        from ..lint import (LintConfig, lint_formula, lint_profile,
                            lint_source, severity_counts, sort_diagnostics)
        config = LintConfig.from_directives(disable)
        diagnostics = []
        metrics = None
        if profile_id is not None:
            opened = self.get(profile_id)
            diagnostics.extend(lint_profile(opened.profile, config=config))
            metrics = opened.profile.schema.names()
        if formula:
            diagnostics.extend(lint_formula(
                formula, metrics=metrics,
                profile_count=max(1, len(self._profiles)), config=config))
        if callback_source:
            diagnostics.extend(lint_source(callback_source, config=config))
        diagnostics = sort_diagnostics(diagnostics)
        self._emit(pvp.IDE_PUBLISH_DIAGNOSTICS, {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "counts": severity_counts(diagnostics),
        })
        return diagnostics

    def selfcheck(self, source: Optional[str] = None,
                  subject: str = "<buffer>",
                  paths: Sequence[str] = (),
                  disable: Sequence[str] = ()) -> List[Any]:
        """Run SelfCheck (EV4xx) and publish findings as IDE squiggles.

        The IDE sends either the text of an open repo-source buffer
        (``source`` + ``subject``) — the usual on-save flow — or a list
        of ``paths`` to sweep.  Findings go out as the same
        ``ide/publishDiagnostics`` notification :meth:`lint` uses, so the
        editor renders concurrency findings on EasyView's own code
        exactly as it renders formula findings on a user's.
        """
        from ..lint import (LintConfig, severity_counts, sort_diagnostics)
        from ..sa import analyze_paths, analyze_source
        config = LintConfig.from_directives(disable)
        diagnostics: List[Any] = []
        if source is not None:
            diagnostics.extend(analyze_source(source, subject,
                                              config=config))
        if paths:
            diagnostics.extend(analyze_paths(list(paths), config=config))
        diagnostics = sort_diagnostics(diagnostics)
        self._emit(pvp.IDE_PUBLISH_DIAGNOSTICS, {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "counts": severity_counts(diagnostics),
        })
        return diagnostics

    # -- export --------------------------------------------------------------------

    def export(self, profile_id: int, format: str,
               shape: str = "top_down", metric: str = "") -> str:
        """Render an open profile to a portable text format.

        Supported formats: ``svg`` (flame graph), ``html`` (full report),
        ``folded`` (collapsed stacks), ``json`` (EasyView JSON), ``text``
        (terminal flame rows).
        """
        opened = self.get(profile_id)
        if format == "folded":
            from ..converters.collapsed import serialize
            return serialize(opened.profile, metric=metric)
        if format == "json":
            from ..core import jsonio
            return jsonio.dumps(opened.profile)
        tree = self.view(profile_id, shape)
        metric_index = tree.schema.index_of(metric) if metric else 0
        if format == "svg":
            from ..viz.svg import render_svg
            return render_svg(self.engine.layout(
                tree, metric_index=metric_index,
                canvas_width=self.canvas_width),
                              metric=tree.schema[metric_index],
                              inverted=True)
        if format == "text":
            from ..viz.terminal import render_flame_text
            return render_flame_text(self.engine.layout(
                tree, metric_index=metric_index))
        if format == "html":
            from ..viz.flamegraph import FlameGraph
            from ..viz.html import HtmlReport
            report = HtmlReport("EasyView export")
            graph = FlameGraph(tree)
            graph.metric_index = metric_index
            report.add_flamegraph(graph)
            return report.render()
        raise ProtocolError("unknown export format %r (svg, html, folded, "
                            "json, text)" % format)

    # -- multi-profile operations ------------------------------------------------

    def open_diff(self, baseline_id: int, treatment_id: int,
                  shape: str = "top_down") -> OpenedProfile:
        """Open a differential view of two loaded profiles as a new entry."""
        base = self.view(baseline_id, shape)
        treat = self.view(treatment_id, shape)
        diff_tree = self.engine.diff_trees(base, treat)
        opened = OpenedProfile(self._next_id, self.get(treatment_id).profile)
        self._next_id += 1
        opened.views[shape] = diff_tree
        opened.layouts[shape] = self.engine.layout(
            diff_tree, canvas_width=self.canvas_width)
        self._profiles[opened.id] = opened
        return opened

    def open_aggregate(self, profile_ids: Sequence[int],
                       shape: str = "top_down") -> OpenedProfile:
        """Open an aggregate view over several loaded profiles."""
        trees = [self.view(pid, shape) for pid in profile_ids]
        merged = self.engine.merge_trees(trees)
        opened = OpenedProfile(self._next_id,
                               self.get(profile_ids[0]).profile)
        self._next_id += 1
        opened.views[shape] = merged
        opened.layouts[shape] = self.engine.layout(
            merged, canvas_width=self.canvas_width)
        self._profiles[opened.id] = opened
        return opened

    # -- the profile store ---------------------------------------------------------

    def store(self, root: str):
        """The :class:`~repro.store.ProfileStore` at ``root`` (cached).

        Every ``store/*`` request names its store directory; the session
        keeps one live instance per directory, all sharing the session's
        engine so query results land in the same digest-keyed cache as
        file-backed views.
        """
        import os
        key = os.path.abspath(root)
        store = self._stores.get(key)
        if store is None:
            from ..store import ProfileStore
            store = ProfileStore(key, engine=self.engine)
            self._stores[key] = store
        return store

    def open_query(self, root: str, query: str,
                   shape: str = "top_down") -> OpenedProfile:
        """Open a store query result exactly like a file-backed profile.

        The merged tree becomes a regular :class:`OpenedProfile`: it gets
        a profile id, node references, layouts, exports — every ``view/*``
        request works on it unchanged.
        """
        result = self.store(root).query(query, shape=shape)
        if result.tree is None:
            raise ProtocolError("query %r matched no records"
                                % result.query.to_text())
        opened = OpenedProfile(self._next_id,
                               self.store(root).load(result.entries[0]))
        self._next_id += 1
        opened.views[result.tree.shape] = result.tree
        # Views index by the *requested* shape too, so view/switchShape and
        # friends resolve it the same way they resolve file-backed views.
        opened.views[shape] = result.tree
        opened.layouts[shape] = self.engine.layout(
            result.tree, canvas_width=self.canvas_width)
        self._profiles[opened.id] = opened
        return opened

    # -- self-observability ----------------------------------------------------------

    def obs_metrics(self) -> Dict[str, Any]:
        """The ``obs/metrics`` payload: registry + engine + tracer state.

        Supersedes and generalizes ``view/engineStats`` (still served for
        older clients): the engine's cache counters appear here as the
        ``engine`` tenant next to every other instrumented subsystem.
        """
        from .. import obs
        tracer = obs.get_tracer()
        return {
            "metrics": obs.get_registry().snapshot(),
            "engine": self.engine.stats(),
            "tracer": {
                "enabled": tracer.enabled,
                "capacity": tracer.capacity,
                "sampleEvery": tracer.sample_every,
                "spans": len(tracer),
            },
        }

    def obs_trace(self, limit: Optional[int] = None,
                  clear: bool = False) -> Dict[str, Any]:
        """The ``obs/trace`` payload: the span ring as plain data.

        ``limit`` keeps only the newest N spans; ``clear`` empties the
        ring after the snapshot (so a client can poll without re-reading
        old spans).
        """
        from .. import obs
        tracer = obs.get_tracer()
        spans = tracer.spans()
        if limit is not None and limit >= 0:
            spans = spans[-limit:] if limit else []
        if clear:
            tracer.clear()
        return {"enabled": tracer.enabled,
                "sessionId": self.session_id,
                "spans": [span.to_dict() for span in spans]}

    # -- protocol dispatch -----------------------------------------------------------

    def handle(self, request: pvp.Request) -> pvp.Response:
        """Dispatch one ``view/*`` request to the session."""
        try:
            result = self._dispatch(request)
            return pvp.Response.success(request.id, result)
        except ProtocolError as exc:
            return pvp.Response.failure(request.id, pvp.INVALID_PARAMS,
                                        str(exc))
        except (TypeError, ValueError, KeyError, AttributeError) as exc:
            # Malformed parameter types (a string profileId, a null list,
            # a boolean where text belongs): the editor gets a parameter
            # error, never a dead session.
            return pvp.Response.failure(
                request.id, pvp.INVALID_PARAMS,
                "malformed parameters for %s: %s" % (request.method, exc))
        except (EasyViewError, OSError) as exc:
            return pvp.Response.failure(request.id, pvp.INTERNAL_ERROR,
                                        str(exc))

    def _dispatch(self, request: pvp.Request) -> Any:
        method = request.method
        params = request.params
        if method == pvp.VIEW_CAPABILITIES:
            self.capabilities = Capabilities.from_dict(
                params.get("capabilities", {}))
            return {"shapes": list(SHAPES),
                    "capabilities": self.capabilities.to_dict()}
        if method == pvp.VIEW_OPEN:
            pvp.require_params(request, "path")
            if not isinstance(params["path"], str):
                raise ProtocolError("path must be a string")
            opened = self.open(params["path"], format=params.get("format"))
            return {"profileId": opened.id,
                    "summary": opened.profile.summary(),
                    "responseSeconds": opened.stats.total_seconds}
        if method == pvp.VIEW_CLOSE:
            pvp.require_params(request, "profileId")
            self.close(int(params["profileId"]))
            return {"closed": True}
        if method == pvp.VIEW_SHAPE:
            pvp.require_params(request, "profileId", "shape")
            shape = params["shape"]
            if shape not in SHAPES:
                raise ProtocolError("unknown shape %r" % shape)
            flame = self.flame_layout(int(params["profileId"]), shape,
                                      params.get("metric", ""))
            return {"shape": shape, "blocks": flame.laid_out_nodes,
                    "depth": flame.max_depth}
        if method == pvp.VIEW_SELECT or method == pvp.VIEW_CLICK:
            pvp.require_params(request, "profileId", "nodeRef")
            opened = self.get(int(params["profileId"]))
            node = opened.node_by_ref(int(params["nodeRef"]))
            link = self.select(opened.id, node)
            schema = (next(iter(opened.views.values())).schema
                      if opened.views else opened.profile.schema)
            result: Dict[str, Any] = {
                "linked": link is not None,
                "metrics": {schema[i].name: v
                            for i, v in sorted(node.inclusive.items())
                            if i < len(schema)},
            }
            if method == pvp.VIEW_CLICK and node.histogram:
                # A click additionally pops the per-profile histogram pane.
                first = next(iter(node.histogram.values()))
                result["histogram"] = {"series": list(first),
                                       "sparkline": sparkline(first),
                                       "trend": trend_label(first)}
            return result
        if method == pvp.VIEW_SEARCH:
            pvp.require_params(request, "profileId", "pattern")
            opened = self.get(int(params["profileId"]))
            shape = params.get("shape", "top_down")
            tree = self.view(opened.id, shape)
            matches = query_mod.search(tree, params["pattern"],
                                       regex=bool(params.get("regex")))
            coverage = query_mod.match_fraction(tree, matches)
            return {"matches": [opened.node_ref(m) for m in matches],
                    "coverage": coverage}
        if method == pvp.VIEW_HOVER:
            pvp.require_params(request, "profileId", "file", "line")
            hover = self.show_hover(int(params["profileId"]),
                                    params.get("shape", "top_down"),
                                    params["file"], int(params["line"]))
            return {"found": hover is not None,
                    "lines": hover.lines if hover else []}
        if method == pvp.VIEW_ZOOM:
            pvp.require_params(request, "profileId", "nodeRef")
            opened = self.get(int(params["profileId"]))
            node = opened.node_by_ref(int(params["nodeRef"]))
            shape = params.get("shape", "top_down")
            zoomed = self.engine.layout(self.view(opened.id, shape),
                                        root=node,
                                        canvas_width=self.canvas_width)
            return {"blocks": zoomed.laid_out_nodes, "depth": zoomed.max_depth}
        if method == pvp.VIEW_SUMMARY:
            pvp.require_params(request, "profileId")
            window = self.show_summary(int(params["profileId"]))
            return {"title": window.title, "body": window.body}
        if method == pvp.VIEW_DIFF:
            pvp.require_params(request, "baselineId", "treatmentId")
            opened = self.open_diff(int(params["baselineId"]),
                                    int(params["treatmentId"]),
                                    params.get("shape", "top_down"))
            from ..analysis.diff import summarize
            return {"profileId": opened.id,
                    "tags": summarize(next(iter(opened.views.values())))}
        if method == pvp.VIEW_AGGREGATE:
            pvp.require_params(request, "profileIds")
            opened = self.open_aggregate(
                [int(pid) for pid in params["profileIds"]],
                params.get("shape", "top_down"))
            return {"profileId": opened.id}
        if method in (pvp.VIEW_TABLE, pvp.VIEW_TABLE_EXPAND):
            pvp.require_params(request, "profileId")
            opened = self.get(int(params["profileId"]))
            shape = params.get("shape", "top_down")
            table = self.tree_table(opened.id, shape)
            if method == pvp.VIEW_TABLE_EXPAND:
                if "nodeRef" in params:
                    table.expand(opened.node_by_ref(int(params["nodeRef"])))
                elif params.get("hotPath"):
                    table.expand_hot_path()
                else:
                    table.expand_all(max_depth=params.get("maxDepth"))
            rows = table.rows()[:int(params.get("maxRows", 100))]
            return {"rows": [{
                "ref": opened.node_ref(row.node),
                "depth": row.depth,
                "label": row.label(),
                "expanded": row.expanded,
                "values": row.values,
            } for row in rows],
                "columns": [table.tree.schema[c].name
                            for c in table.columns]}
        if method == pvp.VIEW_EXPORT:
            pvp.require_params(request, "profileId", "format")
            return {"content": self.export(int(params["profileId"]),
                                           params["format"],
                                           params.get("shape", "top_down"),
                                           params.get("metric", ""))}
        if method == pvp.VIEW_LINT:
            profile_id = params.get("profileId")
            diagnostics = self.lint(
                profile_id=int(profile_id) if profile_id is not None
                else None,
                formula=params.get("formula"),
                callback_source=params.get("callbackSource"),
                disable=params.get("disable", ()))
            from ..lint import severity_counts
            return {"diagnostics": [d.to_dict() for d in diagnostics],
                    "counts": severity_counts(diagnostics)}
        if method == pvp.VIEW_SELFCHECK:
            diagnostics = self.selfcheck(
                source=params.get("source"),
                subject=params.get("subject", "<buffer>"),
                paths=params.get("paths", ()),
                disable=params.get("disable", ()))
            from ..lint import severity_counts
            return {"diagnostics": [d.to_dict() for d in diagnostics],
                    "counts": severity_counts(diagnostics)}
        if method == pvp.VIEW_DERIVE:
            pvp.require_params(request, "profileId", "name", "formula")
            shape = params.get("shape", "top_down")
            tree = self.view(int(params["profileId"]), shape)
            # derive() mutates the tree in place and drops it from every
            # engine cache, so no content-equal profile can be served the
            # derived-column tree under the pre-mutation key.
            index = formula_mod.derive(tree, params["name"],
                                       params["formula"],
                                       unit=params.get("unit", ""))
            return {"metricIndex": index}
        if method == pvp.VIEW_ENGINE_STATS:
            return self.engine.stats()
        if method == pvp.OBS_METRICS:
            return self.obs_metrics()
        if method == pvp.OBS_TRACE:
            limit = params.get("limit")
            return self.obs_trace(
                limit=int(limit) if limit is not None else None,
                clear=bool(params.get("clear", False)))
        if method == pvp.STORE_INGEST:
            pvp.require_params(request, "store", "path")
            if not isinstance(params["path"], str):
                raise ProtocolError("path must be a string")
            result = self.store(params["store"]).ingest(
                params["path"],
                service=str(params.get("service", "")),
                ptype=str(params.get("type", "cpu")),
                labels={str(k): str(v)
                        for k, v in (params.get("labels") or {}).items()},
                format=params.get("format"))
            return {"seq": result.entry.seq,
                    "timeNanos": result.entry.time_nanos,
                    "assignedTime": result.assigned_time,
                    "diagnostics": [d.to_dict()
                                    for d in result.diagnostics]}
        if method == pvp.STORE_QUERY:
            pvp.require_params(request, "store", "query")
            store = self.store(params["store"])
            entries = store.select(str(params["query"]))
            return {"count": len(entries),
                    "records": [entry.to_dict() for entry in entries]}
        if method == pvp.VIEW_OPEN_QUERY:
            pvp.require_params(request, "store", "query")
            opened = self.open_query(params["store"], str(params["query"]),
                                     params.get("shape", "top_down"))
            tree = next(iter(opened.views.values()))
            return {"profileId": opened.id,
                    "shape": tree.shape,
                    "metrics": tree.schema.names()}
        if method == pvp.WATCH_REPORT:
            pvp.require_params(request, "store", "query")
            from ..continuous.watch import RegressionWatch
            watch = RegressionWatch(
                self.store(params["store"]),
                query=str(params["query"]),
                window=str(params.get("window", "60s")),
                baseline=(str(params["baseline"])
                          if params.get("baseline") else None),
                metric=params.get("metric"),
                shape=str(params.get("shape", "top_down")),
                min_ratio=float(params.get("minRatio", 1.0)),
                top=int(params.get("top", 20)))
            now = params.get("nowNanos")
            report = watch.tick(
                now_nanos=int(now) if now is not None else None)
            return report.to_dict()
        raise ProtocolError("unknown method %r" % method)

    # -- internals -----------------------------------------------------------------

    def _emit(self, method: str, params: Dict[str, Any]) -> None:
        self._sink(method, params)
