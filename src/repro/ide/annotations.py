"""Build IDE annotations (code lenses, hovers, decorations) from profiles.

This is the glue between the analysis engine and the optional IDE actions:
given a view tree, compute per-source-line attributions and turn them into
the payloads of :mod:`repro.ide.actions`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.viewtree import ViewTree
from ..core.frame import FrameKind
from .actions import CodeLens, Decoration, FloatingWindow, Hover

LineKey = Tuple[str, int]


def line_attribution(tree: ViewTree) -> Dict[LineKey, Dict[int, float]]:
    """Aggregate exclusive metric values per (file, line).

    View nodes merge on (name, file, module); their *sources* retain the
    original CCT contexts with exact lines, so attribution uses the sources.
    """
    table: Dict[LineKey, Dict[int, float]] = {}
    for node in tree.nodes():
        if node.frame.kind is FrameKind.ROOT:
            continue
        for source in node.sources:
            frame = source.frame
            if not frame.file or frame.line <= 0:
                continue
            bucket = table.setdefault((frame.file, frame.line), {})
            for index, value in source.metrics.items():
                bucket[index] = bucket.get(index, 0.0) + value
    return table


def assembly_attribution(tree: ViewTree) -> Dict[LineKey, List[str]]:
    """Per-line assembly annotations from INSTRUCTION-kind contexts.

    Profilers built for compiler work (§VI-B) attribute instructions to
    statements; converters surface those as ``INSTRUCTION``-kind frames
    (HPCToolkit ``S`` scopes, perf addresses).  Each instruction context
    under a line becomes one annotation string, hottest first.
    """
    table: Dict[LineKey, List] = {}
    for node in tree.nodes():
        for source in node.sources:
            for child in source.children.values():
                frame = child.frame
                if frame.kind is not FrameKind.INSTRUCTION:
                    continue
                if not frame.file or frame.line <= 0:
                    continue
                weight = sum(child.metrics.values())
                if frame.address:
                    text = "0x%x  %s" % (frame.address, frame.name)
                else:
                    text = frame.name
                table.setdefault((frame.file, frame.line), []).append(
                    (weight, text))
    return {key: [text for _, text in
                  sorted(entries, key=lambda e: -e[0])]
            for key, entries in table.items()}


def build_code_lenses(tree: ViewTree, file: Optional[str] = None,
                      min_fraction: float = 0.001,
                      with_assembly: bool = True,
                      attribution: Optional[Dict[LineKey,
                                                 Dict[int, float]]] = None,
                      assembly: Optional[Dict[LineKey,
                                              List[str]]] = None
                      ) -> List[CodeLens]:
    """One code lens per attributed line, showing its metric values.

    ``file`` restricts lenses to one document (what the IDE requests when a
    document becomes visible); lines holding less than ``min_fraction`` of
    any metric's total are skipped to avoid annotation noise.  When the
    profile carries instruction-level contexts, each lens also lists the
    statement's assembly annotations (§VI-B).

    ``attribution``/``assembly`` accept precomputed tables (the analysis
    engine memoizes them per tree content), so batched per-file requests
    do not re-walk the tree for every document.
    """
    totals = {index: tree.total(index) or 1.0
              for index in range(len(tree.schema))}
    if assembly is None:
        assembly = assembly_attribution(tree) if with_assembly else {}
    elif not with_assembly:
        assembly = {}
    if attribution is None:
        attribution = line_attribution(tree)
    lenses: List[CodeLens] = []
    for (path, line), values in sorted(attribution.items()):
        if file is not None and path != file:
            continue
        significant = {index: value for index, value in values.items()
                       if abs(value) >= abs(totals[index]) * min_fraction}
        if not significant:
            continue
        parts = []
        for index, value in sorted(significant.items()):
            metric = tree.schema[index]
            share = 100.0 * value / totals[index]
            parts.append("%s: %s (%.1f%%)"
                         % (metric.name, metric.format_value(value), share))
        lenses.append(CodeLens(file=path, line=line,
                               text=" | ".join(parts),
                               assembly=assembly.get((path, line), [])))
    return lenses


def build_hover(tree: ViewTree, file: str, line: int,
                tips: Optional[List[str]] = None,
                attribution: Optional[Dict[LineKey,
                                           Dict[int, float]]] = None
                ) -> Optional[Hover]:
    """The hover for one source line: every metric plus optimization tips.

    Returns None when the line has no attribution (the IDE shows nothing).
    """
    if attribution is None:
        attribution = line_attribution(tree)
    values = attribution.get((file, line))
    if not values:
        return None
    lines = ["%s:%d" % (file, line)]
    for index, value in sorted(values.items()):
        metric = tree.schema[index]
        total = tree.total(index) or 1.0
        lines.append("  %s = %s (%.1f%% of program)"
                     % (metric.name, metric.format_value(value),
                        100.0 * value / total))
    for tip in tips or []:
        lines.append("  tip: %s" % tip)
    return Hover(file=file, line=line, lines=lines)


def build_decorations(tree: ViewTree, metric_index: int = 0,
                      file: Optional[str] = None,
                      color: Tuple[int, int, int] = (255, 96, 64),
                      attribution: Optional[Dict[LineKey,
                                                 Dict[int, float]]] = None
                      ) -> List[Decoration]:
    """Line decorations whose intensity encodes the line's metric share."""
    total = tree.total(metric_index) or 1.0
    peak = 0.0
    if attribution is None:
        attribution = line_attribution(tree)
    for values in attribution.values():
        peak = max(peak, abs(values.get(metric_index, 0.0)))
    if peak == 0.0:
        return []
    decorations: List[Decoration] = []
    for (path, line), values in sorted(attribution.items()):
        if file is not None and path != file:
            continue
        value = values.get(metric_index, 0.0)
        if value == 0.0:
            continue
        decorations.append(Decoration(
            file=path, line=line, color=color,
            intensity=abs(value) / peak))
    return decorations


def build_floating_window(tree: ViewTree, title: str = "Profile summary"
                          ) -> FloatingWindow:
    """The global-summary floating window for a view (§VI-B)."""
    from ..viz.terminal import render_summary
    lines = ["view: %s" % tree.shape,
             "contexts: %d" % tree.node_count()]
    for index, metric in enumerate(tree.schema):
        lines.append("total %s: %s"
                     % (metric.name, metric.format_value(tree.total(index))))
    lines.append("")
    lines.append(render_summary(tree))
    return FloatingWindow(title=title, body="\n".join(lines))
