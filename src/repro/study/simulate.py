"""Control-group simulation (§VII-D): replay the three tasks per group.

Each group (EasyView / default PProf / GoLand) is simulated as a small
population of analysts with varying proficiency.  An analyst's proficiency
scales the *human* operation costs (newbies read and navigate slower);
tool response time is taken from the measured Fig. 5 pipelines and is the
same for everyone.  The reported number per (tool, task) cell is the group
mean, like the paper's "~10 min on average".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .costmodel import (COSTS, EASYVIEW_CAPS, GIVE_UP_SECONDS, GOLAND_CAPS,
                        PPROF_CAPS, ToolCapabilities, Workflow)
from .tasks import plan

#: Group size in the paper's setup.
GROUP_SIZE = 7


@dataclass
class AnalystResult:
    """One analyst's outcome on one task."""

    tool: str
    task: str
    minutes: float
    completed: bool


@dataclass
class CellResult:
    """One (tool, task) cell of the study table."""

    tool: str
    task: str
    results: List[AnalystResult] = field(default_factory=list)

    @property
    def mean_minutes(self) -> float:
        done = [r.minutes for r in self.results if r.completed]
        if not done:
            return float("inf")
        return sum(done) / len(done)

    @property
    def completion_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.completed for r in self.results) / len(self.results)

    def render(self) -> str:
        if self.completion_rate == 0.0:
            return "DNF (>%d h)" % int(GIVE_UP_SECONDS / 3600)
        return "~%.0f min" % self.mean_minutes


def proficiency_factors(size: int = GROUP_SIZE, seed: int = 2024
                        ) -> List[float]:
    """Human-cost multipliers for a mixed newbie/experienced group.

    Factors span 0.85 (experienced performance engineer) to 1.5 (newbie,
    trained only on flame-graph basics like the paper's groups); the mix is
    deterministic per seed so results are reproducible.
    """
    rng = random.Random(seed)
    return [round(0.85 + 0.65 * rng.random(), 3) for _ in range(size)]


def simulate_analyst(task: str, caps: ToolCapabilities,
                     proficiency: float) -> AnalystResult:
    """Replay one task for one analyst: human costs scale, waits do not."""
    flow = plan(task, caps)
    human_seconds = sum(COSTS[step] for step in flow.steps) * proficiency
    total = human_seconds + flow.extra_seconds
    completed = not (flow.open_ended and total > GIVE_UP_SECONDS)
    return AnalystResult(tool=caps.name, task=task,
                         minutes=total / 60.0,
                         completed=completed)


def run_study(open_seconds: Optional[Dict[str, float]] = None,
              group_size: int = GROUP_SIZE, seed: int = 2024
              ) -> Dict[str, Dict[str, CellResult]]:
    """Run the full 3-tools × 3-tasks study.

    ``open_seconds`` optionally injects *measured* per-tool response times
    (from the Fig. 5 benchmark) so the two experiments stay coupled.
    Returns ``{tool: {task: CellResult}}``.
    """
    tools = []
    for caps in (EASYVIEW_CAPS, PPROF_CAPS, GOLAND_CAPS):
        if open_seconds and caps.name in open_seconds:
            caps = ToolCapabilities(
                **{**caps.__dict__, "open_seconds": open_seconds[caps.name]})
        tools.append(caps)

    factors = proficiency_factors(group_size, seed)
    table: Dict[str, Dict[str, CellResult]] = {}
    for caps in tools:
        table[caps.name] = {}
        for task in ("task1", "task2", "task3"):
            cell = CellResult(tool=caps.name, task=task)
            for factor in factors:
                cell.results.append(simulate_analyst(task, caps, factor))
            table[caps.name][task] = cell
    return table


def render_table(table: Dict[str, Dict[str, CellResult]]) -> str:
    """The study table as aligned text (the §VII-D summary)."""
    tasks = ("task1", "task2", "task3")
    lines = ["%-10s %14s %14s %14s" % (("tool",) + tasks)]
    for tool, cells in table.items():
        lines.append("%-10s %14s %14s %14s"
                     % ((tool,) + tuple(cells[t].render() for t in tasks)))
    return "\n".join(lines)
