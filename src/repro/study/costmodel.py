"""The analyst cost model behind the control-group simulation (§VII-D).

Human studies cannot be rerun offline, so we encode the paper's own
*mechanistic* explanations — "PProf requires manual correlation of profiles
with source code", "GoLand has no bottom-up flame graph, only a tree table
that requires more learning time", "neither tool can analyze multiple
profiles without writing a script" — as primitive analyst operations with
time costs, and replay each group's task workflow against its tool's
capability matrix.

The primitive costs are model *assumptions*, stated here once:

=====================  ========  =====================================
operation              seconds   rationale
=====================  ========  =====================================
inspect_block          5         read one flame block / table row
navigate               3         one click/zoom/scroll step
switch_tool            25        IDE ↔ external GUI context switch [12,13]
open_source            2         code-linked jump (tool does the work)
manual_source_lookup   45        grep the symbol, open the file by hand
learn_view             300       first encounter with an unfamiliar view
fold_unfold            4         one tree-table expansion
write_script           1800      write/debug an ad-hoc analysis script
run_script             60        run it, read its output
read_histogram         10        judge one per-context value series
=====================  ========  =====================================

Tool response time (opening and re-rendering profiles) is added from the
measured Fig. 5 pipelines, so the simulation and the efficiency benchmark
stay coupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Primitive operation costs in seconds (see table above).
COSTS: Dict[str, float] = {
    "inspect_block": 5.0,
    "navigate": 3.0,
    "switch_tool": 25.0,
    "open_source": 2.0,
    "manual_source_lookup": 45.0,
    "learn_view": 300.0,
    "fold_unfold": 4.0,
    "write_script": 1800.0,
    "run_script": 60.0,
    "read_histogram": 10.0,
}

#: Tasks are abandoned past this budget (the paper reports "cannot complete
#: the task in 3 hours").
GIVE_UP_SECONDS = 3 * 3600.0


@dataclass(frozen=True)
class ToolCapabilities:
    """What a viewer offers the analyst (drives workflow planning)."""

    name: str
    in_ide: bool                   # profile views live inside the IDE
    code_link: bool                # click-to-source works
    top_down_flame: bool
    bottom_up_flame: bool
    bottom_up_table: bool
    flat_view: bool
    multi_profile: bool            # aggregate/diff across profiles
    histograms: bool               # per-context series pane
    open_seconds: float = 0.5     # measured response time per profile open


EASYVIEW_CAPS = ToolCapabilities(
    name="easyview", in_ide=True, code_link=True, top_down_flame=True,
    bottom_up_flame=True, bottom_up_table=True, flat_view=True,
    multi_profile=True, histograms=True)

PPROF_CAPS = ToolCapabilities(
    name="pprof", in_ide=False, code_link=False, top_down_flame=True,
    bottom_up_flame=False, bottom_up_table=False, flat_view=True,
    multi_profile=False, histograms=False)

GOLAND_CAPS = ToolCapabilities(
    name="goland", in_ide=True, code_link=True, top_down_flame=True,
    bottom_up_flame=False, bottom_up_table=True, flat_view=False,
    multi_profile=False, histograms=False)


@dataclass
class Workflow:
    """A planned sequence of primitive operations for one task."""

    tool: str
    task: str
    steps: List[str] = field(default_factory=list)
    extra_seconds: float = 0.0   # tool response time, scripts' runtime, ...
    completed: bool = True
    #: Open-ended work (no bounded recipe) is abandoned past the give-up
    #: budget; bounded-but-slow work merely finishes late.
    open_ended: bool = False

    def add(self, operation: str, times: int = 1) -> "Workflow":
        if operation not in COSTS:
            raise KeyError("unknown primitive operation %r" % operation)
        self.steps.extend([operation] * times)
        return self

    def wait(self, seconds: float) -> "Workflow":
        self.extra_seconds += seconds
        return self

    @property
    def seconds(self) -> float:
        return sum(COSTS[step] for step in self.steps) + self.extra_seconds

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0

    def finish(self) -> "Workflow":
        """Mark completion, enforcing the give-up budget."""
        if self.open_ended and self.seconds > GIVE_UP_SECONDS:
            self.completed = False
        return self
