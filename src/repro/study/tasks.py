"""Task workflows for the control-group study (§VII-D).

Three tasks over the same set of PProf-collected profiles:

* **Task I** — pinpoint hotspot functions in their calling contexts for CPU
  and memory (top-down flame-graph use case);
* **Task II** — identify hot memory allocation, GC invocation, and lock
  wait, and find *where they are called from* (bottom-up use case);
* **Task III** — identify the memory leak of §VII-C1 across a series of
  snapshots (multi-profile use case).

Each planner turns a tool's capability matrix into the workflow the paper
describes for that group: tools with the right view do the task directly;
tools missing it fall back to tree-table archaeology, manual correlation,
or ad-hoc scripting — the paper's stated reasons for the observed times.

A workflow is *open-ended* when the fallback has no bounded recipe (Task
III's cross-snapshot alignment by hand); open-ended work past the 3-hour
budget is abandoned (the paper's "cannot complete the task in 3 hours"),
while bounded-but-slow work (Task II's inversion script) merely finishes
late.
"""

from __future__ import annotations

from .costmodel import GIVE_UP_SECONDS, ToolCapabilities, Workflow

#: Study workload: how many profiles / categories / snapshots each task
#: touches (matching the §VII-D setup: several profiles, three inefficiency
#: categories in Task II, the snapshot series of §VII-C1 in Task III).
TASK1_PROFILES = 4
TASK1_METRICS = 2          # CPU and memory
TASK2_CATEGORIES = 3       # allocation, GC, lock wait
TASK3_SNAPSHOTS = 20
TASK3_CANDIDATES = 8       # allocation contexts worth checking for leaks


def plan_task1(caps: ToolCapabilities) -> Workflow:
    """Task I: top-down hotspot hunting across profiles × metrics."""
    flow = Workflow(tool=caps.name, task="task1")
    for _ in range(TASK1_PROFILES):
        flow.wait(caps.open_seconds)
        if not caps.in_ide:
            flow.add("switch_tool")  # leave the editor for the external GUI
        for _ in range(TASK1_METRICS):
            # Switching the metric re-renders the profile view; eager
            # viewers pay their full open time again (the "GoLand requires
            # much more time to open and navigate large profiles" effect).
            flow.wait(caps.open_seconds)
            flow.add("navigate", 6)
            flow.add("inspect_block", 8)
            # Confirm the top 2 hotspots in their source contexts.
            if caps.code_link:
                flow.add("open_source", 2)
            else:
                flow.add("switch_tool")       # back to the editor…
                flow.add("manual_source_lookup", 2)   # …and grep by hand
    return flow.finish()


def plan_task2(caps: ToolCapabilities) -> Workflow:
    """Task II: find hot allocation/GC/lock-wait and their callers."""
    flow = Workflow(tool=caps.name, task="task2")
    flow.wait(caps.open_seconds)
    if caps.bottom_up_flame:
        # The direct path: one bottom-up flame graph per category, then a
        # top-down confirmation pass for each finding.
        for _ in range(TASK2_CATEGORIES):
            flow.add("navigate", 10)
            flow.add("inspect_block", 18)
            flow.add("open_source" if caps.code_link
                     else "manual_source_lookup", 3)
            flow.add("navigate", 6)          # confirm in the top-down view
            flow.add("inspect_block", 8)
    elif caps.bottom_up_table:
        # GoLand's path: a bottom-up *tree table* exists but is unfamiliar
        # and needs row-by-row unfolding to reconstruct each caller chain.
        flow.add("learn_view", 2)            # table semantics + columns
        for _ in range(TASK2_CATEGORIES):
            flow.add("fold_unfold", 80)      # unfold caller chains
            flow.add("inspect_block", 50)
            flow.add("navigate", 15)
            flow.add("open_source" if caps.code_link
                     else "manual_source_lookup", 3)
            flow.wait(caps.open_seconds * 10)  # re-render per unfold burst
    else:
        # PProf's path: no bottom-up view at all — invert the stacks with
        # an ad-hoc script (parse the protobuf, reverse, re-aggregate),
        # then correlate its text output to source by hand.
        flow.add("write_script", 3)          # write, fix inlining, fix GC frames
        flow.add("run_script", 8)
        for _ in range(TASK2_CATEGORIES):
            flow.add("inspect_block", 60)    # read raw script output
            flow.add("navigate", 10)
            flow.add("switch_tool", 4)
            flow.add("manual_source_lookup", 14)
    return flow.finish()


def plan_task3(caps: ToolCapabilities) -> Workflow:
    """Task III: memory-leak identification across snapshot profiles."""
    flow = Workflow(tool=caps.name, task="task3")
    if caps.multi_profile and caps.histograms:
        # EasyView's path: aggregate all snapshots in one view, read each
        # candidate's histogram, confirm the leaky ones in source, and
        # cross-check against a healthy context.
        flow.wait(caps.open_seconds * 2)     # open + aggregate
        flow.add("navigate", 14)
        flow.add("inspect_block", 24)
        flow.add("read_histogram", TASK3_CANDIDATES * 2)
        flow.add("open_source" if caps.code_link
                 else "manual_source_lookup", 4)
        return flow.finish()
    # Without multi-profile support the analyst walks every snapshot by
    # hand, locating each candidate context and tabulating its value —
    # open-ended cross-file correlation with no bounded recipe.
    flow.open_ended = True
    for _ in range(TASK3_SNAPSHOTS):
        flow.wait(caps.open_seconds)
        if not caps.in_ide:
            flow.add("switch_tool")
        flow.add("navigate", 8)
        if caps.bottom_up_table:
            flow.add("fold_unfold", 4)       # dig each context out of the table
        flow.add("inspect_block", TASK3_CANDIDATES)
        # Record each candidate's value against its call path by hand.
        flow.add("manual_source_lookup", TASK3_CANDIDATES)
    # …and still needs a script to align and plot the series per context.
    flow.add("write_script", 2)
    flow.add("run_script", 4)
    flow.add("read_histogram", TASK3_CANDIDATES)
    return flow.finish()


PLANNERS = {"task1": plan_task1, "task2": plan_task2, "task3": plan_task3}


def plan(task: str, caps: ToolCapabilities) -> Workflow:
    """Plan one task for one tool."""
    try:
        planner = PLANNERS[task]
    except KeyError:
        raise KeyError("unknown task %r (have: %s)"
                       % (task, ", ".join(sorted(PLANNERS)))) from None
    return planner(caps)
