"""User-study simulation: the analyst cost model, the Task I-III control
group replay (§VII-D), and the Fig. 8 view-effectiveness survey model."""

from .costmodel import (COSTS, EASYVIEW_CAPS, GIVE_UP_SECONDS, GOLAND_CAPS,
                        PPROF_CAPS, ToolCapabilities, Workflow)
from .simulate import (AnalystResult, CellResult, GROUP_SIZE, render_table,
                       run_study, simulate_analyst)
from .survey import (BASE_SUCCESS, PARTICIPANTS, SurveyOutcome, VIEWS,
                     run_survey)
from .tasks import plan, plan_task1, plan_task2, plan_task3

__all__ = [
    "COSTS", "EASYVIEW_CAPS", "GIVE_UP_SECONDS", "GOLAND_CAPS", "PPROF_CAPS",
    "ToolCapabilities", "Workflow", "AnalystResult", "CellResult",
    "GROUP_SIZE", "render_table", "run_study", "simulate_analyst",
    "BASE_SUCCESS", "PARTICIPANTS", "SurveyOutcome", "VIEWS", "run_survey",
    "plan", "plan_task1", "plan_task2", "plan_task3",
]
