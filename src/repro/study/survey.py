"""Survey model for view effectiveness (Fig. 8).

The paper surveys 26 participants on which views they found effective
(multiple choice, zero or more).  We model each participant as attempting a
small basket of analysis questions with every view; a view is reported
effective if it answered at least one question for them.  Per-view success
probabilities come from the view's affordances:

* flame graphs show proportions at a glance → higher base rate than tree
  tables, which require unfolding (the paper's 92.3% vs 84.6%);
* top-down answers the most common question ("where does time go?") →
  highest; bottom-up needs the "who calls it?" question to arise; flat
  only helps for module/file-level questions.

Base rates are calibrated to land near the paper's reported percentages
while remaining a *model* — the test checks orderings and rough gaps, not
exact numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Probability that one analysis question is answered by the view, for an
#: average participant (expertise shifts it ±).
BASE_SUCCESS = {
    ("flame", "top_down"): 0.72,
    ("flame", "bottom_up"): 0.42,
    ("flame", "flat"): 0.33,
    ("table", "top_down"): 0.60,
    ("table", "bottom_up"): 0.32,
    ("table", "flat"): 0.26,
}

#: Questions each participant brings to the tool.
QUESTIONS_PER_PARTICIPANT = 2

PARTICIPANTS = 26

VIEWS: Tuple[Tuple[str, str], ...] = tuple(BASE_SUCCESS)


@dataclass
class SurveyOutcome:
    """Fig. 8's bars: percentage of participants endorsing each view."""

    effective_percent: Dict[Tuple[str, str], float]

    def percent(self, family: str, shape: str) -> float:
        return self.effective_percent[(family, shape)]

    def any_flame_percent(self) -> float:
        """The flame-graph family's headline endorsement.

        The paper's "flame graphs vs tree tables (92.3% vs 84.6%)"
        comparison is carried by each family's strongest view (top-down),
        so the family number is the family's maximum per-shape endorsement.
        """
        return max(v for (family, shape), v in self.effective_percent.items()
                   if family == "flame" and shape != "_any")

    def any_table_percent(self) -> float:
        """The tree-table family's headline endorsement (see above)."""
        return max(v for (family, shape), v in self.effective_percent.items()
                   if family == "table" and shape != "_any")

    def render(self) -> str:
        lines = ["%-22s %s" % ("view", "effective")]
        for family, shape in VIEWS:
            lines.append("%-22s %5.1f%%"
                         % ("%s/%s" % (family, shape),
                            self.effective_percent[(family, shape)]))
        lines.append("%-22s %5.1f%%" % ("flame (any)",
                                        self.any_flame_percent()))
        lines.append("%-22s %5.1f%%" % ("table (any)",
                                        self.any_table_percent()))
        return "\n".join(lines)


def run_survey(participants: int = PARTICIPANTS, seed: int = 26
               ) -> SurveyOutcome:
    """Simulate the survey; deterministic per seed.

    Each participant draws one uniform per question and a view answers a
    question when the draw falls under the view's success probability
    (*common random numbers*): a participant who got an answer out of a
    weaker view necessarily got it out of every stronger view too, so the
    per-view endorsement counts are monotone in the success probabilities —
    orderings reflect the model, not N=26 sampling noise.
    """
    rng = random.Random(seed)
    endorsements = {view: 0 for view in VIEWS}
    any_family = {"flame": 0, "table": 0}
    for _ in range(participants):
        # Expertise multiplier: experienced users extract more from every
        # view (the paper notes 53.8% actively tune for performance).
        expertise = 0.8 + 0.4 * rng.random()
        draws = [rng.random() for _ in range(QUESTIONS_PER_PARTICIPANT)]
        endorsed_families = set()
        for view in VIEWS:
            p = min(BASE_SUCCESS[view] * expertise, 0.95)
            effective = any(u < p for u in draws)
            if effective:
                endorsements[view] += 1
                endorsed_families.add(view[0])
        for family in endorsed_families:
            any_family[family] += 1
    percent = {view: 100.0 * count / participants
               for view, count in endorsements.items()}
    percent[("flame", "_any")] = 100.0 * any_family["flame"] / participants
    percent[("table", "_any")] = 100.0 * any_family["table"] / participants
    return SurveyOutcome(effective_percent=percent)
