"""Baseline viewer pipelines for the Fig. 5 response-time comparison:
the default pprof web UI, the GoLand pprof plugin, and EasyView itself."""

from .common import BaselineViewer, OpenResult, measure
from .easyview_viewer import EasyViewViewer
from .goland_viewer import GoLandViewer
from .pprof_viewer import PProfViewer

__all__ = ["BaselineViewer", "OpenResult", "measure", "EasyViewViewer",
           "GoLandViewer", "PProfViewer"]
