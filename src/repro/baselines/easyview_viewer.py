"""EasyView's own open pipeline wrapped in the baseline interface.

This is the measured configuration of §V-C: interned frames, prefix-merged
CCT, one-pass inclusive metrics, and lazy flame layout with a sub-pixel
minimum-width cutoff.  The wrapper delegates to the same
:class:`~repro.ide.session.ViewerSession` the IDE integration uses, so the
benchmark times the real product path, not a special-cased one.
"""

from __future__ import annotations

from ..converters.pprof import parse as parse_pprof
from ..ide.session import ViewerSession
from .common import BaselineViewer, OpenResult


class EasyViewViewer(BaselineViewer):
    """EasyView's open pipeline (the paper's system)."""

    name = "easyview"

    has_bottom_up_flame = True
    has_bottom_up_table = True
    has_multi_profile = True

    def __init__(self, min_width: float = 0.5) -> None:
        self.min_width = min_width

    def open_profile(self, data: bytes) -> OpenResult:
        from ..core.gcguard import no_gc
        session = ViewerSession()
        with no_gc():
            (profile, parse_s) = self._timed(lambda: parse_pprof(data))
        (opened, open_s) = self._timed(lambda: session.open(profile))
        flame = opened.layouts["top_down"]
        stats = opened.stats
        return OpenResult(
            viewer=self.name,
            seconds=parse_s + open_s,
            nodes=profile.node_count(),
            blocks=flame.laid_out_nodes,
            detail={"parse": parse_s,
                    "analyze": stats.analyze_seconds,
                    "render": stats.render_seconds})
