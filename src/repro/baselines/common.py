"""Shared harness for the response-time comparison (Fig. 5).

All three viewers measure the same end-to-end operation the paper defines:
*open a profile* = data processing (parsing, tree construction, metric
computation) + data visualization (producing the initial top-down flame
graph).  Each viewer implements :class:`BaselineViewer.open_profile` with
its own architecture; the benchmark times them on identical pprof bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class OpenResult:
    """Outcome of one viewer opening one profile."""

    viewer: str
    seconds: float
    nodes: int          # contexts the viewer materialized
    blocks: int         # flame-graph blocks the viewer produced
    detail: Dict[str, float] = field(default_factory=dict)


class BaselineViewer:
    """Interface every measured viewer implements."""

    name = "abstract"

    def open_profile(self, data: bytes) -> OpenResult:
        """Open raw pprof bytes and produce the initial top-down view."""
        raise NotImplementedError

    def _timed(self, fn: Callable[[], Any]) -> "tuple[Any, float]":
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start


def measure(viewer: BaselineViewer, data: bytes, repeats: int = 1
            ) -> OpenResult:
    """Open ``data`` ``repeats`` times; returns the best (min) run.

    Min-of-N is the standard way to strip scheduler noise from a
    deterministic computation.
    """
    best: Optional[OpenResult] = None
    for _ in range(repeats):
        result = viewer.open_profile(data)
        if best is None or result.seconds < best.seconds:
            best = result
    assert best is not None
    return best
