"""A faithful model of the default pprof web viewer's open pipeline.

Architecture being modeled (from pprof's ``driver``/``graph`` packages):

1. **No string interning across samples** — every sample's frames are
   re-resolved to fresh name/file strings.
2. **Full weighted call *graph* construction** — pprof builds a node/edge
   graph over all samples (for its graph view) before any flame rendering,
   including edge maps keyed by (caller, callee) string pairs.
3. **Whole-report generation** — the web UI renders the complete flame
   view and the top table in one shot; nothing is lazy, so every context
   becomes a DOM-bound block regardless of visible width.

The implementation below is straightforward, allocation-honest Python for
that architecture; nothing is artificially slowed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..proto import pprof_pb
from .common import BaselineViewer, OpenResult


class PProfViewer(BaselineViewer):
    """The default pprof web UI open pipeline."""

    name = "pprof"

    def open_profile(self, data: bytes) -> OpenResult:
        (message, parse_s) = self._timed(lambda: pprof_pb.loads(data))
        ((nodes, edges, tree), graph_s) = self._timed(
            lambda: self._build_graph(message))
        (blocks, render_s) = self._timed(lambda: self._render_all(tree))
        return OpenResult(
            viewer=self.name,
            seconds=parse_s + graph_s + render_s,
            nodes=len(nodes),
            blocks=blocks,
            detail={"parse": parse_s, "graph": graph_s, "render": render_s})

    # -- the modeled pipeline -------------------------------------------------

    def _build_graph(self, message: pprof_pb.Profile):
        functions = {fn.id: fn for fn in message.function}
        locations = {loc.id: loc for loc in message.location}

        def resolve(location_id: int) -> List[str]:
            # Re-resolved per sample, per frame: fresh strings every time
            # (pprof formats "name filename:line" labels eagerly).
            location = locations[location_id]
            labels = []
            for line in location.line:
                fn = functions.get(line.function_id)
                if fn is None:
                    continue
                labels.append("%s %s:%d" % (
                    message.string(fn.name),
                    message.string(fn.filename), line.line))
            return labels or ["0x%x" % location.address]

        node_weights: Dict[str, float] = {}
        edge_weights: Dict[Tuple[str, str], float] = {}
        tree: Dict[str, dict] = {}
        for sample in message.sample:
            value = float(sample.value[0]) if sample.value else 0.0
            labels: List[str] = []
            for location_id in reversed(sample.location_id):
                labels.extend(resolve(location_id))
            # Node & edge accumulation over string keys.
            previous = ""
            for label in labels:
                node_weights[label] = node_weights.get(label, 0.0) + value
                if previous:
                    key = (previous, label)
                    edge_weights[key] = edge_weights.get(key, 0.0) + value
                previous = label
            # Nested dict tree keyed by the label strings.
            cursor = tree
            for label in labels:
                entry = cursor.get(label)
                if entry is None:
                    entry = {"children": {}, "value": 0.0}
                    cursor[label] = entry
                entry["value"] += value
                cursor = entry["children"]
        return node_weights, edge_weights, tree

    def _render_all(self, tree: Dict[str, dict]) -> int:
        # Render every context: formatted label + geometry per block, no
        # width cutoff (the web UI emits all boxes and hides tiny ones with
        # CSS).
        blocks = 0
        stack: List[Tuple[Dict[str, dict], int, float]] = [(tree, 0, 0.0)]
        rendered: List[str] = []
        while stack:
            level, depth, x = stack.pop()
            offset = x
            for label, entry in level.items():
                width = entry["value"]
                rendered.append(
                    '<div style="left:%.2f;top:%d" title="%s: %.0f">%s</div>'
                    % (offset, depth * 16, label, entry["value"], label))
                blocks += 1
                stack.append((entry["children"], depth + 1, offset))
                offset += width
        return blocks
