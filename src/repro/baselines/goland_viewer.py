"""A faithful model of the GoLand pprof plugin's open pipeline.

Architecture being modeled (JetBrains profiler tooling):

1. **Parse + tree construction** comparable to EasyView's (one pass).
2. **Eager whole-tree materialization** — the IDE builds its tree-table
   model up front: every context becomes a row object with pre-formatted
   label, value, and percentage strings, so large profiles pay for every
   row before the first paint (the "slow to open and navigate large
   profiles" behavior Task I observed).
3. **Full flame layout** — the flame tab lays out all nodes without a
   minimum-width cutoff.
4. **No bottom-up flame graph** — only a bottom-up *tree table* exists,
   which is what costs the GoLand control group an hour on Task II.
"""

from __future__ import annotations

from typing import List

from ..analysis.transform import top_down
from ..converters.pprof import parse as parse_pprof
from ..viz.layout import layout
from .common import BaselineViewer, OpenResult


class GoLandViewer(BaselineViewer):
    """The GoLand pprof plugin open pipeline."""

    name = "goland"

    #: Capability matrix consumed by the user-study simulation.
    has_bottom_up_flame = False
    has_bottom_up_table = True
    has_multi_profile = False

    def open_profile(self, data: bytes) -> OpenResult:
        (profile, parse_s) = self._timed(lambda: parse_pprof(data))
        (tree, analyze_s) = self._timed(lambda: top_down(profile))
        (rows, table_s) = self._timed(lambda: self._materialize_rows(tree))
        (flame, flame_s) = self._timed(
            lambda: layout(tree, min_width=0.0))  # no lazy cutoff
        return OpenResult(
            viewer=self.name,
            seconds=parse_s + analyze_s + table_s + flame_s,
            nodes=tree.node_count(),
            blocks=flame.laid_out_nodes,
            detail={"parse": parse_s, "analyze": analyze_s,
                    "table": table_s, "flame": flame_s})

    def _materialize_rows(self, tree) -> List[tuple]:
        """Build every tree-table row eagerly with formatted cells."""
        total = tree.total(0) or 1.0
        rows: List[tuple] = []
        stack = [(tree.root, 0)]
        while stack:
            node, depth = stack.pop()
            value = node.inclusive.get(0, 0.0)
            rows.append((
                depth,
                "  " * depth + node.frame.label(),
                "{:,.0f}".format(value),
                "%.2f%%" % (100.0 * value / total),
                "%s:%d" % (node.frame.file, node.frame.line),
            ))
            stack.extend((child, depth + 1)
                         for child in node.sorted_children())
        return rows
