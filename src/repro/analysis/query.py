"""Search and filtering over views (§VI-A: "all flame graphs are
searchable").

Searches return match sets the renderer highlights; filters carve a new view
containing only matching subtrees (plus their ancestors, so the tree stays
connected and code links keep working).
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Set

from ..core.frame import FrameKind
from .viewtree import ViewNode, ViewTree

Predicate = Callable[[ViewNode], bool]


def search(tree: ViewTree, pattern: str,
           regex: bool = False, case_sensitive: bool = False
           ) -> List[ViewNode]:
    """Find nodes whose frame name (or file) matches ``pattern``.

    Plain substring match by default; set ``regex`` for full regular
    expressions.  Matches are returned in pre-order.
    """
    if regex:
        flags = 0 if case_sensitive else re.IGNORECASE
        compiled = re.compile(pattern, flags)
        predicate: Predicate = lambda node: bool(
            compiled.search(node.frame.name) or compiled.search(node.frame.file))
    else:
        needle = pattern if case_sensitive else pattern.lower()

        def predicate(node: ViewNode) -> bool:
            name = node.frame.name
            file = node.frame.file
            if not case_sensitive:
                name = name.lower()
                file = file.lower()
            return needle in name or needle in file

    return [node for node in tree.nodes()
            if node.frame.kind is not FrameKind.ROOT and predicate(node)]


def match_fraction(tree: ViewTree, matches: List[ViewNode],
                   metric_index: int = 0) -> float:
    """Fraction of the profile total covered by the matched nodes.

    Counts each matched node's inclusive value unless one of its ancestors
    also matched (flame-graph convention: highlighting is by subtree).
    """
    total = tree.total(metric_index)
    if not total:
        return 0.0
    matched_ids: Set[int] = {id(node) for node in matches}
    covered = 0.0
    for node in matches:
        ancestor = node.parent
        shadowed = False
        while ancestor is not None:
            if id(ancestor) in matched_ids:
                shadowed = True
                break
            ancestor = ancestor.parent
        if not shadowed:
            covered += node.inclusive.get(metric_index, 0.0)
    return covered / total


def filter_tree(tree: ViewTree, predicate: Predicate) -> ViewTree:
    """A new view containing matching nodes, their ancestors, and subtrees.

    Semantics follow flame-graph filtering: when a node matches, its whole
    subtree is kept; ancestors of matches are kept as connective tissue and
    keep their original values (so percentages stay meaningful).
    """
    keep: Set[int] = set()
    for node in tree.nodes():
        if node is tree.root:
            continue
        if predicate(node):
            for sub in node.walk():
                keep.add(id(sub))
            ancestor: Optional[ViewNode] = node.parent
            while ancestor is not None:
                keep.add(id(ancestor))
                ancestor = ancestor.parent

    result = ViewTree(tree.schema.copy(), shape=tree.shape)
    stack = [(tree.root, result.root)]
    while stack:
        src, dst = stack.pop()
        dst.inclusive = dict(src.inclusive)
        dst.exclusive = dict(src.exclusive)
        dst.sources = src.sources.copy()
        dst.tag = src.tag
        dst.baseline = dict(src.baseline)
        dst.histogram = {k: list(v) for k, v in src.histogram.items()}
        for child in src.children.values():
            if id(child) in keep:
                stack.append((child, dst.child(child.frame)))
    return result


def filter_by_name(tree: ViewTree, pattern: str, regex: bool = False
                   ) -> ViewTree:
    """Filter to subtrees whose frame name matches ``pattern``."""
    if regex:
        compiled = re.compile(pattern)
        return filter_tree(tree, lambda n: bool(compiled.search(n.frame.name)))
    return filter_tree(tree, lambda n: pattern in n.frame.name)
