"""User customization hooks (§V-B).

In the paper, a programming pane lets users write Python that runs inside
the viewer (via Python→WASM) and is triggered as callbacks during tree
operations.  Here the pane *is* Python, so a :class:`Customization` simply
bundles the two callback families:

* **node-visit callbacks** — ``elide(node) -> bool`` removes contexts from a
  view; ``remap(frame) -> frame`` rewrites attribution before merging (e.g.
  merge all template instantiations of one function, or strip paths);
* **metric-computation callbacks** — derived-metric definitions applied to
  the finished view (formulas run through :mod:`repro.analysis.formula`, or
  arbitrary Python functions over a node's values).

The same object plugs into every transform and multi-profile operation, so
one customization applies consistently across top-down, bottom-up, flat,
aggregate, and differential views.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.frame import Frame
from ..core.metric import Aggregation, Metric
from .viewtree import ViewNode, ViewTree

ElideFn = Callable[[CCTNode], bool]
RemapFn = Callable[[Frame], Frame]
#: A metric callback gets (view node, name→value mapping of existing
#: metrics) and returns the derived value.
MetricFn = Callable[[ViewNode, Dict[str, float]], float]


class Customization:
    """A bundle of user callbacks applied during view construction."""

    def __init__(self) -> None:
        self._elide_fns: List[ElideFn] = []
        self._remap_fns: List[RemapFn] = []
        self._derived: List[Tuple[Metric, MetricFn, bool]] = []

    @classmethod
    def empty(cls) -> "Customization":
        """A customization that does nothing (the default path)."""
        return _EMPTY

    def is_passthrough(self) -> bool:
        """True when no node-visit callbacks are registered, letting the
        transforms skip per-node callback dispatch entirely."""
        return not self._elide_fns and not self._remap_fns

    # -- registration ------------------------------------------------------

    def elide_if(self, fn: ElideFn) -> "Customization":
        """Drop any context (and its subtree) for which ``fn`` is true."""
        self._elide_fns.append(fn)
        return self

    def elide_names(self, *names: str) -> "Customization":
        """Drop contexts whose frame name is in ``names``."""
        banned = frozenset(names)
        return self.elide_if(lambda node: node.frame.name in banned)

    def remap(self, frame: Frame) -> Frame:
        """Apply all frame-rewrite callbacks to a frame."""
        for fn in self._remap_fns:
            frame = fn(frame)
        return frame

    def remap_with(self, fn: RemapFn) -> "Customization":
        """Rewrite frames before merging (rename, regroup, anonymize)."""
        self._remap_fns.append(fn)
        return self

    def derive(self, metric: Metric, fn: MetricFn,
               inclusive: bool = True) -> "Customization":
        """Add a derived metric computed per node on the finished view.

        ``fn`` receives the node and a name→value mapping of the node's
        existing metrics (inclusive or exclusive per the flag) and returns
        the new value.
        """
        self._derived.append((metric, fn, inclusive))
        return self

    # -- hooks used by the transforms ---------------------------------------

    def elides(self, node: CCTNode) -> bool:
        """Whether any elide callback rejects this context."""
        return any(fn(node) for fn in self._elide_fns)

    def finish(self, tree: ViewTree) -> None:
        """Apply derived-metric callbacks to a completed view tree."""
        if not self._derived:
            return
        # The loop below edits node dicts in place; a columnar-backed
        # tree must drop its (now stale) arrays first.
        mark = getattr(tree, "mark_mutated", None)
        if mark is not None:
            mark()
        names = tree.schema.names()
        plans = []
        for metric, fn, inclusive in self._derived:
            index = tree.schema.add(metric)
            plans.append((index, fn, inclusive))
        for node in tree.nodes():
            inc_env = {name: node.inclusive.get(i, 0.0)
                       for i, name in enumerate(names)}
            exc_env = {name: node.exclusive.get(i, 0.0)
                       for i, name in enumerate(names)}
            for index, fn, inclusive in plans:
                env = inc_env if inclusive else exc_env
                value = float(fn(node, env))
                if inclusive:
                    node.inclusive[index] = value
                else:
                    node.exclusive[index] = value


_EMPTY = Customization()
