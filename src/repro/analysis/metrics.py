"""Inclusive/exclusive metric computation over CCTs (§V-A(a)).

A node's *exclusive* value is what was measured at exactly that context; its
*inclusive* value adds everything measured in the subtree below it.  The
computation is one post-order pass and the result is cached on the nodes, so
repeated view construction does not recompute it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.cct import CCTNode
from ..core.profile import Profile
from .traversal import postorder


def compute_inclusive(profile: Profile,
                      metric_indices: Optional[Iterable[int]] = None) -> None:
    """Fill every CCT node's inclusive cache for the given metric columns.

    With ``metric_indices`` omitted, all schema columns are computed.
    """
    if metric_indices is None:
        indices: List[int] = list(range(len(profile.schema)))
    else:
        indices = list(metric_indices)
    cct = profile.cct
    if cct._inclusive_stamp != cct._version:
        # The tree was mutated since the caches were last filled: every
        # cached value is suspect, so drop them all before recomputing.
        cct.clear_inclusive_cache()
    # Cached-result fast path: the stamp matches and the root's cache
    # covers every requested column iff a previous pass computed them.
    root_cache = profile.root.inclusive
    if root_cache and all(index in root_cache for index in indices):
        return
    for node in postorder(profile.root):
        inclusive = node.inclusive
        metrics = node.metrics
        children = node.children
        for index in indices:
            total = metrics.get(index, 0.0)
            for child in children.values():
                total += child.inclusive.get(index, 0.0)
            inclusive[index] = total


def inclusive_value(profile: Profile, node: CCTNode, metric_name: str) -> float:
    """Inclusive value of one metric at one node, computing caches lazily."""
    index = profile.schema.index_of(metric_name)
    cct = profile.cct
    if cct._inclusive_stamp != cct._version or index not in node.inclusive:
        compute_inclusive(profile, [index])
    return node.inclusive.get(index, 0.0)


def totals(profile: Profile) -> Dict[str, float]:
    """Program-wide total per metric (root-inclusive values)."""
    compute_inclusive(profile)
    return {metric.name: profile.root.inclusive.get(index, 0.0)
            for index, metric in enumerate(profile.schema)}


def check_inclusive_invariant(profile: Profile,
                              tolerance: float = 1e-9) -> List[str]:
    """Verify inclusive(node) == exclusive(node) + sum(inclusive(children)).

    Returns a list of violation descriptions (empty when the invariant
    holds).  Used by tests and by converters in paranoid mode.
    """
    violations: List[str] = []
    for node in postorder(profile.root):
        for index in range(len(profile.schema)):
            if index not in node.inclusive:
                continue
            expected = node.metrics.get(index, 0.0) + sum(
                child.inclusive.get(index, 0.0)
                for child in node.children.values())
            actual = node.inclusive[index]
            scale = max(abs(expected), abs(actual), 1.0)
            if abs(expected - actual) > tolerance * scale:
                violations.append(
                    "%s metric %d: inclusive %g != expected %g"
                    % (node.frame.label(), index, actual, expected))
    return violations
