"""Tree transformations: top-down, bottom-up, and flat views (§V-A(b)).

* The **top-down** tree is the CCT rooted at the program entry with callees
  as children; it shows how a metric distributes along call paths.
* The **bottom-up** tree reverses call paths: hot functions become the first
  level and their *callers* hang below, answering "where is this hot
  function called from?".
* The **flat** tree discards call paths and groups by load module → file →
  function, highlighting hot shared libraries and files.

Every transform merges contexts with a configurable key (default: name +
file + module) and produces a :class:`~repro.analysis.viewtree.ViewTree`
carrying both inclusive and exclusive values, optionally invoking the user's
node-visit customization hooks (§V-B).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.cct import CCTNode
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.profile import Profile
from . import viewtree_columnar
from .callbacks import Customization
from .metrics import compute_inclusive
from .traversal import postorder, preorder
from .viewtree import MergeKey, ViewNode, ViewTree, default_merge_key

KeyFn = Callable[[Frame], MergeKey]


def top_down(profile: Profile,
             key_fn: KeyFn = default_merge_key,
             customization: Optional[Customization] = None) -> ViewTree:
    """Build the top-down view tree from a profile's CCT."""
    custom = customization or Customization.empty()
    passthrough = custom.is_passthrough()
    plain_keys = key_fn is default_merge_key
    if passthrough and plain_keys:
        columnar = profile.columnar()
        if columnar is not None:
            tree = viewtree_columnar.build_top_down(profile, columnar)
            custom.finish(tree)
            return tree
    compute_inclusive(profile)
    tree = ViewTree(profile.schema.copy(), shape="top_down")
    # Walk the CCT and mirror it into the view, merging sibling contexts
    # that share a merge key (e.g. the same callee invoked from two lines).
    # The loop is the open-pipeline hot path, hence the inlined fast paths.
    stack = [(profile.root, tree.root)]
    while stack:
        cct_node, view_node = stack.pop()
        if view_node.sources:
            # A sibling context already merged here: accumulate.
            for index, value in cct_node.metrics.items():
                view_node.add_exclusive(index, value)
            for index, value in cct_node.inclusive.items():
                view_node.add_inclusive(index, value)
        else:
            # First (and usually only) context for this view node: copy.
            if cct_node.metrics:
                view_node.exclusive = dict(cct_node.metrics)
            if cct_node.inclusive:
                view_node.inclusive = dict(cct_node.inclusive)
        view_node.sources.append(cct_node)
        children_map = view_node.children
        for child in cct_node.children.values():
            if passthrough:
                frame = child.frame
            else:
                if custom.elides(child):
                    continue
                frame = custom.remap(child.frame)
            key = frame.merge_key() if plain_keys else key_fn(frame)
            view_child = children_map.get(key)
            if view_child is None:
                view_child = ViewNode(frame, parent=view_node)
                children_map[key] = view_child
            stack.append((child, view_child))
    custom.finish(tree)
    return tree


def bottom_up(profile: Profile,
              key_fn: KeyFn = default_merge_key,
              customization: Optional[Customization] = None) -> ViewTree:
    """Build the bottom-up view: hot contexts first, callers below.

    Every CCT context with a nonzero exclusive value contributes one
    reversed path.  A first-level node's inclusive value is therefore the
    total *exclusive* cost of that function across all call paths — the
    quantity Fig. 6 uses to expose ``brk`` as the hotspot.
    """
    custom = customization or Customization.empty()
    if custom.is_passthrough() and key_fn is default_merge_key:
        columnar = profile.columnar()
        if columnar is not None:
            tree = viewtree_columnar.build_bottom_up(profile, columnar)
            custom.finish(tree)
            return tree
    tree = ViewTree(profile.schema.copy(), shape="bottom_up")
    for node in preorder(profile.root):
        if not node.metrics or custom.elides(node):
            continue
        values = node.metrics
        for index, value in values.items():
            tree.root.add_inclusive(index, value)
        view = tree.root
        current: Optional[CCTNode] = node
        first = True
        while current is not None and current.frame.kind is not FrameKind.ROOT:
            view = view.child(custom.remap(current.frame), key_fn)
            # The source is the context this row *names* (the caller at
            # this reversal depth), so code links land on its line, not
            # on the hot leaf that contributed the value.
            view.sources.append(current)
            for index, value in values.items():
                view.add_inclusive(index, value)
                if first:
                    view.add_exclusive(index, value)
            first = False
            current = current.parent
    custom.finish(tree)
    return tree


def flat(profile: Profile,
         customization: Optional[Customization] = None) -> ViewTree:
    """Build the flat view: program → load module → file → function.

    Exclusive values sum straightforwardly.  Inclusive values sum only over
    *outermost* occurrences of each function (paths containing no other
    frame with the same identity), so recursion does not double-count.
    """
    custom = customization or Customization.empty()
    if custom.is_passthrough():
        columnar = profile.columnar()
        if columnar is not None:
            tree = viewtree_columnar.build_flat(profile, columnar)
            custom.finish(tree)
            return tree
    compute_inclusive(profile)
    tree = ViewTree(profile.schema.copy(), shape="flat")

    for node in preorder(profile.root):
        if node.frame.kind is FrameKind.ROOT or custom.elides(node):
            continue
        frame = custom.remap(node.frame)
        module_frame = intern_frame(frame.module or "<unknown module>",
                                    module=frame.module,
                                    kind=FrameKind.BASIC_BLOCK)
        file_frame = intern_frame(frame.file or "<unknown file>",
                                  file=frame.file, module=frame.module,
                                  kind=FrameKind.BASIC_BLOCK)
        module_view = tree.root.child(module_frame)
        file_view = module_view.child(file_frame)
        func_view = file_view.child(frame)
        func_view.sources.append(node)

        for index, value in node.metrics.items():
            for view in (tree.root, module_view, file_view, func_view):
                view.add_exclusive(index, value)
                # In a flat view a grouping level's "inclusive" total is the
                # sum of its members' exclusive costs.
                if view is not func_view:
                    view.add_inclusive(index, value)
        if _is_outermost(node, frame):
            for index, value in node.inclusive.items():
                func_view.add_inclusive(index, value)
    custom.finish(tree)
    return tree


def _is_outermost(node: CCTNode, frame: Frame) -> bool:
    """True when no ancestor shares this node's merge identity."""
    key = frame.merge_key()
    current = node.parent
    while current is not None:
        if current.frame.merge_key() == key:
            return False
        current = current.parent
    return True


_SHAPES: Dict[str, Callable[..., ViewTree]] = {
    "top_down": top_down,
    "bottom_up": bottom_up,
    "flat": flat,
}


def transform(profile: Profile, shape: str, **kwargs) -> ViewTree:
    """Dispatch to a transform by shape name."""
    try:
        fn = _SHAPES[shape]
    except KeyError:
        raise ValueError("unknown view shape %r (expected one of %s)"
                         % (shape, ", ".join(sorted(_SHAPES)))) from None
    return fn(profile, **kwargs)
