"""Differential profiles (§V-A(c), second operation; Fig. 3).

The differential operation quantifies the difference between two profiles
P1 (baseline) and P2 (treatment).  Following the paper, two nodes are
differentiable iff all their ancestors are differentiable — which tree
merging gives for free — and every node carries one of four tags:

* ``[A]`` — context newly *added* in P2 (absent from P1);
* ``[D]`` — context *deleted* in P2 (present only in P1);
* ``[+]`` — present in both, metric larger in P2;
* ``[-]`` — present in both, metric smaller in P2.

Unlike prior approaches that only diff top-down flame graphs and color
qualitatively, the diff here applies to *any* view shape (top-down,
bottom-up, flat) and stores exact per-metric deltas; the renderer can then
quantify rather than merely hint.  Users who prefer ratios over differences
(e.g. memory-scaling factors, §V-B) can request division.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.metric import Aggregation, Metric, MetricSchema
from ..core.profile import Profile
from ..errors import AnalysisError
from . import viewtree_columnar
from .transform import KeyFn, transform
from .viewtree import ViewNode, ViewTree, default_merge_key

TAG_ADDED = "A"
TAG_DELETED = "D"
TAG_GREW = "+"
TAG_SHRANK = "-"
TAG_SAME = "="


def diff_trees(baseline: ViewTree, treatment: ViewTree,
               metric_index: int = 0,
               tolerance: float = 0.0,
               key_fn: KeyFn = default_merge_key) -> ViewTree:
    """Diff two view trees of the same shape.

    The result's ``inclusive``/``exclusive`` hold the *treatment* values,
    ``baseline`` holds the baseline's inclusive values, and ``tag`` holds
    the difference class judged on ``metric_index`` with the given absolute
    ``tolerance``.  Shapes must match; schemas are unified.
    """
    if baseline.shape != treatment.shape:
        raise AnalysisError("cannot diff %s against %s"
                            % (baseline.shape, treatment.shape))
    schema = baseline.schema.union(treatment.schema)
    result = ViewTree(schema, shape="diff:%s" % baseline.shape)

    base_remap = [schema.index_of(n) for n in baseline.schema.names()]
    treat_remap = [schema.index_of(n) for n in treatment.schema.names()]

    base_columnar = baseline.columnar()
    treat_columnar = treatment.columnar()
    if (key_fn is default_merge_key
            and base_columnar is not None and base_columnar.default_keys
            and treat_columnar is not None and treat_columnar.default_keys):
        return viewtree_columnar.diff_columnar(
            base_columnar, treat_columnar, base_remap, treat_remap,
            schema, result.shape, metric_index, tolerance)

    # Overlay the baseline first, then the treatment, then classify.
    base_seen = set()
    stack = [(baseline.root, result.root)]
    while stack:
        src, dst = stack.pop()
        base_seen.add(id(dst))
        for local, value in src.inclusive.items():
            dst.baseline[base_remap[local]] = (
                dst.baseline.get(base_remap[local], 0.0) + value)
        dst.sources.extend(src.sources)
        for child in src.children.values():
            stack.append((child, dst.child(child.frame, key_fn)))

    seen = set()
    stack = [(treatment.root, result.root)]
    while stack:
        src, dst = stack.pop()
        seen.add(id(dst))
        for local, value in src.inclusive.items():
            dst.add_inclusive(treat_remap[local], value)
        for local, value in src.exclusive.items():
            dst.add_exclusive(treat_remap[local], value)
        dst.sources.extend(src.sources)
        for child in src.children.values():
            stack.append((child, dst.child(child.frame, key_fn)))

    for node in result.nodes():
        if node is result.root:
            continue
        in_treatment = id(node) in seen
        in_baseline = id(node) in base_seen
        before = node.baseline.get(metric_index, 0.0)
        after = node.inclusive.get(metric_index, 0.0)
        if in_treatment and not in_baseline:
            node.tag = TAG_ADDED
        elif in_baseline and not in_treatment:
            node.tag = TAG_DELETED
        elif after > before + tolerance:
            node.tag = TAG_GREW
        elif after < before - tolerance:
            node.tag = TAG_SHRANK
        else:
            node.tag = TAG_SAME
    return result


def diff_profiles(baseline: Profile, treatment: Profile,
                  shape: str = "top_down", metric: Optional[str] = None,
                  tolerance: float = 0.0) -> ViewTree:
    """Transform both profiles into ``shape`` and diff the views.

    ``metric`` is resolved against the *union* schema — the column order of
    the diff tree itself.  Resolving against the baseline alone would
    classify tags on the wrong column whenever the two profiles declare
    their metrics in different orders.
    """
    t1 = transform(baseline, shape)
    t2 = transform(treatment, shape)
    schema = t1.schema.union(t2.schema)
    metric_index = schema.index_of(metric) if metric else 0
    return diff_trees(t1, t2, metric_index=metric_index, tolerance=tolerance)


def add_delta_column(tree: ViewTree, metric_index: int,
                     mode: str = "subtract") -> int:
    """Attach an explicit difference column to a diff tree.

    ``mode="subtract"`` stores ``after - before``; ``mode="ratio"`` stores
    ``after / before`` (0 where the baseline is 0) — the division variant
    §V-B recommends for scaling studies.  Returns the new column index.
    """
    if not tree.shape.startswith("diff:"):
        raise AnalysisError("delta columns only apply to diff trees")
    if mode not in ("subtract", "ratio"):
        raise AnalysisError("mode must be 'subtract' or 'ratio'")
    metric = tree.schema[metric_index]
    suffix = "delta" if mode == "subtract" else "ratio"
    column = tree.schema.add(Metric(
        name="%s:%s" % (metric.name, suffix),
        unit=metric.unit if mode == "subtract" else "",
        description="%s of %s (treatment vs baseline)" % (suffix, metric.name),
        aggregation=Aggregation.SUM))
    for node in tree.nodes():
        before = node.baseline.get(metric_index, 0.0)
        after = node.inclusive.get(metric_index, 0.0)
        if mode == "subtract":
            node.inclusive[column] = after - before
        else:
            node.inclusive[column] = after / before if before else 0.0
    # In-place mutation: drop the tree from any engine cache (lazy import —
    # the engine depends on this package).
    from ..engine import invalidate_everywhere
    invalidate_everywhere(tree)
    return column


def summarize(tree: ViewTree) -> Dict[str, int]:
    """Count nodes per differential tag (used in reports and tests)."""
    counts: Dict[str, int] = {}
    for node in tree.nodes():
        if node.tag:
            counts[node.tag] = counts.get(node.tag, 0) + 1
    return counts
