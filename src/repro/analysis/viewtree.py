"""View trees: the display-oriented trees the analysis engine produces.

A raw CCT keeps every calling context distinct (one node per frame *and*
call line).  Views merge contexts that a reader considers the same — by
default on (function name, file, module) — and carry both inclusive and
exclusive values per metric.  All three tree shapes from §V-A (top-down,
bottom-up, flat) are view trees, which lets the differential and aggregate
operations (§V-A(c)) apply uniformly to every shape, a capability the paper
highlights over prior diff tools that only handle top-down flame graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.frame import Frame, FrameKind, ROOT_FRAME
from ..core.metric import MetricSchema

#: Key under which children are merged; produced by a key function.
MergeKey = Tuple


def default_merge_key(frame: Frame) -> MergeKey:
    """Merge frames by (name, file, module), ignoring line and address."""
    return frame.merge_key()


def line_merge_key(frame: Frame) -> MergeKey:
    """Merge frames only when the source line also matches."""
    return (frame.name, frame.file, frame.line, frame.module)


class SourceList:
    """The CCT nodes that contributed to a view node, resolved lazily.

    Behaves like the plain list it replaces, but can additionally hold
    *lazy parts* — ``(resolver, ids)`` pairs of columnar node ids plus a
    callable that materializes them into :class:`CCTNode` objects.  The
    columnar transforms hand out thousands of these without touching a
    single object node; only consumers that actually need code links
    (annotations, session detail panes) pay for materialization.

    Length and truthiness never force resolution, so "does this view node
    exist yet" checks in the merge loops stay free.
    """

    __slots__ = ("_parts",)

    def __init__(self, items: Optional[Iterable[CCTNode]] = None) -> None:
        #: Ordered parts: each one either a list of nodes or a lazy
        #: ``(resolver, payload, count)`` triple — ``resolver(payload)``
        #: yields ``count`` materialized nodes.
        self._parts: List[object] = []
        if items:
            self._parts.append(list(items))

    @classmethod
    def lazy(cls, resolver: Callable[[object], List[CCTNode]],
             payload: object, count: int) -> "SourceList":
        """A deferred source list, materialized on first iteration."""
        instance = cls()
        if count:
            instance._parts.append((resolver, payload, count))
        return instance

    def _force(self) -> List[CCTNode]:
        parts = self._parts
        if len(parts) == 1 and type(parts[0]) is list:
            return parts[0]
        items: List[CCTNode] = []
        for part in parts:
            if type(part) is list:
                items.extend(part)
            else:
                items.extend(part[0](part[1]))
        self._parts = [items] if items else []
        return items

    # -- list protocol ---------------------------------------------------

    def append(self, node: CCTNode) -> None:
        parts = self._parts
        if parts and type(parts[-1]) is list:
            parts[-1].append(node)
        else:
            parts.append([node])

    def extend(self, items) -> None:
        if isinstance(items, SourceList):
            # Copy list parts (list.extend semantics: the receiving list
            # must not alias the source); lazy parts are immutable pairs
            # and can be shared.
            for part in items._parts:
                if type(part) is list:
                    if part:
                        self._parts.append(list(part))
                else:
                    self._parts.append(part)
        else:
            items = list(items)
            if items:
                self._parts.append(items)

    def copy(self) -> "SourceList":
        duplicate = SourceList()
        duplicate._parts = [list(part) if type(part) is list else part
                            for part in self._parts]
        return duplicate

    def __iter__(self) -> Iterator[CCTNode]:
        return iter(self._force())

    def __len__(self) -> int:
        return sum(len(part) if type(part) is list else part[2]
                   for part in self._parts)

    def __bool__(self) -> bool:
        return bool(self._parts)

    def __getitem__(self, index):
        return self._force()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, SourceList):
            return self._force() == other._force()
        if isinstance(other, list):
            return self._force() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return "SourceList(%r)" % (self._force(),)


class ViewNode:
    """One node of a view tree."""

    __slots__ = ("frame", "parent", "children", "inclusive", "exclusive",
                 "sources", "tag", "baseline", "histogram")

    def __init__(self, frame: Frame,
                 parent: Optional["ViewNode"] = None) -> None:
        self.frame = frame
        self.parent = parent
        self.children: Dict[MergeKey, ViewNode] = {}
        self.inclusive: Dict[int, float] = {}
        self.exclusive: Dict[int, float] = {}
        #: CCT nodes that contributed to this view node (for code links).
        self.sources: SourceList = SourceList()
        #: Differential tag: one of "A", "D", "+", "-", "=" (None otherwise).
        self.tag: Optional[str] = None
        #: In a differential tree, the first profile's inclusive values.
        self.baseline: Dict[int, float] = {}
        #: In an aggregate tree, per-profile (or per-snapshot) value series.
        self.histogram: Dict[int, List[float]] = {}

    # -- construction ----------------------------------------------------

    def child(self, frame: Frame,
              key_fn: Callable[[Frame], MergeKey] = default_merge_key
              ) -> "ViewNode":
        """Return the merged child for ``frame``, creating it if absent."""
        key = key_fn(frame)
        node = self.children.get(key)
        if node is None:
            node = ViewNode(frame, parent=self)
            self.children[key] = node
        return node

    def add_inclusive(self, metric_index: int, value: float) -> None:
        """Accumulate an inclusive value."""
        self.inclusive[metric_index] = (
            self.inclusive.get(metric_index, 0.0) + value)

    def add_exclusive(self, metric_index: int, value: float) -> None:
        """Accumulate an exclusive value."""
        self.exclusive[metric_index] = (
            self.exclusive.get(metric_index, 0.0) + value)

    # -- queries -----------------------------------------------------------

    def value(self, metric_index: int, inclusive: bool = True) -> float:
        """This node's value for a metric (0 when absent)."""
        table = self.inclusive if inclusive else self.exclusive
        return table.get(metric_index, 0.0)

    def delta(self, metric_index: int) -> float:
        """In a differential tree: new value minus baseline value."""
        return (self.inclusive.get(metric_index, 0.0)
                - self.baseline.get(metric_index, 0.0))

    def label(self) -> str:
        """Display label, including the differential tag when present."""
        base = self.frame.label()
        if self.tag:
            return "[%s] %s" % (self.tag, base)
        return base

    def path(self) -> List["ViewNode"]:
        """Nodes from the root (exclusive) down to this node."""
        nodes: List[ViewNode] = []
        node: Optional[ViewNode] = self
        while node is not None and node.frame.kind is not FrameKind.ROOT:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes

    def depth(self) -> int:
        """Distance from the view root."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def sorted_children(self) -> List["ViewNode"]:
        """Children ordered by descending first-metric inclusive value,
        breaking ties on the label for determinism."""
        return sorted(self.children.values(),
                      key=lambda n: (-n.inclusive.get(0, 0.0), n.frame.name,
                                     n.frame.file))

    def walk(self) -> Iterator["ViewNode"]:
        """Depth-first pre-order iteration over this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:
        return "<ViewNode %s>" % self.label()


class ViewTree:
    """A view tree plus the metric schema its column indices refer to.

    The node objects can be *lazy*: a tree built by the columnar
    transforms carries a :class:`~repro.analysis.viewtree_columnar.
    ColumnarViewTree` and only materializes ``ViewNode`` objects when
    ``root`` is first touched.  Array-aware consumers (digest, layout,
    merge, diff) read the columnar form through :meth:`columnar` and
    never pay for the facade.
    """

    #: The shape of the view: "top_down", "bottom_up", "flat", or a
    #: decorated shape such as "diff:top_down" / "aggregate:top_down".
    def __init__(self, schema: MetricSchema, shape: str = "top_down") -> None:
        self._root: Optional[ViewNode] = ViewNode(ROOT_FRAME)
        self._columnar = None
        self.schema = schema
        self.shape = shape

    @classmethod
    def columnar_backed(cls, schema: MetricSchema, shape: str,
                        columnar) -> "ViewTree":
        """A tree whose nodes materialize lazily from columnar arrays."""
        tree = cls.__new__(cls)
        tree._root = None
        tree._columnar = columnar
        tree.schema = schema
        tree.shape = shape
        return tree

    @property
    def root(self) -> ViewNode:
        node = self._root
        if node is None:
            node = self._root = self._columnar.materialize()
        return node

    @root.setter
    def root(self, node: ViewNode) -> None:
        # Replacing the root hand-builds a new tree; any columnar
        # snapshot no longer describes it.
        self._root = node
        self._columnar = None

    def columnar(self):
        """The backing column arrays, or None for object-built trees."""
        return self._columnar

    def mark_mutated(self) -> None:
        """Drop the columnar snapshot after in-place facade mutation.

        Mutators (``formula.derive``, ``diff.add_delta_column``, derived
        -metric callbacks) edit the materialized ``ViewNode`` dicts; the
        arrays no longer agree, so array-path consumers must fall back
        to the objects.  Materializes first so no data is lost when a
        mutator is applied to a never-touched lazy tree.
        """
        if self._columnar is not None:
            if self._root is None:
                self._root = self._columnar.materialize()
            self._columnar = None

    def nodes(self) -> Iterator[ViewNode]:
        """Pre-order iteration over all nodes."""
        return self.root.walk()

    def node_count(self) -> int:
        """Total node count including the root."""
        if self._root is None:
            return self._columnar.n_rows
        return sum(1 for _ in self.nodes())

    def total(self, metric_index: int) -> float:
        """The root's inclusive value for a metric."""
        if self._root is None:
            columnar = self._columnar
            if 0 <= metric_index < columnar.n_metrics and \
                    columnar.incl_present[0, metric_index]:
                return float(columnar.inclusive[0, metric_index])
            return 0.0
        return self.root.inclusive.get(metric_index, 0.0)

    def find_by_name(self, name: str) -> List[ViewNode]:
        """All nodes whose frame name equals ``name``."""
        return [n for n in self.nodes() if n.frame.name == name]

    def top(self, metric_index: int = 0, count: int = 10,
            inclusive: bool = False) -> List[ViewNode]:
        """The hottest non-root nodes by a metric."""
        candidates = [n for n in self.nodes()
                      if n.frame.kind is not FrameKind.ROOT]
        candidates.sort(key=lambda n: -n.value(metric_index, inclusive))
        return candidates[:count]
