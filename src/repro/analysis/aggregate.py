"""Multi-profile aggregation (§V-A(c), first operation).

Aggregation merges N profiles by constructing a unified tree and attaching,
to every node, the per-profile value series plus derived statistics (sum,
min, max, mean).  It powers:

* thread/process/run comparison — "how does this context behave across my
  32 worker threads?";
* the aggregate view of Fig. 4 — per-context histograms across a series of
  periodic memory snapshots, feeding the leak detector of §VII-C1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.cct import CCTNode
from ..core.metric import Aggregation, Metric, MetricSchema
from ..core.monitor import PointKind
from ..core.profile import Profile
from ..errors import AnalysisError
from . import viewtree_columnar
from .transform import KeyFn, top_down, transform
from .viewtree import ViewNode, ViewTree, default_merge_key

#: The statistics attached per input metric when aggregating.
DEFAULT_OPERATORS: Tuple[Aggregation, ...] = (
    Aggregation.SUM, Aggregation.MIN, Aggregation.MAX, Aggregation.MEAN)


def merge_trees(trees: Sequence[ViewTree],
                operators: Sequence[Aggregation] = DEFAULT_OPERATORS,
                key_fn: KeyFn = default_merge_key) -> ViewTree:
    """Merge view trees of the same shape into one aggregate tree.

    The result's schema holds, for every input metric ``m``, one derived
    column per operator named ``m:sum``, ``m:min``, ... .  Every node's
    ``histogram`` maps the *input* metric index to its per-tree value list
    (0.0 where a tree lacked the node), which is what the histogram view
    renders.
    """
    if not trees:
        raise AnalysisError("cannot aggregate zero trees")
    shapes = {tree.shape for tree in trees}
    if len(shapes) != 1:
        raise AnalysisError("cannot aggregate mixed shapes: %s"
                            % ", ".join(sorted(shapes)))

    base_schema = trees[0].schema
    for tree in trees[1:]:
        base_schema = base_schema.union(tree.schema)
    names = base_schema.names()

    result = ViewTree(MetricSchema(), shape="aggregate:%s" % trees[0].shape)
    stat_columns: Dict[Tuple[int, Aggregation], int] = {}
    for index, metric in enumerate(base_schema):
        for op in operators:
            column = result.schema.add(Metric(
                name="%s:%s" % (metric.name, op.name.lower()),
                unit=metric.unit,
                description="%s of %s across %d profiles"
                            % (op.name.lower(), metric.name, len(trees)),
                aggregation=op))
            stat_columns[(index, op)] = column

    columnar = [tree.columnar() for tree in trees]
    if (key_fn is default_merge_key
            and all(cvt is not None and cvt.default_keys
                    for cvt in columnar)
            and all(op in viewtree_columnar._COMBINABLE
                    for op in operators)):
        remaps = [[base_schema.index_of(name) for name in tree.schema.names()]
                  for tree in trees]
        return viewtree_columnar.merge_columnar(
            columnar, remaps, tuple(operators), result.schema,
            result.shape, len(base_schema))

    count = len(trees)
    for position, tree in enumerate(trees):
        # Map this tree's columns onto the unified column order.
        remap = [base_schema.index_of(name) for name in tree.schema.names()]
        stack = [(tree.root, result.root)]
        while stack:
            src, dst = stack.pop()
            dst.sources.extend(src.sources)
            for local_index, value in src.inclusive.items():
                unified = remap[local_index]
                series = dst.histogram.setdefault(unified, [0.0] * count)
                series[position] += value
            for local_index, value in src.exclusive.items():
                unified = remap[local_index]
                dst.add_exclusive(stat_columns.get(
                    (unified, Aggregation.SUM),
                    stat_columns[(unified, operators[0])]), value)
            for child in src.children.values():
                stack.append((child, dst.child(child.frame, key_fn)))

    for node in result.root.walk():
        for unified, series in node.histogram.items():
            for op in operators:
                node.inclusive[stat_columns[(unified, op)]] = op.combine(series)
    return result


def aggregate_profiles(profiles: Sequence[Profile], shape: str = "top_down",
                       operators: Sequence[Aggregation] = DEFAULT_OPERATORS
                       ) -> ViewTree:
    """Transform each profile into ``shape`` and merge the results."""
    trees = [transform(profile, shape) for profile in profiles]
    return merge_trees(trees, operators)


def snapshot_series(profile: Profile, metric_name: str,
                    kind: Optional[PointKind] = None
                    ) -> Dict[CCTNode, List[float]]:
    """Per-context value series across a profile's snapshot points.

    Returns context → list of values indexed by snapshot sequence (missing
    captures filled with 0.0, e.g. a context allocated late in the run).
    This is the data behind Fig. 4's per-frame histograms.
    """
    index = profile.schema.index_of(metric_name)
    sequences = profile.snapshot_sequences()
    if not sequences:
        return {}
    slot = {seq: i for i, seq in enumerate(sequences)}
    series: Dict[CCTNode, List[float]] = {}
    for point in profile.points:
        if point.sequence <= 0:
            continue
        if kind is not None and point.kind is not kind:
            continue
        node = point.primary()
        values = series.setdefault(node, [0.0] * len(sequences))
        values[slot[point.sequence]] += point.value(index)
    return series


def snapshot_totals(profile: Profile, metric_name: str) -> List[float]:
    """Whole-program value per snapshot (e.g. total live bytes over time)."""
    per_context = snapshot_series(profile, metric_name)
    if not per_context:
        return []
    length = len(next(iter(per_context.values())))
    totals = [0.0] * length
    for values in per_context.values():
        for i, value in enumerate(values):
            totals[i] += value
    return totals
