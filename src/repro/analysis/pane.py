"""The programming pane: user scripts over the loaded views (§V-B).

In the paper, a pane in the GUI runs user-written Python (via
Python→WASM) against the viewer's internal trees, with callbacks hooked
into the tree operations.  Here the pane executes script text in a
*restricted namespace*: no imports, no filesystem, no attribute escapes —
just the analysis surface a viewer would expose:

* ``tree`` — the current :class:`~repro.analysis.viewtree.ViewTree`;
* ``nodes()`` / ``find(name)`` / ``search(pattern)`` — traversal;
* ``value(node, metric)`` / ``exclusive(node, metric)`` — metric access;
* ``derive(name, formula)`` — the formula engine;
* ``elide(predicate)`` / ``rename(fn)`` — node-visit customization
  (recorded into a :class:`~repro.analysis.callbacks.Customization` that
  the caller re-applies through a transform);
* ``emit(...)`` — output lines returned to the pane.

Scripts are plain Python expressions/statements; the sandbox denies
dunder access and the builtins that reach the interpreter or the OS.  It
is a *usability* boundary — protecting the user from accidents, as the
paper's WASM pane does — not a security boundary against adversaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import AnalysisError
from .callbacks import Customization
from .formula import derive as formula_derive
from .query import search as query_search
from .viewtree import ViewNode, ViewTree

_ALLOWED_BUILTINS = {
    "abs": abs, "min": min, "max": max, "sum": sum, "len": len,
    "sorted": sorted, "enumerate": enumerate, "range": range,
    "round": round, "zip": zip, "map": map, "filter": filter,
    "float": float, "int": int, "str": str, "bool": bool,
    "list": list, "dict": dict, "set": set, "tuple": tuple,
    "any": any, "all": all, "reversed": reversed, "print": None,  # replaced
}

_BANNED_SUBSTRINGS = ("__", "import", "open(", "exec(", "eval(",
                      "globals(", "locals(", "getattr(", "setattr(",
                      "delattr(", "vars(", "compile(")


@dataclass
class PaneResult:
    """What one script run produced."""

    output: List[str] = field(default_factory=list)
    derived: List[str] = field(default_factory=list)
    customization: Customization = field(default_factory=Customization)
    #: The script's final ``result`` variable, if it set one.
    result: Any = None


class ProgrammingPane:
    """Executes user scripts against one view tree."""

    def __init__(self, tree: ViewTree) -> None:
        self.tree = tree

    def run(self, script: str) -> PaneResult:
        """Execute ``script``; returns its output and registered hooks.

        Raises :class:`AnalysisError` for banned constructs or runtime
        failures, with the original message preserved.
        """
        lowered = script  # case-sensitive: dunders and calls are lowercase
        for banned in _BANNED_SUBSTRINGS:
            if banned in lowered:
                raise AnalysisError(
                    "pane scripts may not use %r" % banned)

        pane_result = PaneResult()
        tree = self.tree

        def emit(*parts: Any) -> None:
            pane_result.output.append(" ".join(str(p) for p in parts))

        def find(name: str) -> List[ViewNode]:
            return tree.find_by_name(name)

        def search(pattern: str, regex: bool = False) -> List[ViewNode]:
            return query_search(tree, pattern, regex=regex)

        def nodes() -> List[ViewNode]:
            return list(tree.nodes())

        def value(node: ViewNode, metric: str) -> float:
            return node.inclusive.get(tree.schema.index_of(metric), 0.0)

        def exclusive(node: ViewNode, metric: str) -> float:
            return node.exclusive.get(tree.schema.index_of(metric), 0.0)

        def derive(name: str, formula: str, unit: str = "") -> int:
            index = formula_derive(tree, name, formula, unit=unit)
            pane_result.derived.append(name)
            return index

        def elide(predicate: Callable) -> None:
            pane_result.customization.elide_if(predicate)

        def rename(fn: Callable) -> None:
            pane_result.customization.remap_with(fn)

        builtins = dict(_ALLOWED_BUILTINS)
        builtins["print"] = emit
        namespace: Dict[str, Any] = {
            "__builtins__": builtins,
            "tree": tree,
            "emit": emit,
            "find": find,
            "search": search,
            "nodes": nodes,
            "value": value,
            "exclusive": exclusive,
            "derive": derive,
            "elide": elide,
            "rename": rename,
            "total": lambda metric: tree.total(
                tree.schema.index_of(metric)),
        }
        try:
            exec(compile(script, "<pane>", "exec"), namespace)  # noqa: S102
        except AnalysisError:
            raise
        except Exception as exc:
            raise AnalysisError("pane script failed: %s: %s"
                                % (type(exc).__name__, exc)) from exc
        pane_result.result = namespace.get("result")
        return pane_result
