"""Use/reuse correlation analysis (§VII-C2, Fig. 7).

DrCCTProf-style locality profilers record *use/reuse pairs*: a memory access
(use), a later access to the same data (reuse), and the allocation context
of the data they touch.  EasyView's representation stores each pair as one
multi-context monitoring point ``[allocation, use, reuse]`` (kind
``USE_REUSE``), and the correlated flame-graph view walks:

    allocations  →  uses of the selected allocation  →  reuses of that use

The optimization guidance of the paper — hoist the use and reuse to the
least common ancestor of their call paths and fuse the loops — falls out of
:func:`fusion_candidates`, which ranks pairs by reuse volume and reports the
LCA where the fused loop would live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.monitor import MonitoringPoint, PointKind
from ..core.profile import Profile
from ..errors import AnalysisError
from .traversal import common_ancestor


@dataclass
class ReusePair:
    """One aggregated (allocation, use, reuse) triple."""

    allocation: CCTNode
    use: CCTNode
    reuse: CCTNode
    count: float           # occurrences of the reuse
    lca: Optional[CCTNode]  # least common ancestor of use and reuse paths

    def hoist_target(self) -> str:
        """Where fused code would live, as guidance text."""
        if self.lca is None or self.lca.parent is None:
            return "<program root>"
        return self.lca.frame.label()


def reuse_points(profile: Profile) -> List[MonitoringPoint]:
    """All USE_REUSE monitoring points in a profile."""
    return profile.points_of_kind(PointKind.USE_REUSE)


def allocations_with_reuse(profile: Profile) -> List[Tuple[CCTNode, float]]:
    """Allocation contexts referenced by reuse points, with total reuse
    volume, sorted hottest first.  This is the left flame graph of Fig. 7."""
    index = _count_metric(profile)
    volumes: Dict[int, Tuple[CCTNode, float]] = {}
    for point in reuse_points(profile):
        alloc = point.contexts[0]
        node, volume = volumes.get(id(alloc), (alloc, 0.0))
        volumes[id(alloc)] = (node, volume + point.value(index))
    result = list(volumes.values())
    result.sort(key=lambda pair: -pair[1])
    return result


def uses_of(profile: Profile, allocation: CCTNode
            ) -> List[Tuple[CCTNode, float]]:
    """Use contexts touching one allocation (middle flame graph of Fig. 7)."""
    index = _count_metric(profile)
    volumes: Dict[int, Tuple[CCTNode, float]] = {}
    for point in reuse_points(profile):
        if point.contexts[0] is not allocation:
            continue
        use = point.contexts[1]
        node, volume = volumes.get(id(use), (use, 0.0))
        volumes[id(use)] = (node, volume + point.value(index))
    result = list(volumes.values())
    result.sort(key=lambda pair: -pair[1])
    return result


def reuses_of(profile: Profile, allocation: CCTNode, use: CCTNode
              ) -> List[Tuple[CCTNode, float]]:
    """Reuse contexts following one use (right flame graph of Fig. 7)."""
    index = _count_metric(profile)
    volumes: Dict[int, Tuple[CCTNode, float]] = {}
    for point in reuse_points(profile):
        if point.contexts[0] is not allocation or point.contexts[1] is not use:
            continue
        reuse = point.contexts[2]
        node, volume = volumes.get(id(reuse), (reuse, 0.0))
        volumes[id(reuse)] = (node, volume + point.value(index))
    result = list(volumes.values())
    result.sort(key=lambda pair: -pair[1])
    return result


def fusion_candidates(profile: Profile, top: int = 10) -> List[ReusePair]:
    """Rank use/reuse pairs by volume and attach hoisting guidance.

    A pair whose use and reuse live in *different* functions under a common
    ancestor is the loop-fusion opportunity §VII-C2 exploits for its 28%
    LULESH speedup.
    """
    index = _count_metric(profile)
    merged: Dict[Tuple[int, int, int], ReusePair] = {}
    for point in reuse_points(profile):
        alloc, use, reuse = point.contexts
        key = (id(alloc), id(use), id(reuse))
        pair = merged.get(key)
        if pair is None:
            merged[key] = ReusePair(
                allocation=alloc, use=use, reuse=reuse,
                count=point.value(index),
                lca=common_ancestor(use, reuse))
        else:
            pair.count += point.value(index)
    candidates = sorted(merged.values(), key=lambda p: -p.count)
    return candidates[:top]


def _count_metric(profile: Profile) -> int:
    """The metric column counting reuse occurrences.

    Prefers a column named ``accesses`` or ``count``; otherwise uses the
    first column referenced by any reuse point.
    """
    for name in ("accesses", "count", "occurrences"):
        index = profile.schema.get(name)
        if index is not None:
            return index
    for point in reuse_points(profile):
        if point.values:
            return next(iter(point.values))
    raise AnalysisError("profile has no reuse count metric")
