"""Memory-leak detection over snapshot series (§VII-C1, Fig. 4).

The paper's cloud case study captures a heap snapshot every 0.1 s and flags
allocation contexts whose *active* (live) memory stays continuously high
with no clear sign of reclamation — the textbook pprof leak-hunting recipe,
automated.  A healthy context's live bytes diminish toward the end of the
run; a leaky context's live bytes plateau or keep climbing.

The classifier below scores each allocation context's series on three
signals and combines them:

* **trend** — the slope of a least-squares line fit over the series,
  normalized by the series mean (persistent growth ⇒ positive);
* **retention** — final live bytes relative to the series peak (a healthy
  context releases most of its peak by the end);
* **monotonicity** — the fraction of steps that do not decrease (a leak
  rarely shrinks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.cct import CCTNode
from ..core.monitor import PointKind
from ..core.profile import Profile
from .aggregate import snapshot_series


@dataclass
class LeakVerdict:
    """Assessment of one allocation context."""

    context: CCTNode
    series: List[float]
    trend: float          # normalized slope per snapshot
    retention: float      # final value / peak value (0..1)
    monotonicity: float   # fraction of non-decreasing steps (0..1)
    score: float          # combined 0..1 suspicion score
    suspicious: bool

    def describe(self) -> str:
        """One-line human summary, as a hover would show it."""
        state = "POTENTIAL LEAK" if self.suspicious else "healthy"
        return ("%s: %s (trend %+0.3f/snapshot, retention %.0f%%, "
                "monotonic %.0f%%)"
                % (self.context.frame.label(), state, self.trend,
                   self.retention * 100, self.monotonicity * 100))


def analyze_series(series: Sequence[float]) -> Dict[str, float]:
    """Compute the three leak signals for one value series."""
    values = np.asarray(series, dtype=float)
    n = len(values)
    if n < 2:
        return {"trend": 0.0, "retention": 1.0 if n and values[-1] > 0 else 0.0,
                "monotonicity": 1.0}
    mean = float(values.mean())
    x = np.arange(n, dtype=float)
    slope = float(np.polyfit(x, values, 1)[0])
    trend = slope / mean if mean else 0.0
    peak = float(values.max())
    retention = float(values[-1]) / peak if peak else 0.0
    steps = np.diff(values)
    monotonicity = float((steps >= 0).mean())
    return {"trend": trend, "retention": retention,
            "monotonicity": monotonicity}


def score_series(series: Sequence[float],
                 trend_weight: float = 0.4,
                 retention_weight: float = 0.4,
                 monotonic_weight: float = 0.2) -> float:
    """Combined 0..1 suspicion score for one series."""
    signals = analyze_series(series)
    # A strongly positive trend saturates at +5%/snapshot.
    trend_component = min(max(signals["trend"] / 0.05, 0.0), 1.0)
    return (trend_weight * trend_component
            + retention_weight * signals["retention"]
            + monotonic_weight * signals["monotonicity"])


def detect_leaks(profile: Profile, metric_name: str = "inuse_bytes",
                 threshold: float = 0.6,
                 min_peak: float = 0.0) -> List[LeakVerdict]:
    """Classify every allocation context with a snapshot series.

    Returns verdicts sorted by descending suspicion score.  ``min_peak``
    filters out contexts whose peak live bytes never matter (noise).
    """
    verdicts: List[LeakVerdict] = []
    series_by_context = snapshot_series(profile, metric_name,
                                        kind=PointKind.ALLOCATION)
    for context, series in series_by_context.items():
        peak = max(series) if series else 0.0
        if peak < min_peak:
            continue
        signals = analyze_series(series)
        score = score_series(series)
        verdicts.append(LeakVerdict(
            context=context,
            series=list(series),
            trend=signals["trend"],
            retention=signals["retention"],
            monotonicity=signals["monotonicity"],
            score=score,
            suspicious=score >= threshold))
    verdicts.sort(key=lambda v: -v.score)
    return verdicts


def suspicious_contexts(profile: Profile, metric_name: str = "inuse_bytes",
                        threshold: float = 0.6) -> List[CCTNode]:
    """Just the contexts flagged as potential leaks."""
    return [v.context for v in detect_leaks(profile, metric_name, threshold)
            if v.suspicious]
