"""False-sharing and data-race analysis (§IV-A's two-access pairs).

Cheetah/Featherlight-style detectors report *false sharing* — two threads
ping-ponging a cache line through accesses to different fields of one
object — and race detectors report two unsynchronized accesses to the same
location.  Both inhabit EasyView's representation as two-context
monitoring points (``FALSE_SHARING`` / ``DATA_RACE``), optionally carrying
the contested data object as the first access's ancestor context.

This module aggregates the pairs, ranks them by ping-pong volume, names
the contested objects, and emits the per-kind guidance the paper's GUI
would surface (pad/realign for false sharing; synchronize for races).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.frame import FrameKind
from ..core.monitor import MonitoringPoint, PointKind
from ..core.profile import Profile
from ..errors import AnalysisError


@dataclass
class AccessPair:
    """One aggregated two-access inefficiency."""

    kind: PointKind
    first: CCTNode
    second: CCTNode
    count: float

    def contested_object(self) -> Optional[str]:
        """The data object both accesses touch, when recorded.

        Detectors that know the object attach it as a ``DATA_OBJECT``
        ancestor of the access contexts.
        """
        for node in (self.first, self.second):
            current: Optional[CCTNode] = node
            while current is not None:
                if current.frame.kind is FrameKind.DATA_OBJECT:
                    return current.frame.name
                current = current.parent
        return None

    def guidance(self) -> str:
        """The per-kind fix suggestion."""
        target = self.contested_object() or "the shared data"
        if self.kind is PointKind.FALSE_SHARING:
            return ("pad or realign %s so the two fields fall in "
                    "different cache lines" % target)
        return ("synchronize the accesses to %s (lock, atomic, or "
                "ownership transfer)" % target)

    def describe(self) -> str:
        label = ("false sharing" if self.kind is PointKind.FALSE_SHARING
                 else "data race")
        return ("%s between %s and %s (%g events) — %s"
                % (label, self.first.frame.label(),
                   self.second.frame.label(), self.count, self.guidance()))


def sharing_points(profile: Profile,
                   kind: Optional[PointKind] = None
                   ) -> List[MonitoringPoint]:
    """All FALSE_SHARING / DATA_RACE points (optionally one kind)."""
    kinds = ((kind,) if kind is not None
             else (PointKind.FALSE_SHARING, PointKind.DATA_RACE))
    return [p for p in profile.points if p.kind in kinds]


def access_pairs(profile: Profile, kind: Optional[PointKind] = None,
                 top: int = 20, metric: str = "") -> List[AccessPair]:
    """Aggregate and rank the two-access pairs."""
    if not sharing_points(profile, kind):
        return []
    index = _count_metric(profile, metric)
    merged: Dict[Tuple[int, int, int], AccessPair] = {}
    for point in sharing_points(profile, kind):
        first, second = point.contexts
        # Unordered pair: (a, b) and (b, a) are the same contention.
        key = (int(point.kind),) + tuple(sorted((id(first), id(second))))
        pair = merged.get(key)
        if pair is None:
            merged[key] = AccessPair(kind=point.kind, first=first,
                                     second=second,
                                     count=point.value(index))
        else:
            pair.count += point.value(index)
    ranked = sorted(merged.values(), key=lambda p: -p.count)
    return ranked[:top]


def contention_by_object(profile: Profile) -> List[Tuple[str, float]]:
    """Total contention events per contested data object, hottest first."""
    volumes: Dict[str, float] = {}
    for pair in access_pairs(profile, top=10 ** 9):
        name = pair.contested_object() or "<unknown object>"
        volumes[name] = volumes.get(name, 0.0) + pair.count
    return sorted(volumes.items(), key=lambda kv: -kv[1])


def report(profile: Profile, top: int = 10) -> str:
    """A textual contention report."""
    pairs = access_pairs(profile, top=top)
    if not pairs:
        return "no contention pairs recorded"
    lines = ["top %d contention pairs:" % len(pairs)]
    for i, pair in enumerate(pairs, 1):
        lines.append("%2d. %s" % (i, pair.describe()))
    by_object = contention_by_object(profile)
    if by_object:
        lines.append("contested objects: "
                     + ", ".join("%s (%g)" % item for item in by_object))
    return "\n".join(lines)


def _count_metric(profile: Profile, metric: str = "") -> int:
    if metric:
        return profile.schema.index_of(metric)
    for name in ("pingpongs", "events", "count", "accesses"):
        index = profile.schema.get(name)
        if index is not None:
            return index
    for point in sharing_points(profile):
        if point.values:
            return next(iter(point.values))
    raise AnalysisError("profile has no contention count metric")
