"""Tree traversal orders and the visitor/callback machinery (§V-A(a)).

EasyView exposes traversals so users can hook arbitrary analysis into them.
Two callback families exist, mirroring §V-B:

* *node-visit callbacks* run at every node and return a
  :class:`VisitAction` steering the traversal (keep, skip the subtree,
  stop entirely);
* *metric-computation callbacks* are handled by
  :mod:`repro.analysis.formula` and :mod:`repro.analysis.callbacks`.

The functions here are generic over CCT nodes and view nodes: anything with
``children`` (a dict of nodes) walks.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, List, Optional, TypeVar

NodeT = TypeVar("NodeT")


class VisitAction(enum.Enum):
    """What a node-visit callback asks the traversal to do next."""

    CONTINUE = "continue"   # keep going
    SKIP = "skip"           # do not descend into this node's children
    STOP = "stop"           # abort the whole traversal


class Order(enum.Enum):
    """Supported traversal orders."""

    PRE = "pre"
    POST = "post"
    BFS = "bfs"


def _ordered_children(node: NodeT) -> List[NodeT]:
    """A node's children in its deterministic display order.

    CCT nodes sort by frame identity, view nodes by descending metric —
    each class's ``sorted_children`` promise.  Nodes without the method
    fall back to insertion order.
    """
    sorter = getattr(node, "sorted_children", None)
    if sorter is not None:
        return sorter()
    return list(node.children.values())  # type: ignore[attr-defined]


def preorder(root: NodeT) -> Iterator[NodeT]:
    """Depth-first pre-order (parents before children).

    Siblings are visited in ``sorted_children`` order, so two trees built
    from the same samples in different arrival order traverse identically.
    """
    stack: List[NodeT] = [root]
    while stack:
        node = stack.pop()
        yield node
        children = _ordered_children(node)
        if children:
            children.reverse()
            stack.extend(children)


def postorder(root: NodeT) -> Iterator[NodeT]:
    """Depth-first post-order (children before parents), iteratively.

    Profiles routinely carry call paths hundreds of frames deep (recursive
    workloads), so recursion-based walks would hit Python's stack limit.
    Siblings complete in ``sorted_children`` order, mirroring
    :func:`preorder`.
    """
    stack: List[tuple] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
        else:
            stack.append((node, True))
            children = _ordered_children(node)
            children.reverse()
            stack.extend((child, False) for child in children)


def bfs(root: NodeT) -> Iterator[NodeT]:
    """Breadth-first order (level by level), siblings in
    ``sorted_children`` order within each level."""
    queue: List[NodeT] = [root]
    index = 0
    while index < len(queue):
        node = queue[index]
        index += 1
        yield node
        queue.extend(_ordered_children(node))


_ORDERS = {Order.PRE: preorder, Order.POST: postorder, Order.BFS: bfs}


def iterate(root: NodeT, order: Order = Order.PRE) -> Iterator[NodeT]:
    """Iterate a tree in the requested order."""
    return _ORDERS[order](root)


def visit(root: NodeT,
          callback: Callable[[NodeT], Optional[VisitAction]],
          order: Order = Order.PRE) -> int:
    """Run a node-visit callback over the tree; returns nodes visited.

    For :data:`Order.PRE`, a callback returning :data:`VisitAction.SKIP`
    prunes the subtree below the current node; :data:`VisitAction.STOP`
    aborts immediately.  For post-order and BFS, ``SKIP`` is meaningless
    (children were already visited or enqueued) and is treated as
    ``CONTINUE``.
    """
    visited = 0
    if order is Order.PRE:
        stack: List[NodeT] = [root]
        while stack:
            node = stack.pop()
            visited += 1
            action = callback(node) or VisitAction.CONTINUE
            if action is VisitAction.STOP:
                return visited
            if action is VisitAction.SKIP:
                continue
            children = _ordered_children(node)
            if children:
                children.reverse()
                stack.extend(children)
        return visited

    for node in iterate(root, order):
        visited += 1
        action = callback(node) or VisitAction.CONTINUE
        if action is VisitAction.STOP:
            return visited
    return visited


def ancestors(node: NodeT) -> Iterator[NodeT]:
    """Walk from a node's parent up to the root."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def common_ancestor(a: NodeT, b: NodeT) -> Optional[NodeT]:
    """Least common ancestor of two nodes of the same tree (or None).

    This is the operation behind the locality guidance of §VII-C2: hoisting
    a use and its reuse to the least common ancestor of their call paths.
    """
    seen = {id(a)}
    seen.update(id(n) for n in ancestors(a))
    if id(b) in seen:
        return b
    for candidate in ancestors(b):
        if id(candidate) in seen:
            return candidate
    return None
