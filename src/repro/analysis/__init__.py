"""EasyView's data analysis engine: traversal, metric computation, tree
transformations, multi-profile aggregation and differencing, derived-metric
formulas, customization hooks, search, leak detection, and reuse analysis."""

from .aggregate import (aggregate_profiles, merge_trees, snapshot_series,
                        snapshot_totals)
from .anonymize import anonymize, mapping_for
from .callbacks import Customization
from .combine import combine
from .diff import (add_delta_column, diff_profiles, diff_trees, summarize,
                   TAG_ADDED, TAG_DELETED, TAG_GREW, TAG_SAME, TAG_SHRANK)
from .formula import derive, evaluate_str, parse as parse_formula
from .leak import LeakVerdict, detect_leaks, suspicious_contexts
from .metrics import (check_inclusive_invariant, compute_inclusive,
                      inclusive_value, totals)
from .prune import collapse_recursion, hot_path, prune, truncate_depth
from .query import filter_by_name, filter_tree, match_fraction, search
from .pane import PaneResult, ProgrammingPane
from .presets import PRESETS, Preset, applicable_presets, apply_all, apply_preset
from .redundancy import (RedundancyPair, redundancy_fraction,
                         redundancy_pairs, redundancy_points)
from .reuse import (ReusePair, allocations_with_reuse, fusion_candidates,
                    reuse_points, reuses_of, uses_of)
from .scaling import (ScalingVerdict, fit_exponent, scaling_losses,
                      scaling_report, scaling_tree)
from .sharing import (AccessPair, access_pairs, contention_by_object,
                      sharing_points)
from .threads import (aggregate_threads, imbalance, is_threaded,
                      split_by_thread, thread_roots, thread_totals)
from .timerange import (activity_series, find_phases, range_diff,
                        range_profile)
from .transform import bottom_up, flat, top_down, transform
from .traversal import (Order, VisitAction, ancestors, bfs, common_ancestor,
                        iterate, postorder, preorder, visit)
from .viewtree import ViewNode, ViewTree, default_merge_key, line_merge_key

__all__ = [
    "aggregate_profiles", "merge_trees", "snapshot_series", "snapshot_totals",
    "anonymize", "mapping_for", "Customization", "combine", "add_delta_column", "diff_profiles", "diff_trees",
    "summarize", "TAG_ADDED", "TAG_DELETED", "TAG_GREW", "TAG_SAME",
    "TAG_SHRANK", "derive", "evaluate_str", "parse_formula", "LeakVerdict",
    "detect_leaks", "suspicious_contexts", "check_inclusive_invariant",
    "compute_inclusive", "inclusive_value", "totals", "collapse_recursion",
    "hot_path", "prune", "truncate_depth", "filter_by_name", "filter_tree",
    "match_fraction", "search", "ReusePair", "allocations_with_reuse",
    "fusion_candidates", "reuse_points", "reuses_of", "uses_of",
    "PRESETS", "Preset", "applicable_presets", "apply_all", "apply_preset",
    "RedundancyPair", "redundancy_fraction", "redundancy_pairs",
    "redundancy_points", "AccessPair", "access_pairs",
    "contention_by_object", "sharing_points", "PaneResult",
    "ProgrammingPane", "aggregate_threads", "imbalance", "is_threaded",
    "split_by_thread", "thread_roots", "thread_totals",
    "activity_series", "find_phases", "range_diff", "range_profile",
    "ScalingVerdict", "fit_exponent", "scaling_losses", "scaling_report",
    "scaling_tree",
    "bottom_up",
    "flat", "top_down", "transform", "Order", "VisitAction", "ancestors",
    "bfs", "common_ancestor", "iterate", "postorder", "preorder", "visit",
    "ViewNode", "ViewTree", "default_merge_key", "line_merge_key",
]
