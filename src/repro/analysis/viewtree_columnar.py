"""Struct-of-arrays view trees: the columnar core behind ViewTree.

`repro.core.cct_columnar` made the *calling context tree* a set of
parallel arrays with the object tree as a lazy facade.  This module
carries the same form one layer up, through the §V-A view shapes: a
:class:`ColumnarViewTree` keeps a view tree as

* ``parent``/``depth``/``token`` int64 arrays (``parent[i] < i``, rows
  numbered in creation order — the order the object transforms would
  have allocated ``ViewNode`` objects),
* a per-tree merge-key table (``merge_keys[token]`` is the tuple a
  ``ViewNode.children`` dict would use),
* ``float64[R, M]`` inclusive / exclusive value matrices with boolean
  presence masks standing in for the per-node sparse dicts, and
* optional baseline / tag / histogram planes for diff and aggregate
  results.

The transforms themselves (:func:`build_top_down`,
:func:`build_bottom_up`, :func:`build_flat`, :func:`merge_columnar`,
:func:`diff_columnar`) never allocate a ``ViewNode``: tree shape is
found with ``np.unique`` over (parent-view-row, merge-token) integer
pairs one depth level at a time, and every per-metric quantity moves as
one ``np.add.at`` scatter per input.  A creation-order replay pass then
renumbers rows so the arrays are *bit-identical* — shape, values, child
insertion order, source order — to what the preserved object transforms
produce; the object path stays behind as the differential oracle.

``ViewNode`` materialization is deferred exactly like ``CCTNode``:
:meth:`ColumnarViewTree.materialize` builds the facade on first access
to ``ViewTree.root``, and :class:`~repro.analysis.viewtree.SourceList`
lazy parts keep code links resolvable without touching CCT objects.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.cct_columnar import _np
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.metric import Aggregation
from .viewtree import MergeKey, SourceList, ViewNode, ViewTree

#: Differential tag codes: index into this tuple == value in ``tag_codes``.
_TAGS: Tuple[Optional[str], ...] = (None, "A", "D", "+", "-", "=")
_TAG_CODE: Dict[Optional[str], int] = {tag: i for i, tag in enumerate(_TAGS)}


def numpy_available() -> bool:
    """True when the columnar view kernels can run."""
    return _np is not None


# ---------------------------------------------------------------------------
# shared array kernels
# ---------------------------------------------------------------------------

def _visit_positions(parent, depth_groups, sizes, sibling_keys):
    """Pre-order visit position per node for a given sibling order.

    ``sibling_keys`` is a tuple of arrays lexsorted (last key primary is
    ``parent``; the given keys break ties within a parent group).  The
    grouped-exclusive-cumsum trick from ``ColumnarCCT.preorder_positions``
    generalizes to any sibling order, so one helper serves the digest
    walk (merge-key order), creation replay (reversed creation order),
    and the flame layout (value order).
    """
    np = _np
    n = int(parent.shape[0])
    pre = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return pre
    order = np.lexsort(sibling_keys + (parent,))[1:]
    sized = sizes[order]
    cum = np.cumsum(sized)
    parents = parent[order]
    counts = np.bincount(parent[1:], minlength=n)
    start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=start[1:])
    group_base = np.zeros_like(cum)
    group_start = start[parents]
    nonzero = group_start > 0
    group_base[nonzero] = cum[group_start[nonzero] - 1]
    offset = cum - sized - group_base
    child_offset = np.empty(n, dtype=np.int64)
    child_offset[order] = offset
    ids, lstart = depth_groups
    for level in range(1, len(lstart) - 1):
        rows = ids[lstart[level]:lstart[level + 1]]
        pre[rows] = pre[parent[rows]] + 1 + child_offset[rows]
    return pre


def _group_by_depth(depth):
    np = _np
    ids = np.argsort(depth, kind="stable")
    levels = int(depth.max()) + 1 if depth.shape[0] else 1
    counts = np.bincount(depth, minlength=levels)
    start = np.zeros(levels + 1, dtype=np.int64)
    np.cumsum(counts, out=start[1:])
    return ids, start


def _sizes_of(parent, depth_groups):
    np = _np
    sizes = np.ones(parent.shape[0], dtype=np.int64)
    ids, start = depth_groups
    for level in range(len(start) - 2, 0, -1):
        rows = ids[start[level]:start[level + 1]]
        np.add.at(sizes, parent[rows], sizes[rows])
    return sizes


def _merge_tokens(frames: Sequence[Frame]):
    """Merge token per frame-table entry plus the merge-key table."""
    np = _np
    token_of: Dict[MergeKey, int] = {}
    merge_keys: List[MergeKey] = []
    out = np.empty(len(frames), dtype=np.int64)
    for i, frame in enumerate(frames):
        key = frame.merge_key()
        token = token_of.get(key)
        if token is None:
            token = len(merge_keys)
            token_of[key] = token
            merge_keys.append(key)
        out[i] = token
    return out, merge_keys


def _renumber(parent, depth, token, frame_id, creation):
    """Renumber rows ascending by creation rank (root pinned at 0).

    The creation ranks are topological — a row's creator path passes
    through its parent's creator first — so ``parent[i] < i`` holds in
    the renumbered arrays and level sweeps stay valid.
    """
    np = _np
    n_rows = parent.shape[0]
    remap = np.empty(n_rows, dtype=np.int64)
    body = np.argsort(creation[1:], kind="stable") + 1
    remap[0] = 0
    remap[body] = np.arange(1, n_rows, dtype=np.int64)
    new_parent = np.empty(n_rows, dtype=np.int64)
    new_parent[remap] = np.where(parent < 0, np.int64(-1),
                                 remap[np.maximum(parent, 0)])
    new_depth = np.empty(n_rows, dtype=np.int64)
    new_depth[remap] = depth
    new_token = np.empty(n_rows, dtype=np.int64)
    new_token[remap] = token
    new_frame = np.empty(n_rows, dtype=np.int64)
    new_frame[remap] = frame_id
    return remap, new_parent, new_depth, new_token, new_frame


def _grouped_csr(index, minlength):
    """Stable-sort ``index`` into per-group ranges: ``(order, start)``."""
    np = _np
    order = np.argsort(index, kind="stable")
    start = np.zeros(minlength + 1, dtype=np.int64)
    np.cumsum(np.bincount(index, minlength=minlength), out=start[1:])
    return order, start


# ---------------------------------------------------------------------------
# source providers
# ---------------------------------------------------------------------------

class _CCTSources:
    """Lazy per-row source lists backed by a grouped columnar-CCT index.

    ``ids[start[row]:start[row + 1]]`` are the contributing CCT node ids
    for a view row, in the same order the object transform would have
    appended them.  Resolution materializes the CCT facade on demand —
    and, when the owning profile has since swapped its CCT out (so
    ``profile.cct`` no longer fills this snapshot's ``node_objects``),
    falls back to materializing from the snapshot itself.
    """

    __slots__ = ("profile", "col", "ids", "start")

    def __init__(self, profile, col, ids, start) -> None:
        self.profile = profile
        self.col = col
        self.ids = ids
        self.start = start

    def __call__(self, row: int) -> SourceList:
        start = self.start
        count = int(start[row + 1] - start[row])
        return SourceList.lazy(self._resolve, row, count)

    def _resolve(self, row: int):
        col = self.col
        if col.node_objects is None:
            profile = self.profile
            if profile is not None and profile.columnar() is col:
                profile.cct  # materialize the facade; fills node_objects
        if col.node_objects is None:
            col.to_cct()
        start = self.start
        return col.resolve_nodes(
            self.ids[start[row]:start[row + 1]].tolist())


class _UnionSources:
    """Per-row sources of a merge/diff result: concatenated input rows.

    ``refs`` are (input-tree index, input-row) pairs grouped by result
    row in contribution order; each resolves through the input tree's
    own provider, so laziness survives arbitrarily deep merge stacks.
    """

    __slots__ = ("trees", "tree_of", "row_of", "start")

    def __init__(self, trees, tree_of, row_of, start) -> None:
        self.trees = trees
        self.tree_of = tree_of
        self.row_of = row_of
        self.start = start

    def __call__(self, row: int) -> SourceList:
        out = SourceList()
        tree_of = self.tree_of
        row_of = self.row_of
        trees = self.trees
        for at in range(int(self.start[row]), int(self.start[row + 1])):
            src = trees[tree_of[at]].sources_for(int(row_of[at]))
            out.extend(src)
        return out


class _StoredSources:
    """Row sources captured from an existing object tree (round-trips)."""

    __slots__ = ("lists",)

    def __init__(self, lists: List[SourceList]) -> None:
        self.lists = lists

    def __call__(self, row: int) -> SourceList:
        return self.lists[row].copy()


# ---------------------------------------------------------------------------
# the columnar view tree
# ---------------------------------------------------------------------------

class ColumnarViewTree:
    """A view tree as parallel arrays (see module docstring)."""

    __slots__ = ("parent", "depth", "token", "frame_id", "frames",
                 "merge_keys", "shape", "default_keys",
                 "inclusive", "incl_present", "exclusive", "excl_present",
                 "baseline", "base_present", "tag_codes",
                 "hist", "hist_present", "hist_first", "n_series",
                 "row_sources", "node_objects",
                 "_depth_groups_cache", "_size", "_vp")

    def __init__(self, parent, depth, token, frame_id, frames, merge_keys,
                 shape, inclusive, incl_present, exclusive, excl_present,
                 baseline=None, base_present=None, tag_codes=None,
                 hist=None, hist_present=None, hist_first=None,
                 n_series=0, row_sources=None, default_keys=True) -> None:
        self.parent = parent
        self.depth = depth
        #: Merge token per row; ``merge_keys[token[i]]`` is the dict key
        #: under which row ``i`` hangs off its parent.
        self.token = token
        #: Representative frame per row (the first contributor's frame).
        self.frame_id = frame_id
        self.frames = frames
        self.merge_keys = merge_keys
        self.shape = shape
        #: True when ``merge_keys`` are known to be default merge keys —
        #: merge/diff re-key children through ``key_fn``, which is only a
        #: no-op (and so array-safe) when both sides use the default.
        self.default_keys = default_keys
        self.inclusive = inclusive
        self.incl_present = incl_present
        self.exclusive = exclusive
        self.excl_present = excl_present
        self.baseline = baseline
        self.base_present = base_present
        #: int8 per-row diff tag (index into ``_TAGS``), or None.
        self.tag_codes = tag_codes
        #: float64[R, M_in, T] per-input value series (aggregate trees).
        self.hist = hist
        self.hist_present = hist_present
        #: Encounter rank per histogram cell — replays dict insertion
        #: order for the facade (sessions read ``next(iter(...))``).
        self.hist_first = hist_first
        self.n_series = n_series
        #: ``row_sources(row) -> SourceList`` or None for source-free rows.
        self.row_sources = row_sources
        #: After :meth:`materialize`: the ``ViewNode`` per row.
        self.node_objects: Optional[List[ViewNode]] = None
        self._depth_groups_cache = None
        self._size = None
        self._vp = None

    # -- shape -------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return int(self.parent.shape[0])

    @property
    def n_metrics(self) -> int:
        return int(self.inclusive.shape[1])

    def depth_groups(self):
        if self._depth_groups_cache is None:
            self._depth_groups_cache = _group_by_depth(self.depth)
        return self._depth_groups_cache

    def subtree_sizes(self):
        if self._size is None:
            self._size = _sizes_of(self.parent, self.depth_groups())
        return self._size

    def visit_positions(self, sibling_keys):
        """Pre-order position per row under a custom sibling order."""
        return _visit_positions(self.parent, self.depth_groups(),
                                self.subtree_sizes(), sibling_keys)

    def creation_visit_positions(self):
        """Visit positions of the object merge loops' pop-last DFS.

        The object DFS pushes children in creation order and pops from
        the stack tail, so siblings are *visited* in reversed creation
        order — the sibling key is the negated row id.
        """
        if self._vp is None:
            ids = _np.arange(self.n_rows, dtype=_np.int64)
            self._vp = self.visit_positions((-ids,))
        return self._vp

    def sources_for(self, row: int) -> SourceList:
        provider = self.row_sources
        if provider is None:
            return SourceList()
        return provider(row)

    # -- facade ------------------------------------------------------------

    def materialize(self) -> ViewNode:
        """Build the ``ViewNode`` facade; returns the root.

        Rows are already in creation order, so a single ascending pass
        reproduces the object transforms' child insertion order, and
        per-dict cells are inserted ascending by column — matching how
        the object loops fill them — except aggregate histograms, which
        replay their recorded encounter order.
        """
        np = _np
        n_rows = self.n_rows
        frames = self.frames
        frame_l = self.frame_id.tolist()
        parent_l = self.parent.tolist()
        token_l = self.token.tolist()
        merge_keys = self.merge_keys
        provider = self.row_sources
        new = ViewNode.__new__
        nodes: List[ViewNode] = []
        for row in range(n_rows):
            node = new(ViewNode)
            node.frame = frames[frame_l[row]]
            node.children = {}
            node.inclusive = {}
            node.exclusive = {}
            node.sources = provider(row) if provider else SourceList()
            node.tag = None
            node.baseline = {}
            node.histogram = {}
            if row:
                parent = nodes[parent_l[row]]
                node.parent = parent
                parent.children[merge_keys[token_l[row]]] = node
            else:
                node.parent = None
            nodes.append(node)

        def fill(matrix, presence, attr):
            rows, cols = np.nonzero(presence)
            cells = matrix[rows, cols]
            for row, col, value in zip(rows.tolist(), cols.tolist(),
                                       cells.tolist()):
                getattr(nodes[row], attr)[col] = value

        if self.incl_present.all():
            for row, values in enumerate(self.inclusive.tolist()):
                nodes[row].inclusive = dict(enumerate(values))
        else:
            fill(self.inclusive, self.incl_present, "inclusive")
        fill(self.exclusive, self.excl_present, "exclusive")
        if self.baseline is not None:
            fill(self.baseline, self.base_present, "baseline")
        if self.tag_codes is not None:
            for row, code in enumerate(self.tag_codes.tolist()):
                if code:
                    nodes[row].tag = _TAGS[code]
        if self.hist is not None:
            rows, cols = np.nonzero(self.hist_present)
            order = np.lexsort((self.hist_first[rows, cols], rows))
            rows = rows[order]
            cols = cols[order]
            series = self.hist[rows, cols]
            for row, col, values in zip(rows.tolist(), cols.tolist(),
                                        series.tolist()):
                nodes[row].histogram[col] = values
        self.node_objects = nodes
        return nodes[0]


def from_viewtree(tree: ViewTree) -> Optional[ColumnarViewTree]:
    """Snapshot an object view tree into columnar form.

    The inverse of :meth:`ColumnarViewTree.materialize`, used by the
    round-trip tests and by consumers that want array kernels over a
    hand-built tree.  Row ids follow the same reversed-push DFS as
    ``cct_columnar.from_cct``, so within a parent the ascending row ids
    are the children's insertion order.
    """
    if _np is None:
        return None
    np = _np
    n_metrics = len(tree.schema)
    root = tree.root
    frame_index: Dict[int, int] = {}
    frames: List[Frame] = []
    token_of: Dict[MergeKey, int] = {}
    merge_keys: List[MergeKey] = []
    parents: List[int] = []
    depths: List[int] = []
    tokens: List[int] = []
    frame_ids: List[int] = []
    records = []

    def intern(frame: Frame) -> int:
        index = frame_index.get(id(frame))
        if index is None:
            index = len(frames)
            frame_index[id(frame)] = index
            frames.append(frame)
        return index

    def token_for(key: MergeKey) -> int:
        token = token_of.get(key)
        if token is None:
            token = len(merge_keys)
            token_of[key] = token
            merge_keys.append(key)
        return token

    stack = [(root, root.frame.merge_key(), -1, 0)]
    while stack:
        node, key, parent_id, depth = stack.pop()
        row = len(parents)
        parents.append(parent_id)
        depths.append(depth)
        tokens.append(token_for(key))
        frame_ids.append(intern(node.frame))
        records.append(node)
        for child_key, child in reversed(list(node.children.items())):
            stack.append((child, child_key, row, depth + 1))

    n_rows = len(parents)
    inclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    incl_present = np.zeros((n_rows, n_metrics), dtype=bool)
    exclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    excl_present = np.zeros((n_rows, n_metrics), dtype=bool)
    baseline = None
    base_present = None
    tag_codes = None
    hist = None
    hist_present = None
    hist_first = None
    n_series = 0
    source_lists: List[SourceList] = []
    for row, node in enumerate(records):
        for col, value in node.inclusive.items():
            inclusive[row, col] = value
            incl_present[row, col] = True
        for col, value in node.exclusive.items():
            exclusive[row, col] = value
            excl_present[row, col] = True
        if node.baseline:
            if baseline is None:
                baseline = np.zeros((n_rows, n_metrics), dtype=np.float64)
                base_present = np.zeros((n_rows, n_metrics), dtype=bool)
            for col, value in node.baseline.items():
                baseline[row, col] = value
                base_present[row, col] = True
        if node.tag is not None:
            if tag_codes is None:
                tag_codes = np.zeros(n_rows, dtype=np.int8)
            tag_codes[row] = _TAG_CODE.get(node.tag, 0)
        if node.histogram:
            if hist is None:
                n_series = len(next(iter(node.histogram.values())))
                hist = np.zeros((n_rows, n_metrics, n_series),
                                dtype=np.float64)
                hist_present = np.zeros((n_rows, n_metrics), dtype=bool)
                hist_first = np.zeros((n_rows, n_metrics), dtype=np.int64)
            for rank, (col, series) in enumerate(node.histogram.items()):
                if len(series) != n_series:
                    return None  # ragged histograms stay on the object path
                hist[row, col, :] = series
                hist_present[row, col] = True
                hist_first[row, col] = rank
        source_lists.append(node.sources)

    cvt = ColumnarViewTree(
        parent=np.asarray(parents, dtype=np.int64),
        depth=np.asarray(depths, dtype=np.int64),
        token=np.asarray(tokens, dtype=np.int64),
        frame_id=np.asarray(frame_ids, dtype=np.int64),
        frames=frames, merge_keys=merge_keys, shape=tree.shape,
        inclusive=inclusive, incl_present=incl_present,
        exclusive=exclusive, excl_present=excl_present,
        baseline=baseline, base_present=base_present, tag_codes=tag_codes,
        hist=hist, hist_present=hist_present, hist_first=hist_first,
        n_series=n_series, row_sources=_StoredSources(source_lists),
        default_keys=False)
    return cvt


# ---------------------------------------------------------------------------
# transforms
# ---------------------------------------------------------------------------

def _cct_creation_positions(col):
    """Visit positions of the object top-down DFS over a columnar CCT."""
    np = _np
    n = col.n_nodes
    ids = np.arange(n, dtype=np.int64)
    return _visit_positions(col.parent, col._by_depth(),
                            col.subtree_sizes(), (-ids,))


def build_top_down(profile, col) -> ViewTree:
    """Vectorized top-down view build from a columnar CCT.

    Shape discovery is one ``np.unique`` over (parent-view-row,
    merge-token) int pairs per depth level; a creation-order replay then
    renumbers rows to the object loop's allocation order, and all value
    planes land with one ``np.add.at`` scatter each.
    """
    np = _np
    n = col.n_nodes
    n_metrics = col.n_metrics
    frame_token, merge_keys = _merge_tokens(col.frames)
    n_tokens = max(len(merge_keys), 1)
    node_token = frame_token[col.frame_id]
    parent = col.parent
    ids, lstart = col._by_depth()

    view_of = np.zeros(n, dtype=np.int64)
    chunk_parent = [np.full(1, -1, dtype=np.int64)]
    chunk_token = [node_token[:1].copy()]
    chunk_depth = [np.zeros(1, dtype=np.int64)]
    n_rows = 1
    for level in range(1, len(lstart) - 1):
        rows = ids[lstart[level]:lstart[level + 1]]
        keys = view_of[parent[rows]] * n_tokens + node_token[rows]
        uniq, inverse = np.unique(keys, return_inverse=True)
        view_of[rows] = n_rows + inverse
        chunk_parent.append(uniq // n_tokens)
        chunk_token.append(uniq % n_tokens)
        chunk_depth.append(np.full(uniq.shape[0], level, dtype=np.int64))
        n_rows += uniq.shape[0]

    row_parent = np.concatenate(chunk_parent)
    row_token = np.concatenate(chunk_token)
    row_depth = np.concatenate(chunk_depth)
    row_frame = np.empty(n_rows, dtype=np.int64)
    row_frame[0] = col.frame_id[0]
    creation = np.zeros(n_rows, dtype=np.int64)
    if n > 1:
        # Creation replay: the object DFS creates a view row the first
        # time any contributor is scanned from its (visited) parent, so
        # the rank is (parent's visit position, contributor id).
        visit = _cct_creation_positions(col)
        body = np.arange(1, n, dtype=np.int64)
        rank = visit[parent[1:]] * n + body
        by_rank = np.argsort(rank, kind="stable")
        rows_by_rank = view_of[1:][by_rank]
        uniq_rows, first = np.unique(rows_by_rank, return_index=True)
        creators = body[by_rank[first]]
        row_frame[uniq_rows] = col.frame_id[creators]
        creation[uniq_rows] = rank[by_rank[first]]

    remap, row_parent, row_depth, row_token, row_frame = _renumber(
        row_parent, row_depth, row_token, row_frame, creation)
    view_of = remap[view_of]

    exclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    np.add.at(exclusive, view_of, col.values)
    inclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    np.add.at(inclusive, view_of, col.inclusive())
    written = np.zeros((n_rows, n_metrics), dtype=np.int64)
    np.add.at(written, view_of, col.present.astype(np.int64))

    source_ids, source_start = _grouped_csr(view_of, n_rows)
    cvt = ColumnarViewTree(
        parent=row_parent, depth=row_depth, token=row_token,
        frame_id=row_frame, frames=col.frames, merge_keys=merge_keys,
        shape="top_down",
        inclusive=inclusive,
        incl_present=np.ones((n_rows, n_metrics), dtype=bool),
        exclusive=exclusive, excl_present=written > 0,
        row_sources=_CCTSources(profile, col, source_ids, source_start))
    return ViewTree.columnar_backed(profile.schema.copy(), "top_down", cvt)


def build_bottom_up(profile, col) -> ViewTree:
    """Vectorized bottom-up view build: array gather along parent chains.

    Every CCT context with metrics becomes a *lane*; each iteration all
    lanes take one step up their parent chain at once, and ``np.unique``
    over (previous-view-row, merge-token) pairs merges the reversed
    paths level by level.
    """
    np = _np
    n_metrics = col.n_metrics
    frame_token, merge_keys = _merge_tokens(col.frames)
    n_tokens = max(len(merge_keys), 1)
    node_token = frame_token[col.frame_id]
    pre = col.preorder_positions()
    depth = col.depth
    parent = col.parent

    contributors = np.flatnonzero(col.present.any(axis=1))
    contributors = contributors[np.argsort(pre[contributors], kind="stable")]
    max_level = int(depth[contributors].max()) + 2 if contributors.size else 2

    chunk_parent = [np.full(1, -1, dtype=np.int64)]
    chunk_token = [node_token[:1].copy()]
    chunk_depth = [np.zeros(1, dtype=np.int64)]
    chunk_frame = [col.frame_id[:1].copy()]
    chunk_creation = [np.zeros(1, dtype=np.int64)]
    incl_targets = []          # (view rows, contributing cct ids) per level
    excl_targets = None
    src_rows = []
    src_ids = []
    n_rows = 1

    deep = depth[contributors] >= 1
    cursor = contributors[deep]          # the caller named at this level
    lane_contrib = cursor.copy()         # the contributing hot context
    lane_prev = np.zeros(cursor.shape[0], dtype=np.int64)
    level = 0
    while cursor.size:
        level += 1
        keys = lane_prev * n_tokens + node_token[cursor]
        uniq, first, inverse = np.unique(keys, return_index=True,
                                         return_inverse=True)
        rows = n_rows + inverse
        chunk_parent.append(uniq // n_tokens)
        chunk_token.append(uniq % n_tokens)
        chunk_depth.append(np.full(uniq.shape[0], level, dtype=np.int64))
        chunk_frame.append(col.frame_id[cursor[first]])
        # Lanes stay sorted by contributor pre-order, so the first lane
        # holding a key is the row's creator; its rank interleaves whole
        # reversed paths per contributor, like the object loop.
        chunk_creation.append(pre[lane_contrib[first]] * max_level + level)
        incl_targets.append((rows, lane_contrib))
        if level == 1:
            excl_targets = (rows, lane_contrib)
        src_rows.append(rows)
        src_ids.append(cursor)
        n_rows += uniq.shape[0]
        step = parent[cursor]
        keep = depth[step] >= 1
        cursor = step[keep]
        lane_contrib = lane_contrib[keep]
        lane_prev = rows[keep]

    remap, row_parent, row_depth, row_token, row_frame = _renumber(
        np.concatenate(chunk_parent), np.concatenate(chunk_depth),
        np.concatenate(chunk_token), np.concatenate(chunk_frame),
        np.concatenate(chunk_creation))

    inclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    written = np.zeros((n_rows, n_metrics), dtype=np.int64)
    exclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    excl_written = np.zeros((n_rows, n_metrics), dtype=np.int64)
    present_int = col.present.astype(np.int64)
    if contributors.size:
        root_rows = np.zeros(contributors.shape[0], dtype=np.int64)
        np.add.at(inclusive, root_rows, col.values[contributors])
        np.add.at(written, root_rows, present_int[contributors])
    for rows, contribs in incl_targets:
        target = remap[rows]
        np.add.at(inclusive, target, col.values[contribs])
        np.add.at(written, target, present_int[contribs])
    if excl_targets is not None:
        rows, contribs = excl_targets
        target = remap[rows]
        np.add.at(exclusive, target, col.values[contribs])
        np.add.at(excl_written, target, present_int[contribs])

    if src_rows:
        all_rows = remap[np.concatenate(src_rows)]
        all_ids = np.concatenate(src_ids)
        order, start = _grouped_csr(all_rows, n_rows)
        provider = _CCTSources(profile, col, all_ids[order], start)
    else:
        provider = None
    cvt = ColumnarViewTree(
        parent=row_parent, depth=row_depth, token=row_token,
        frame_id=row_frame, frames=col.frames, merge_keys=merge_keys,
        shape="bottom_up",
        inclusive=inclusive, incl_present=written > 0,
        exclusive=exclusive, excl_present=excl_written > 0,
        row_sources=provider)
    return ViewTree.columnar_backed(profile.schema.copy(), "bottom_up", cvt)


def build_flat(profile, col) -> ViewTree:
    """Vectorized flat view build: one grouped scatter-add per level.

    The three grouping levels (module / file / function) are token maps
    over the frame table; rows fall out of ``np.unique`` over tokens, and
    the recursion-aware "outermost occurrence" test is a segmented
    running-max of subtree reach over pre-order, per function group.
    """
    np = _np
    n = col.n_nodes
    n_metrics = col.n_metrics
    frames = list(col.frames)
    merge_keys: List[MergeKey] = []
    token_of: Dict[Tuple[int, MergeKey], int] = {}
    token_frame: List[int] = []   # representative frame; -1 = first node

    def token_for(level_tag: int, key: MergeKey, frame_index: int) -> int:
        token = token_of.get((level_tag, key))
        if token is None:
            token = len(merge_keys)
            token_of[(level_tag, key)] = token
            merge_keys.append(key)
            token_frame.append(frame_index)
        return token

    n_entries = len(frames)
    module_token = np.empty(n_entries, dtype=np.int64)
    file_token = np.empty(n_entries, dtype=np.int64)
    func_token = np.empty(n_entries, dtype=np.int64)
    for index in range(n_entries):
        frame = frames[index]
        module_frame = intern_frame(frame.module or "<unknown module>",
                                    module=frame.module,
                                    kind=FrameKind.BASIC_BLOCK)
        mkey = module_frame.merge_key()
        token = token_of.get((1, mkey))
        if token is None:
            frames.append(module_frame)
            token = token_for(1, mkey, len(frames) - 1)
        module_token[index] = token
        file_frame = intern_frame(frame.file or "<unknown file>",
                                  file=frame.file, module=frame.module,
                                  kind=FrameKind.BASIC_BLOCK)
        fkey = file_frame.merge_key()
        token = token_of.get((2, fkey))
        if token is None:
            frames.append(file_frame)
            token = token_for(2, fkey, len(frames) - 1)
        file_token[index] = token
        func_token[index] = token_for(3, frame.merge_key(), -1)

    # Root token: the object tree keys nothing off the root, but the
    # columnar facade still needs a slot for it.
    root_token = token_for(0, frames[col.frame_id[0]].merge_key()
                           if n else (), int(col.frame_id[0]) if n else -1)

    nodes_pre = col.preorder_ids()[1:] if n > 1 else \
        np.empty(0, dtype=np.int64)
    node_frames = col.frame_id[nodes_pre]
    node_module = module_token[node_frames]
    node_file = file_token[node_frames]
    node_func = func_token[node_frames]

    mod_uniq, mod_first, mod_inv = np.unique(node_module, return_index=True,
                                             return_inverse=True)
    file_uniq, file_first, file_inv = np.unique(node_file, return_index=True,
                                                return_inverse=True)
    func_uniq, func_first, func_inv = np.unique(node_func, return_index=True,
                                                return_inverse=True)
    n_mod = mod_uniq.shape[0]
    n_file = file_uniq.shape[0]
    n_func = func_uniq.shape[0]
    n_rows = 1 + n_mod + n_file + n_func
    mod_row = 1 + mod_inv
    file_row = 1 + n_mod + file_inv
    func_row = 1 + n_mod + n_file + func_inv

    row_parent = np.empty(n_rows, dtype=np.int64)
    row_token = np.empty(n_rows, dtype=np.int64)
    row_depth = np.empty(n_rows, dtype=np.int64)
    row_frame = np.empty(n_rows, dtype=np.int64)
    creation = np.zeros(n_rows, dtype=np.int64)
    row_parent[0] = -1
    row_token[0] = root_token
    row_depth[0] = 0
    row_frame[0] = col.frame_id[0] if n else 0
    token_frame_arr = np.asarray(token_frame, dtype=np.int64)
    mod_slice = slice(1, 1 + n_mod)
    row_parent[mod_slice] = 0
    row_token[mod_slice] = mod_uniq
    row_depth[mod_slice] = 1
    row_frame[mod_slice] = token_frame_arr[mod_uniq]
    creation[mod_slice] = mod_first * 3
    file_slice = slice(1 + n_mod, 1 + n_mod + n_file)
    row_parent[file_slice] = 1 + mod_inv[file_first]
    row_token[file_slice] = file_uniq
    row_depth[file_slice] = 2
    row_frame[file_slice] = token_frame_arr[file_uniq]
    creation[file_slice] = file_first * 3 + 1
    func_slice = slice(1 + n_mod + n_file, n_rows)
    row_parent[func_slice] = 1 + n_mod + file_inv[func_first]
    row_token[func_slice] = func_uniq
    row_depth[func_slice] = 3
    row_frame[func_slice] = node_frames[func_first]
    creation[func_slice] = func_first * 3 + 2

    remap, row_parent, row_depth, row_token, row_frame = _renumber(
        row_parent, row_depth, row_token, row_frame, creation)
    mod_row = remap[mod_row]
    file_row = remap[file_row]
    func_row = remap[func_row]

    values = col.values[nodes_pre]
    present_int = col.present[nodes_pre].astype(np.int64)
    exclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    excl_written = np.zeros((n_rows, n_metrics), dtype=np.int64)
    inclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    incl_written = np.zeros((n_rows, n_metrics), dtype=np.int64)
    incl_full = np.zeros(n_rows, dtype=bool)
    if nodes_pre.size:
        root_rows = np.zeros(nodes_pre.shape[0], dtype=np.int64)
        for target in (root_rows, mod_row, file_row, func_row):
            np.add.at(exclusive, target, values)
            np.add.at(excl_written, target, present_int)
        for target in (root_rows, mod_row, file_row):
            np.add.at(inclusive, target, values)
            np.add.at(incl_written, target, present_int)
        # Outermost test: within each function group (pre-order sorted),
        # a node is outermost iff no earlier group member's subtree
        # reaches it — a segmented exclusive running-max of (pre + size).
        pre_pos = np.arange(1, n, dtype=np.int64)
        reach = pre_pos + col.subtree_sizes()[nodes_pre] - 1
        grouped = np.lexsort((pre_pos, node_func))
        group = node_func[grouped]
        running = np.maximum.accumulate(reach[grouped]
                                        + group * np.int64(n + 1))
        shifted = np.empty_like(running)
        shifted[0] = -1
        shifted[1:] = running[:-1]
        starts = np.empty(group.shape[0], dtype=bool)
        starts[0] = True
        starts[1:] = group[1:] != group[:-1]
        shifted[starts] = -1
        outer_sorted = (shifted - group * np.int64(n + 1)) < pre_pos[grouped]
        outer = np.empty(group.shape[0], dtype=bool)
        outer[grouped] = outer_sorted
        np.add.at(inclusive, func_row[outer],
                  col.inclusive()[nodes_pre[outer]])
        incl_full[func_row[outer]] = True

    incl_present = incl_written > 0
    incl_present[incl_full] = True
    if nodes_pre.size:
        order, start = _grouped_csr(func_row, n_rows)
        provider = _CCTSources(profile, col, nodes_pre[order], start)
    else:
        provider = None
    cvt = ColumnarViewTree(
        parent=row_parent, depth=row_depth, token=row_token,
        frame_id=row_frame, frames=frames, merge_keys=merge_keys,
        shape="flat",
        inclusive=inclusive, incl_present=incl_present,
        exclusive=exclusive, excl_present=excl_written > 0,
        row_sources=provider)
    return ViewTree.columnar_backed(profile.schema.copy(), "flat", cvt)


# ---------------------------------------------------------------------------
# merge / diff over aligned columnar view rows
# ---------------------------------------------------------------------------

class _UnionRows:
    """Aligned union of several columnar view trees' rows."""

    __slots__ = ("parent", "depth", "token", "frame_id", "frames",
                 "merge_keys", "row_of", "visit", "max_rank")

    def __init__(self, parent, depth, token, frame_id, frames, merge_keys,
                 row_of, visit, max_rank) -> None:
        self.parent = parent
        self.depth = depth
        self.token = token
        self.frame_id = frame_id
        self.frames = frames
        self.merge_keys = merge_keys
        #: Per input tree: result row per input row.
        self.row_of = row_of
        #: Per input tree: creation-DFS visit position per input row.
        self.visit = visit
        self.max_rank = max_rank

    @property
    def n_rows(self) -> int:
        return int(self.parent.shape[0])


def _union_rows(trees: Sequence[ColumnarViewTree]) -> _UnionRows:
    """Align rows of several view trees on merge-key paths.

    The result row set is the union of the input trees' merge-key paths,
    numbered in the order the object merge loop would create the nodes:
    all of tree 0's DFS first, then tree 1's unseen paths, and so on.
    """
    np = _np
    token_union: Dict[MergeKey, int] = {}
    merge_keys: List[MergeKey] = []
    union_tok = []
    for tree in trees:
        local = np.empty(len(tree.merge_keys), dtype=np.int64)
        for i, key in enumerate(tree.merge_keys):
            token = token_union.get(key)
            if token is None:
                token = len(merge_keys)
                token_union[key] = token
                merge_keys.append(key)
            local[i] = token
        union_tok.append(local)
    n_tokens = max(len(merge_keys), 1)

    frames: List[Frame] = []
    frame_off = []
    for tree in trees:
        frame_off.append(len(frames))
        frames.extend(tree.frames)

    visit = [tree.creation_visit_positions() for tree in trees]
    max_rank = max(tree.n_rows for tree in trees) + 1
    row_of = [np.zeros(tree.n_rows, dtype=np.int64) for tree in trees]
    levels = [tree.depth_groups() for tree in trees]
    max_depth = max(len(start) - 2 for _, start in levels)

    chunk_parent = [np.full(1, -1, dtype=np.int64)]
    chunk_token = [np.asarray([union_tok[0][trees[0].token[0]]],
                              dtype=np.int64)]
    chunk_depth = [np.zeros(1, dtype=np.int64)]
    chunk_frame = [np.asarray([frame_off[0] + trees[0].frame_id[0]],
                              dtype=np.int64)]
    chunk_creation = [np.zeros(1, dtype=np.int64)]
    n_rows = 1
    for level in range(1, max_depth + 1):
        key_parts = []
        rank_parts = []
        frame_parts = []
        slices = []
        for index, tree in enumerate(trees):
            ids, start = levels[index]
            if level >= len(start) - 1:
                continue
            rows = ids[start[level]:start[level + 1]]
            if not rows.shape[0]:
                continue
            parents = tree.parent[rows]
            key_parts.append(row_of[index][parents] * n_tokens
                             + union_tok[index][tree.token[rows]])
            rank_parts.append((index * max_rank + visit[index][parents])
                              * max_rank + rows)
            frame_parts.append(frame_off[index] + tree.frame_id[rows])
            slices.append((index, rows))
        if not key_parts:
            continue
        keys = np.concatenate(key_parts)
        ranks = np.concatenate(rank_parts)
        frame_ids = np.concatenate(frame_parts)
        uniq, inverse = np.unique(keys, return_inverse=True)
        result_rows = n_rows + inverse
        cursor = 0
        for index, rows in slices:
            row_of[index][rows] = result_rows[cursor:cursor + rows.shape[0]]
            cursor += rows.shape[0]
        by_rank = np.argsort(ranks, kind="stable")
        _, first = np.unique(inverse[by_rank], return_index=True)
        chunk_parent.append(uniq // n_tokens)
        chunk_token.append(uniq % n_tokens)
        chunk_depth.append(np.full(uniq.shape[0], level, dtype=np.int64))
        chunk_frame.append(frame_ids[by_rank[first]])
        chunk_creation.append(ranks[by_rank[first]])
        n_rows += uniq.shape[0]

    remap, parent, depth, token, frame_id = _renumber(
        np.concatenate(chunk_parent), np.concatenate(chunk_depth),
        np.concatenate(chunk_token), np.concatenate(chunk_frame),
        np.concatenate(chunk_creation))
    row_of = [remap[mapping] for mapping in row_of]
    return _UnionRows(parent, depth, token, frame_id, frames, merge_keys,
                      row_of, visit, max_rank)


def _union_sources(trees, union: _UnionRows):
    """Per-result-row (input-tree, input-row) refs in contribution order."""
    np = _np
    parts_res = []
    parts_tree = []
    parts_row = []
    parts_rank = []
    for index, tree in enumerate(trees):
        count = tree.n_rows
        parts_res.append(union.row_of[index])
        parts_tree.append(np.full(count, index, dtype=np.int64))
        parts_row.append(np.arange(count, dtype=np.int64))
        parts_rank.append(index * union.max_rank + union.visit[index])
    res = np.concatenate(parts_res)
    rank = np.concatenate(parts_rank)
    order = np.lexsort((rank, res))
    start = np.zeros(union.n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(res, minlength=union.n_rows), out=start[1:])
    return _UnionSources(list(trees),
                         np.concatenate(parts_tree)[order],
                         np.concatenate(parts_row)[order], start)


#: Operators the vectorized combine handles; anything else falls back to
#: the object path.
_COMBINABLE = frozenset((Aggregation.SUM, Aggregation.MIN, Aggregation.MAX,
                         Aggregation.MEAN, Aggregation.LAST))


def merge_columnar(trees: Sequence[ColumnarViewTree],
                   remaps: Sequence[Sequence[int]],
                   operators: Sequence[Aggregation],
                   schema, shape: str,
                   base_metrics: int) -> ViewTree:
    """Vectorized ``aggregate.merge_trees`` over aligned columnar rows.

    One histogram tensor gather-scatter per input tree replaces the
    per-node dict merging; the statistic columns then fall out of whole-
    tensor reductions (``sum``/``min``/``max`` along the series axis).
    """
    np = _np
    union = _union_rows(trees)
    n_rows = union.n_rows
    n_trees = len(trees)
    n_ops = len(operators)
    ops = list(operators)
    sum_position = ops.index(Aggregation.SUM) if Aggregation.SUM in ops else 0

    hist = np.zeros((n_rows, base_metrics, n_trees), dtype=np.float64)
    hist_count = np.zeros((n_rows, base_metrics), dtype=np.int64)
    hist_first = np.full((n_rows, base_metrics), np.iinfo(np.int64).max,
                         dtype=np.int64)
    exclusive = np.zeros((n_rows, base_metrics * n_ops), dtype=np.float64)
    excl_count = np.zeros((n_rows, base_metrics * n_ops), dtype=np.int64)
    max_metrics = max(base_metrics, 1)
    for index, tree in enumerate(trees):
        remap = np.asarray(remaps[index], dtype=np.int64)
        rows, cols = np.nonzero(tree.incl_present)
        res = union.row_of[index][rows]
        unified = remap[cols]
        hist[res, unified, index] = tree.inclusive[rows, cols]
        hist_count[res, unified] += 1
        rank = ((index * union.max_rank + union.visit[index][rows])
                * max_metrics + cols)
        np.minimum.at(hist_first, (res, unified), rank)
        rows, cols = np.nonzero(tree.excl_present)
        res = union.row_of[index][rows]
        stat = remap[cols] * n_ops + sum_position
        exclusive[res, stat] += tree.exclusive[rows, cols]
        excl_count[res, stat] += 1
    hist_present = hist_count > 0

    inclusive = np.zeros((n_rows, base_metrics * n_ops), dtype=np.float64)
    incl_present = np.zeros((n_rows, base_metrics * n_ops), dtype=bool)
    for position, op in enumerate(ops):
        if op is Aggregation.SUM:
            stat = hist.sum(axis=2)
        elif op is Aggregation.MIN:
            stat = hist.min(axis=2) if n_trees else hist.sum(axis=2)
        elif op is Aggregation.MAX:
            stat = hist.max(axis=2) if n_trees else hist.sum(axis=2)
        elif op is Aggregation.MEAN:
            stat = hist.sum(axis=2) / max(n_trees, 1)
        else:  # LAST
            stat = hist[:, :, -1] if n_trees else hist.sum(axis=2)
        inclusive[:, position::n_ops] = stat
        incl_present[:, position::n_ops] = hist_present

    cvt = ColumnarViewTree(
        parent=union.parent, depth=union.depth, token=union.token,
        frame_id=union.frame_id, frames=union.frames,
        merge_keys=union.merge_keys, shape=shape,
        inclusive=inclusive, incl_present=incl_present,
        exclusive=exclusive, excl_present=excl_count > 0,
        hist=hist, hist_present=hist_present, hist_first=hist_first,
        n_series=n_trees, row_sources=_union_sources(trees, union))
    return ViewTree.columnar_backed(schema, shape, cvt)


def diff_columnar(base: ColumnarViewTree, treatment: ColumnarViewTree,
                  base_remap: Sequence[int], treat_remap: Sequence[int],
                  schema, shape: str, metric_index: int,
                  tolerance: float) -> ViewTree:
    """Vectorized ``diff.diff_trees`` over two aligned columnar trees."""
    np = _np
    union = _union_rows([base, treatment])
    n_rows = union.n_rows
    n_metrics = len(schema)

    def scatter(tree, mapping, remap_cols, matrix, presence, count, attr):
        rows, cols = np.nonzero(presence)
        res = mapping[rows]
        unified = remap_cols[cols]
        matrix[res, unified] += getattr(tree, attr)[rows, cols]
        count[res, unified] += 1

    base_cols = np.asarray(base_remap, dtype=np.int64)
    treat_cols = np.asarray(treat_remap, dtype=np.int64)
    baseline = np.zeros((n_rows, n_metrics), dtype=np.float64)
    base_count = np.zeros((n_rows, n_metrics), dtype=np.int64)
    scatter(base, union.row_of[0], base_cols, baseline, base.incl_present,
            base_count, "inclusive")
    inclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    incl_count = np.zeros((n_rows, n_metrics), dtype=np.int64)
    scatter(treatment, union.row_of[1], treat_cols, inclusive,
            treatment.incl_present, incl_count, "inclusive")
    exclusive = np.zeros((n_rows, n_metrics), dtype=np.float64)
    excl_count = np.zeros((n_rows, n_metrics), dtype=np.int64)
    scatter(treatment, union.row_of[1], treat_cols, exclusive,
            treatment.excl_present, excl_count, "exclusive")

    in_base = np.zeros(n_rows, dtype=bool)
    in_base[union.row_of[0]] = True
    in_treat = np.zeros(n_rows, dtype=bool)
    in_treat[union.row_of[1]] = True
    before = baseline[:, metric_index]
    after = inclusive[:, metric_index]
    codes = np.full(n_rows, _TAG_CODE["="], dtype=np.int8)
    codes[after > before + tolerance] = _TAG_CODE["+"]
    codes[after < before - tolerance] = _TAG_CODE["-"]
    codes[in_base & ~in_treat] = _TAG_CODE["D"]
    codes[in_treat & ~in_base] = _TAG_CODE["A"]
    codes[0] = 0

    cvt = ColumnarViewTree(
        parent=union.parent, depth=union.depth, token=union.token,
        frame_id=union.frame_id, frames=union.frames,
        merge_keys=union.merge_keys, shape=shape,
        inclusive=inclusive, incl_present=incl_count > 0,
        exclusive=exclusive, excl_present=excl_count > 0,
        baseline=baseline, base_present=base_count > 0, tag_codes=codes,
        row_sources=_union_sources([base, treatment], union))
    return ViewTree.columnar_backed(schema, shape, cvt)
