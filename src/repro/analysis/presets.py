"""A library of predefined derived-metric formulas (§V-B examples).

The paper's metric-computation callbacks let users "compute cycles per
instruction, cache misses per thousand instructions, and many others via
specifying the corresponding formulae".  This module packages the common
ones so a viewer can offer them as one-click derivations: each preset
declares the metrics it needs and applies itself only when they exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.metric import Aggregation
from .formula import derive
from .viewtree import ViewTree


@dataclass(frozen=True)
class Preset:
    """One predefined derived metric."""

    name: str
    formula: str
    requires: Tuple[str, ...]
    unit: str = ""
    description: str = ""

    def applicable(self, tree: ViewTree) -> bool:
        """Whether the view carries every metric the formula references."""
        return all(metric in tree.schema for metric in self.requires)

    def apply(self, tree: ViewTree) -> int:
        """Derive the preset's column; returns its index."""
        return derive(tree, self.name, self.formula, unit=self.unit,
                      description=self.description or self.formula)


#: The standard catalogue, keyed by preset name.
PRESETS: Dict[str, Preset] = {preset.name: preset for preset in (
    Preset(name="cpi",
           formula="cycles / instructions",
           requires=("cycles", "instructions"),
           description="cycles per instruction"),
    Preset(name="ipc",
           formula="instructions / cycles",
           requires=("cycles", "instructions"),
           description="instructions per cycle"),
    Preset(name="mpki",
           formula="1000 * cache_misses / instructions",
           requires=("cache_misses", "instructions"),
           description="cache misses per thousand instructions"),
    Preset(name="miss_ratio",
           formula="cache_misses / cache_accesses",
           requires=("cache_misses", "cache_accesses"),
           description="cache miss ratio"),
    Preset(name="branch_mpki",
           formula="1000 * branch_misses / instructions",
           requires=("branch_misses", "instructions"),
           description="branch mispredictions per thousand instructions"),
    Preset(name="alloc_rate",
           formula="alloc_bytes / (cpu / 1000000000)",
           requires=("alloc_bytes", "cpu"),
           unit="bytes",
           description="allocation rate (bytes per cpu-second)"),
    Preset(name="time_share",
           formula="100 * cpu / `total:cpu`",
           requires=("cpu", "total:cpu"),
           unit="percent",
           description="share of total cpu time"),
)}


def applicable_presets(tree: ViewTree) -> List[Preset]:
    """The catalogue entries this view can apply."""
    return [preset for preset in PRESETS.values()
            if preset.applicable(tree)]


def apply_preset(tree: ViewTree, name: str) -> int:
    """Apply one preset by name; raises KeyError for unknown names."""
    try:
        preset = PRESETS[name]
    except KeyError:
        raise KeyError("unknown preset %r (have: %s)"
                       % (name, ", ".join(sorted(PRESETS)))) from None
    return preset.apply(tree)


def apply_all(tree: ViewTree) -> List[str]:
    """Apply every applicable preset; returns the names applied."""
    applied = []
    for preset in applicable_presets(tree):
        preset.apply(tree)
        applied.append(preset.name)
    return applied
