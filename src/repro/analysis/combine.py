"""Combining profiles from *different tools* into one unified profile.

§VII-C2's HPC case study leans on EasyView's ability to put HPCToolkit's
hotspot profile and DrCCTProf's locality profile side by side: "these two
tools have their own GUIs ... which cannot easily combine their profiles
in a unified view for easy analysis."

:func:`combine` merges N profiles — typically from different profilers
over the same program — into one: calling contexts merge on the
cross-tool identity (name + file + module, line-insensitive like the
diff/aggregate operations), metric schemas concatenate with tool-prefixed
names on collision, and monitoring points carry over with their contexts
re-anchored.  The result is an ordinary profile: every view, the
correlated panes, and the leak detector all apply to the union.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cct import CCTNode
from ..core.metric import Metric
from ..core.monitor import MonitoringPoint
from ..core.profile import Profile, ProfileMeta
from ..errors import AnalysisError


def combine(profiles: Sequence[Profile],
            tool_names: Optional[Sequence[str]] = None) -> Profile:
    """Merge profiles from different tools into one unified profile.

    ``tool_names`` labels each input (defaults to each profile's own
    ``meta.tool``); when two inputs declare a metric with the same name
    but different descriptors, the later one is disambiguated as
    ``<tool>:<metric>``.
    """
    if not profiles:
        raise AnalysisError("cannot combine zero profiles")
    if tool_names is not None and len(tool_names) != len(profiles):
        raise AnalysisError("tool_names must match profiles in length")

    labels = list(tool_names) if tool_names is not None else [
        profile.meta.tool or ("tool%d" % i)
        for i, profile in enumerate(profiles)]

    merged = Profile(meta=ProfileMeta(
        tool="+".join(dict.fromkeys(labels)),
        attributes={"combined_from": ", ".join(labels)}))

    # Column remapping per input profile.
    remaps: List[List[int]] = []
    for label, profile in zip(labels, profiles):
        remap: List[int] = []
        for metric in profile.schema:
            existing = merged.schema.get(metric.name)
            if existing is not None and merged.schema[existing] != metric:
                metric = Metric(name="%s:%s" % (label, metric.name),
                                unit=metric.unit,
                                description=metric.description,
                                aggregation=metric.aggregation)
            remap.append(merged.schema.add(metric))
        remaps.append(remap)

    # Cross-tool identity: merge on (name, file, module) so line-number
    # differences between tools do not split contexts; the first-seen
    # frame's attribution wins.  The index keeps merging linear.
    merge_index: Dict[Tuple[int, Tuple], CCTNode] = {}
    for profile, remap in zip(profiles, remaps):
        node_map: Dict[int, CCTNode] = {id(profile.root): merged.root}
        stack = [(profile.root, merged.root)]
        while stack:
            src, dst = stack.pop()
            for index, value in src.metrics.items():
                dst.add_value(remap[index], value)
            for child in src.children.values():
                key = (id(dst), child.frame.merge_key())
                target = merge_index.get(key)
                if target is None:
                    target = dst.child(child.frame)
                    merge_index[key] = target
                node_map[id(child)] = target
                stack.append((child, target))
        for point in profile.points:
            merged.points.append(MonitoringPoint(
                kind=point.kind,
                contexts=[node_map[id(ctx)] for ctx in point.contexts],
                values={remap[index]: value
                        for index, value in point.values.items()},
                sequence=point.sequence))
    merged.cct.clear_inclusive_cache()
    return merged
