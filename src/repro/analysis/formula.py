"""A small expression language for derived metrics (§V-B).

Users define new metrics with formulas over existing ones::

    derive(tree, "cpi", "cycles / instructions")
    derive(tree, "mpki", "1000 * cache_misses / instructions")
    derive(tree, "mem_scaling", "inclusive.bytes@2 / inclusive.bytes@1")

The grammar (classic recursive descent over a hand-rolled token stream):

    expr     := compare
    compare  := sum ((">" | "<" | ">=" | "<=" | "==" | "!=") sum)?
    sum      := term (("+" | "-") term)*
    term     := unary (("*" | "/" | "%") unary)*
    unary    := ("-" | "+") unary | power
    power    := primary ("^" unary)?            # right-associative
    primary  := NUMBER | IDENT | IDENT "(" args ")" | "(" expr ")"
    args     := expr ("," expr)*

Comparisons evaluate to 1.0/0.0 and pair naturally with ``if``:
``if(cache_misses / instructions > 0.02, cycles, 0)`` keeps a metric only
where the miss rate is pathological.

Identifiers name metrics; dotted/at-suffixed names (``inclusive.bytes@2``)
are resolved by the environment, letting multi-profile views expose
per-profile columns.  Metric names with spaces can be backtick-quoted.
Division by zero evaluates to 0 rather than raising: profiles are full of
contexts where the denominator metric was never measured, and a viewer must
keep rendering.

Built-in functions: ``min``, ``max``, ``abs``, ``sqrt``, ``log``, ``log2``,
``log10``, ``if`` (``if(cond, then, else)`` with nonzero = true).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Union

from ..core.metric import Aggregation, Metric
from ..errors import FormulaError, Span
from .viewtree import ViewTree


class TokenKind(enum.Enum):
    NUMBER = "number"
    IDENT = "ident"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int
    #: One past the last source character of the token (backquoted names
    #: include the quotes, so this can exceed ``position + len(text)``).
    end: int = -1

    def span(self) -> Span:
        end = self.end if self.end >= 0 else self.position + len(self.text)
        return Span(self.position, max(end, self.position + 1))


_OPS = set("+-*/%^")
_COMPARE_OPS = frozenset((">", "<", ">=", "<=", "==", "!="))
_IDENT_EXTRA = set("._@$:")


def tokenize(source: str) -> List[Token]:
    """Split a formula into tokens; raises FormulaError on bad input."""
    tokens: List[Token] = []
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and source[pos + 1].isdigit()):
            start = pos
            seen_dot = False
            seen_exp = False
            while pos < length:
                ch = source[pos]
                if ch.isdigit():
                    pos += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    pos += 1
                elif ch in "eE" and not seen_exp and pos > start:
                    seen_exp = True
                    pos += 1
                    if pos < length and source[pos] in "+-":
                        pos += 1
                else:
                    break
            tokens.append(Token(TokenKind.NUMBER, source[start:pos], start,
                                pos))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] in _IDENT_EXTRA):
                pos += 1
            tokens.append(Token(TokenKind.IDENT, source[start:pos], start,
                                pos))
            continue
        if ch == "`":
            end = source.find("`", pos + 1)
            if end < 0:
                raise FormulaError("unterminated backquoted name at %d" % pos,
                                   span=Span(pos, length))
            tokens.append(Token(TokenKind.IDENT, source[pos + 1:end], pos,
                                end + 1))
            pos = end + 1
            continue
        if ch in "<>!=":
            if pos + 1 < length and source[pos + 1] == "=":
                op = source[pos:pos + 2]
                if op not in _COMPARE_OPS:
                    raise FormulaError("unknown operator %r at %d"
                                       % (op, pos), span=Span(pos, pos + 2))
                tokens.append(Token(TokenKind.OP, op, pos, pos + 2))
                pos += 2
                continue
            if ch in "<>":
                tokens.append(Token(TokenKind.OP, ch, pos, pos + 1))
                pos += 1
                continue
            raise FormulaError("unexpected character %r at position %d"
                               % (ch, pos), span=Span.point(pos))
        if ch in _OPS:
            tokens.append(Token(TokenKind.OP, ch, pos, pos + 1))
            pos += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, ch, pos, pos + 1))
            pos += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ch, pos, pos + 1))
            pos += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenKind.COMMA, ch, pos, pos + 1))
            pos += 1
            continue
        raise FormulaError("unexpected character %r at position %d"
                           % (ch, pos), span=Span.point(pos))
    tokens.append(Token(TokenKind.END, "", length, length))
    return tokens


# -- AST ---------------------------------------------------------------------


#: AST nodes carry the character span of the source text they were parsed
#: from (``None`` only for hand-built nodes), enabling exact error carets
#: and the character-precise diagnostics of :mod:`repro.lint`.


@dataclass(frozen=True)
class Num:
    value: float
    span: Optional[Span] = None


@dataclass(frozen=True)
class Ref:
    name: str
    span: Optional[Span] = None


@dataclass(frozen=True)
class Unary:
    op: str
    operand: "Expr"
    span: Optional[Span] = None


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    span: Optional[Span] = None


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple
    span: Optional[Span] = None


Expr = Union[Num, Ref, Unary, Binary, Call]


def _join(left: Optional[Span], right: Optional[Span]) -> Optional[Span]:
    """The smallest span covering two operand spans (None-tolerant)."""
    if left is None or right is None:
        return left or right
    return Span(left.start, right.end)


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    def parse(self) -> Expr:
        expr = self._expr()
        tok = self._peek()
        if tok.kind is not TokenKind.END:
            raise FormulaError("unexpected %r at position %d in %r"
                               % (tok.text, tok.position, self._source),
                               span=tok.span())
        return expr

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._advance()
        if tok.kind is not kind:
            raise FormulaError("expected %s but found %r at position %d"
                               % (kind.value, tok.text, tok.position),
                               span=tok.span())
        return tok

    def _expr(self) -> Expr:
        left = self._sum()
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.text in _COMPARE_OPS:
            op = self._advance().text
            right = self._sum()
            return Binary(op, left, right, span=_join(left.span, right.span))
        return left

    def _sum(self) -> Expr:
        left = self._term()
        while (self._peek().kind is TokenKind.OP
               and self._peek().text in "+-"):
            op = self._advance().text
            right = self._term()
            left = Binary(op, left, right, span=_join(left.span, right.span))
        return left

    def _term(self) -> Expr:
        left = self._unary()
        while (self._peek().kind is TokenKind.OP
               and self._peek().text in "*/%"):
            op = self._advance().text
            right = self._unary()
            left = Binary(op, left, right, span=_join(left.span, right.span))
        return left

    def _unary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.text in "+-":
            self._advance()
            operand = self._unary()
            return Unary(tok.text, operand,
                         span=_join(tok.span(), operand.span))
        return self._power()

    def _power(self) -> Expr:
        base = self._primary()
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.text == "^":
            self._advance()
            exponent = self._unary()
            return Binary("^", base, exponent,
                          span=_join(base.span, exponent.span))
        return base

    def _primary(self) -> Expr:
        tok = self._advance()
        if tok.kind is TokenKind.NUMBER:
            return Num(float(tok.text), span=tok.span())
        if tok.kind is TokenKind.IDENT:
            if self._peek().kind is TokenKind.LPAREN:
                self._advance()
                args: List[Expr] = []
                if self._peek().kind is not TokenKind.RPAREN:
                    args.append(self._expr())
                    while self._peek().kind is TokenKind.COMMA:
                        self._advance()
                        args.append(self._expr())
                rparen = self._expect(TokenKind.RPAREN)
                return Call(tok.text, tuple(args),
                            span=Span(tok.position, rparen.span().end))
            return Ref(tok.text, span=tok.span())
        if tok.kind is TokenKind.LPAREN:
            expr = self._expr()
            rparen = self._expect(TokenKind.RPAREN)
            return replace(expr, span=Span(tok.position, rparen.span().end))
        raise FormulaError("unexpected %r at position %d"
                           % (tok.text or "end of input", tok.position),
                           span=tok.span())


def parse(source: str) -> Expr:
    """Parse a formula into its AST."""
    return _Parser(tokenize(source), source).parse()


# -- evaluation ---------------------------------------------------------------

_FUNCTIONS: Dict[str, Callable[..., float]] = {
    "min": min,
    "max": max,
    "abs": abs,
    "sqrt": lambda x: math.sqrt(x) if x >= 0 else 0.0,
    "log": lambda x: math.log(x) if x > 0 else 0.0,
    "log2": lambda x: math.log2(x) if x > 0 else 0.0,
    "log10": lambda x: math.log10(x) if x > 0 else 0.0,
    "if": lambda cond, then, other: then if cond else other,
}

_ARITY = {"min": 2, "max": 2, "abs": 1, "sqrt": 1, "log": 1, "log2": 1,
          "log10": 1, "if": 3}


def evaluate(expr: Expr, env: Mapping[str, float]) -> float:
    """Evaluate an AST against a name→value environment.

    Unknown names raise :class:`FormulaError`; division by zero yields 0
    (see module docstring).
    """
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Ref):
        try:
            return float(env[expr.name])
        except KeyError:
            raise FormulaError("unknown metric %r (have: %s)" % (
                expr.name, ", ".join(sorted(env))),
                span=expr.span) from None
    if isinstance(expr, Unary):
        value = evaluate(expr.operand, env)
        return -value if expr.op == "-" else value
    if isinstance(expr, Binary):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right else 0.0
        if expr.op == "%":
            return math.fmod(left, right) if right else 0.0
        if expr.op == "^":
            try:
                return float(left ** right)
            except (OverflowError, ValueError):
                return 0.0
        if expr.op in _COMPARE_OPS:
            result = {
                ">": left > right, "<": left < right,
                ">=": left >= right, "<=": left <= right,
                "==": left == right, "!=": left != right,
            }[expr.op]
            return 1.0 if result else 0.0
        raise FormulaError("unknown operator %r" % expr.op)
    if isinstance(expr, Call):
        fn = _FUNCTIONS.get(expr.name)
        if fn is None:
            raise FormulaError("unknown function %r (have: %s)" % (
                expr.name, ", ".join(sorted(_FUNCTIONS))), span=expr.span)
        expected = _ARITY[expr.name]
        if len(expr.args) != expected:
            raise FormulaError("%s() takes %d arguments, got %d"
                               % (expr.name, expected, len(expr.args)),
                               span=expr.span)
        return float(fn(*(evaluate(arg, env) for arg in expr.args)))
    raise FormulaError("unevaluable node %r" % (expr,))


def evaluate_str(source: str, env: Mapping[str, float]) -> float:
    """Parse and evaluate in one step."""
    return evaluate(parse(source), env)


def derive(tree: ViewTree, name: str, formula: str, unit: str = "",
           description: str = "", inclusive: bool = True,
           aggregation: Aggregation = Aggregation.SUM) -> int:
    """Add a derived metric column to a view tree via a formula.

    The formula is evaluated per node against that node's existing metric
    values (inclusive by default).  Returns the new column index.
    """
    expr = parse(formula)
    names = tree.schema.names()
    index = tree.schema.add(Metric(name=name, unit=unit,
                                   description=description or formula,
                                   aggregation=aggregation))
    for node in tree.nodes():
        table = node.inclusive if inclusive else node.exclusive
        env = {metric_name: table.get(i, 0.0)
               for i, metric_name in enumerate(names)}
        table[index] = evaluate(expr, env)
    # The tree's content changed in place: any engine serving it under its
    # pre-mutation digest must forget it (lazy import — the engine depends
    # on this package).
    from ..engine import invalidate_everywhere
    invalidate_everywhere(tree)
    return index
