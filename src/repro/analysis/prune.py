"""Tree hygiene: recursion collapsing, pruning, and hot-path extraction.

These are the "associated analyses" §V-A(a) couples with tree traversal:
collapsing deep and recursive call paths and pruning insignificant nodes,
which keep large profiles readable and the renderer fast.
All operations work on view trees and return new trees or node lists; the
underlying profile is never mutated.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.frame import FrameKind
from .viewtree import ViewNode, ViewTree


def collapse_recursion(tree: ViewTree) -> ViewTree:
    """Merge self-recursive chains: a child with its parent's identity folds
    into the parent (values and grandchildren move up).

    ``f → f → f → g`` becomes ``f → g``; the folded ``f`` keeps the chain's
    combined exclusive value and the outermost inclusive value.
    """
    result = ViewTree(tree.schema.copy(), shape=tree.shape)
    _copy_collapsed(tree.root, result.root)
    return result


def _copy_collapsed(src: ViewNode, dst: ViewNode) -> None:
    # Iterative: profiles carry call paths deep enough to blow the Python
    # recursion limit (deeply recursive workloads).
    stack = [(src, dst)]
    while stack:
        s, d = stack.pop()
        for index, value in s.exclusive.items():
            d.add_exclusive(index, value)
        if not d.inclusive:
            d.inclusive = dict(s.inclusive)
        d.sources.extend(s.sources)
        d.tag = d.tag or s.tag
        for child in s.children.values():
            if child.frame.merge_key() == d.frame.merge_key():
                # Same function recursing: fold into d itself.
                stack.append((child, d))
            else:
                stack.append((child, d.child(child.frame)))


def prune(tree: ViewTree, metric_index: int = 0,
          min_fraction: float = 0.005,
          other_label: str = "<pruned>") -> ViewTree:
    """Drop subtrees whose inclusive value falls below a fraction of total.

    Pruned siblings are folded into a single ``<pruned>`` placeholder per
    parent so totals remain exact (the flame graph still adds up).
    """
    total = tree.total(metric_index)
    threshold = abs(total) * min_fraction
    result = ViewTree(tree.schema.copy(), shape=tree.shape)
    _copy_pruned(tree.root, result.root, metric_index, threshold, other_label)
    return result


def _copy_pruned(src: ViewNode, dst: ViewNode, metric_index: int,
                 threshold: float, other_label: str) -> None:
    from ..core.frame import intern_frame
    placeholder_frame = intern_frame(other_label, kind=FrameKind.BASIC_BLOCK)
    stack = [(src, dst)]
    while stack:
        s, d = stack.pop()
        d.exclusive = dict(s.exclusive)
        d.inclusive = dict(s.inclusive)
        d.sources = s.sources.copy()
        d.tag = s.tag
        dropped: dict = {}
        for child in s.children.values():
            if abs(child.inclusive.get(metric_index, 0.0)) >= threshold:
                stack.append((child, d.child(child.frame)))
            else:
                for index, value in child.inclusive.items():
                    dropped[index] = dropped.get(index, 0.0) + value
        if dropped:
            placeholder = d.child(placeholder_frame)
            for index, value in dropped.items():
                placeholder.add_inclusive(index, value)
                placeholder.add_exclusive(index, value)


def hot_path(tree: ViewTree, metric_index: int = 0,
             min_fraction: float = 0.5) -> List[ViewNode]:
    """Follow the dominant child while it keeps ``min_fraction`` of its
    parent's inclusive value; returns the path (root excluded).

    This is the classic "hot path" drill-down a viewer offers as a single
    action instead of repeated clicking.
    """
    path: List[ViewNode] = []
    node = tree.root
    while node.children:
        best: Optional[ViewNode] = None
        best_value = 0.0
        for child in node.children.values():
            value = abs(child.inclusive.get(metric_index, 0.0))
            if value > best_value:
                best, best_value = child, value
        parent_value = abs(node.inclusive.get(metric_index, 0.0))
        if best is None or parent_value <= 0:
            break
        if best_value < min_fraction * parent_value:
            break
        path.append(best)
        node = best
    return path


def truncate_depth(tree: ViewTree, max_depth: int) -> ViewTree:
    """Cut the tree below ``max_depth``; cut subtrees collapse into their
    deepest kept ancestor's exclusive value so totals are preserved."""
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    result = ViewTree(tree.schema.copy(), shape=tree.shape)
    _copy_truncated(tree.root, result.root, max_depth)
    return result


def _copy_truncated(src: ViewNode, dst: ViewNode, max_depth: int) -> None:
    stack = [(src, dst, max_depth)]
    while stack:
        s, d, remaining = stack.pop()
        d.exclusive = dict(s.exclusive)
        d.inclusive = dict(s.inclusive)
        d.sources = s.sources.copy()
        d.tag = s.tag
        if remaining == 0:
            # Fold the entire remaining subtree into this node's exclusive
            # cost so totals stay exact.
            d.exclusive = dict(s.inclusive)
            d.children = {}
            continue
        for child in s.children.values():
            stack.append((child, d.child(child.frame), remaining - 1))
