"""Time-range analysis over snapshot series (FlameScope-style).

FlameScope — one of the visualizers §II surveys — renders a profile's
time dimension as a strip and lets the user select a range to see the
flame graph of just that window.  EasyView's snapshot points carry the
same time dimension (sequence numbers), so the equivalent operations are:

* :func:`activity_series` — the per-snapshot whole-program totals (the
  strip's heights);
* :func:`range_profile` — a sub-profile from the captures inside a
  selected window, viewable with every existing transform;
* :func:`range_diff` — the differential view of two windows of the same
  run, the "what changed after minute 3?" question;
* :func:`find_phases` — segment the series into phases by change-point
  detection on the activity totals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.monitor import MonitoringPoint, PointKind
from ..core.profile import Profile, ProfileMeta
from ..errors import AnalysisError
from .aggregate import snapshot_totals
from .viewtree import ViewTree


def activity_series(profile: Profile, metric: str) -> List[float]:
    """Whole-program value per snapshot (the timeline strip heights)."""
    return snapshot_totals(profile, metric)


def _check_window(profile: Profile, start: int, end: int) -> List[int]:
    sequences = profile.snapshot_sequences()
    if not sequences:
        raise AnalysisError("profile has no snapshot series")
    if start > end:
        raise AnalysisError("window start %d is after end %d" % (start, end))
    selected = [seq for seq in sequences if start <= seq <= end]
    if not selected:
        raise AnalysisError(
            "window [%d, %d] selects no snapshots (have %d..%d)"
            % (start, end, sequences[0], sequences[-1]))
    return selected


def range_profile(profile: Profile, start: int, end: int,
                  combine: str = "mean") -> Profile:
    """A sub-profile from the snapshots in ``[start, end]`` (inclusive).

    Each context's value inside the window combines per ``combine``:
    ``"mean"`` (live-value semantics, the default for heap series),
    ``"sum"`` (event semantics), or ``"last"`` (the window's final state).
    The result is an ordinary profile — every view applies.
    """
    if combine not in ("mean", "sum", "last"):
        raise AnalysisError("combine must be mean, sum, or last")
    selected = set(_check_window(profile, start, end))

    sub = Profile(schema=profile.schema.copy(),
                  meta=ProfileMeta(tool=profile.meta.tool,
                                   attributes=dict(
                                       profile.meta.attributes,
                                       window="%d..%d" % (start, end))))
    # context-id → {metric: [values in window]}, keyed per sequence.
    per_context: Dict[int, Tuple[object, Dict[int, Dict[int, float]]]] = {}
    for point in profile.points:
        if point.sequence not in selected:
            continue
        node, table = per_context.setdefault(
            id(point.primary()), (point.primary(), {}))
        by_seq = table
        for index, value in point.values.items():
            by_seq.setdefault(index, {})
            by_seq[index][point.sequence] = (
                by_seq[index].get(point.sequence, 0.0) + value)

    for node, table in per_context.values():
        path = node.call_path()
        target = sub.cct.add_path(path)
        for index, by_seq in table.items():
            values = list(by_seq.values())
            if combine == "sum":
                combined = float(sum(values))
            elif combine == "last":
                combined = by_seq[max(by_seq)]
            else:
                combined = float(sum(values)) / len(selected)
            target.add_value(index, combined)
    return sub


def range_diff(profile: Profile, first: Tuple[int, int],
               second: Tuple[int, int], shape: str = "top_down",
               combine: str = "mean") -> ViewTree:
    """Differential view of two windows of the same run."""
    from .diff import diff_profiles
    baseline = range_profile(profile, *first, combine=combine)
    treatment = range_profile(profile, *second, combine=combine)
    return diff_profiles(baseline, treatment, shape=shape)


def find_phases(profile: Profile, metric: str,
                sensitivity: float = 0.25,
                min_length: int = 2) -> List[Tuple[int, int]]:
    """Segment the snapshot series into phases.

    A new phase starts where the activity total jumps by more than
    ``sensitivity`` × the series' overall range.  Returns (start, end)
    sequence windows covering the whole series.
    """
    totals = activity_series(profile, metric)
    sequences = profile.snapshot_sequences()
    if not totals:
        return []
    values = np.asarray(totals)
    span = float(values.max() - values.min())
    if span == 0.0:
        return [(sequences[0], sequences[-1])]
    threshold = span * sensitivity
    boundaries = [0]
    for i in range(1, len(values)):
        if (abs(values[i] - values[i - 1]) > threshold
                and i - boundaries[-1] >= min_length):
            boundaries.append(i)
    boundaries.append(len(values))
    phases = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        phases.append((sequences[lo], sequences[hi - 1]))
    return phases
