"""Per-thread profile operations.

Profilers either emit one profile per thread (handled by
:mod:`repro.analysis.aggregate`) or one profile whose top-level contexts
are threads (speedscope multi-profile files, Austin's ``T`` prefixes,
Chrome trace tracks).  This module handles the second form: split a
threaded profile into per-thread profiles, measure imbalance, and build
the cross-thread aggregate view in one step — the "investigate the
behavior across different threads" workflow of §VI-A(b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.frame import FrameKind
from ..core.monitor import MonitoringPoint
from ..core.profile import Profile, ProfileMeta
from ..errors import AnalysisError
from .viewtree import ViewTree


def thread_roots(profile: Profile) -> List[CCTNode]:
    """The profile's thread contexts (anywhere in the top two levels).

    Converters place threads directly under the root, or under a process
    context; both layouts are recognized.
    """
    roots: List[CCTNode] = []
    for child in profile.root.children.values():
        if child.frame.kind is FrameKind.THREAD:
            roots.append(child)
        else:
            roots.extend(grand for grand in child.children.values()
                         if grand.frame.kind is FrameKind.THREAD)
    return roots


def is_threaded(profile: Profile) -> bool:
    """Whether the profile carries thread contexts to split on."""
    return bool(thread_roots(profile))


def split_by_thread(profile: Profile) -> Dict[str, Profile]:
    """One profile per thread context, sharing the original's schema.

    Each extracted profile contains the thread's subtree re-rooted at the
    top (the thread frame itself is dropped — within one thread's profile
    it carries no information).  Monitoring points whose contexts live in
    the subtree move along.
    """
    roots = thread_roots(profile)
    if not roots:
        raise AnalysisError("profile has no thread contexts to split on")

    result: Dict[str, Profile] = {}
    for thread_node in roots:
        name = thread_node.frame.name
        sub = Profile(schema=profile.schema.copy(),
                      meta=ProfileMeta(
                          tool=profile.meta.tool,
                          time_nanos=profile.meta.time_nanos,
                          duration_nanos=profile.meta.duration_nanos,
                          attributes=dict(profile.meta.attributes,
                                          thread=name)))
        # Copy the thread's subtree, skipping the thread frame itself.
        mapping: Dict[int, CCTNode] = {id(thread_node): sub.root}
        stack = [thread_node]
        while stack:
            node = stack.pop()
            target = mapping[id(node)]
            for child in node.children.values():
                copy = target.child(child.frame)
                for index, value in child.metrics.items():
                    copy.add_value(index, value)
                mapping[id(child)] = copy
                stack.append(child)
        for point in profile.points:
            if all(id(ctx) in mapping for ctx in point.contexts):
                sub.points.append(MonitoringPoint(
                    kind=point.kind,
                    contexts=[mapping[id(ctx)] for ctx in point.contexts],
                    values=dict(point.values),
                    sequence=point.sequence))
        result[name] = sub
    return result


def thread_totals(profile: Profile, metric: str) -> Dict[str, float]:
    """Per-thread total of one metric (inclusive over each subtree)."""
    index = profile.schema.index_of(metric)
    totals: Dict[str, float] = {}
    for thread_node in thread_roots(profile):
        total = 0.0
        for node in thread_node.walk():
            total += node.metrics.get(index, 0.0)
        totals[thread_node.frame.name] = total
    return totals


def imbalance(profile: Profile, metric: str) -> float:
    """Load imbalance: max / mean of per-thread totals (1.0 = balanced).

    The standard HPC imbalance figure; > ~1.2 means some thread is the
    straggler and the others wait.
    """
    totals = list(thread_totals(profile, metric).values())
    if not totals:
        raise AnalysisError("profile has no thread contexts")
    mean = sum(totals) / len(totals)
    if mean == 0.0:
        return 1.0
    return max(totals) / mean


def aggregate_threads(profile: Profile, shape: str = "top_down"
                      ) -> ViewTree:
    """Split by thread and aggregate: per-context cross-thread statistics.

    The resulting view carries, for every context, the per-thread value
    series in ``histogram`` plus sum/min/max/mean columns — exactly the
    aggregate view of §VI-A(b), with threads as the population.
    """
    from .aggregate import aggregate_profiles
    parts = split_by_thread(profile)
    return aggregate_profiles(list(parts.values()), shape=shape)
