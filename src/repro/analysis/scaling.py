"""Scaling analysis: division-based differentials (ScaAnalyzer-style).

The paper invokes memory scaling twice: differentiation "provides unique
insights [59], such as scaling losses and resource contention" (§V-A) and
"users can use division instead of subtraction to derive differential
metrics, which is used to measure memory scaling [59]" (§V-B).

Given the same program profiled at increasing scale (thread counts,
problem sizes, ranks), each context's *scaling factor* is its metric
ratio between runs.  Comparing the factor against the expected one
classifies contexts:

* **scalable** — grows no faster than the scale (ideal for work metrics,
  flat for per-process memory);
* **scaling loss** — grows faster than expected: the contexts
  ScaAnalyzer highlights as memory-scaling bottlenecks.

:func:`scaling_report` fits a growth exponent per context across a whole
scale sweep, which is more robust than a single pairwise ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.profile import Profile
from ..errors import AnalysisError
from .diff import add_delta_column, diff_profiles
from .transform import top_down
from .viewtree import ViewNode, ViewTree


@dataclass
class ScalingVerdict:
    """Growth assessment for one context across a scale sweep."""

    label: str
    values: List[float]       # metric per run, in sweep order
    exponent: float           # fitted growth exponent α in value ∝ scaleᵅ
    expected: float           # the ideal exponent for this metric
    loss: bool                # grows meaningfully faster than expected

    def describe(self) -> str:
        state = "SCALING LOSS" if self.loss else "scalable"
        return ("%s: %s (value ∝ scale^%.2f, expected ≤ scale^%.2f)"
                % (self.label, state, self.exponent, self.expected))


def scaling_tree(baseline: Profile, scaled: Profile,
                 metric: Optional[str] = None,
                 shape: str = "top_down") -> ViewTree:
    """The division-based differential view between two scales.

    A diff tree whose extra ``<metric>:ratio`` column holds
    ``scaled / baseline`` per context — the §V-B formulation.
    """
    tree = diff_profiles(baseline, scaled, shape=shape, metric=metric)
    metric_index = (tree.schema.index_of(metric) if metric else 0)
    add_delta_column(tree, metric_index, mode="ratio")
    return tree


def fit_exponent(scales: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares fit of α in ``value ∝ scaleᵅ`` (log-log regression).

    Contexts absent at some scale (value 0) are clamped to a tiny epsilon
    so a context that *appears* with scale reads as fast growth.
    """
    if len(scales) != len(values) or len(scales) < 2:
        raise AnalysisError("need matching scale/value series of length ≥2")
    xs = np.log(np.asarray(scales, dtype=float))
    eps = max(max(values) * 1e-9, 1e-12)
    ys = np.log(np.maximum(np.asarray(values, dtype=float), eps))
    slope = float(np.polyfit(xs, ys, 1)[0])
    return slope


def scaling_report(profiles: Sequence[Tuple[float, Profile]],
                   metric: str, expected_exponent: float = 1.0,
                   tolerance: float = 0.25, min_share: float = 0.01
                   ) -> List[ScalingVerdict]:
    """Classify every context across a scale sweep.

    ``profiles`` is a list of (scale, profile) pairs, ascending.
    ``expected_exponent`` is the ideal growth: 1.0 for work metrics under
    strong scaling of the input, 0.0 for per-process memory that should
    stay flat as ranks increase.  Contexts holding under ``min_share`` of
    the largest run's total are skipped as noise.  Verdicts sort by
    exponent, worst first.
    """
    if len(profiles) < 2:
        raise AnalysisError("a scaling sweep needs at least two runs")
    scales = [scale for scale, _ in profiles]
    if sorted(scales) != list(scales):
        raise AnalysisError("profiles must be ordered by ascending scale")

    trees = [top_down(profile) for _, profile in profiles]
    index = trees[0].schema.index_of(metric)

    # Collect per-context series keyed by the merged call path.
    def path_key(node: ViewNode) -> Tuple:
        return tuple(n.frame.merge_key() for n in node.path())

    series: Dict[Tuple, List[float]] = {}
    labels: Dict[Tuple, str] = {}
    for position, tree in enumerate(trees):
        for node in tree.nodes():
            if node is tree.root:
                continue
            key = path_key(node)
            values = series.setdefault(key, [0.0] * len(trees))
            values[position] += node.inclusive.get(index, 0.0)
            labels.setdefault(key, node.frame.label())

    largest_total = trees[-1].total(index) or 1.0
    verdicts: List[ScalingVerdict] = []
    for key, values in series.items():
        if values[-1] < largest_total * min_share:
            continue
        exponent = fit_exponent(scales, values)
        verdicts.append(ScalingVerdict(
            label=labels[key],
            values=values,
            exponent=exponent,
            expected=expected_exponent,
            loss=exponent > expected_exponent + tolerance))
    verdicts.sort(key=lambda v: -v.exponent)
    return verdicts


def scaling_losses(profiles: Sequence[Tuple[float, Profile]],
                   metric: str, expected_exponent: float = 1.0
                   ) -> List[ScalingVerdict]:
    """Just the contexts flagged as scaling losses, worst first."""
    return [v for v in scaling_report(profiles, metric,
                                      expected_exponent=expected_exponent)
            if v.loss]
