"""Profile anonymization for safe sharing.

§II calls out that upload-based visualizers "raise some security and
privacy concerns", and EasyView's answer is local processing.  When a
profile *must* leave the machine anyway (attaching it to a public bug
report, sharing with a vendor), this module strips the identifying
content while preserving every analyzable property:

* function/file/module/object names are replaced by stable pseudonyms
  (``fn_3f2a…``) derived from a keyed hash, so equal names map to equal
  pseudonyms and all views, diffs, and aggregations still line up —
  including across two profiles anonymized with the same key;
* line numbers and instruction addresses are dropped (or kept, opt-in);
* free-form metadata attributes are removed;
* metric names, values, tree structure, and monitoring points are kept
  verbatim — the performance content is the point of sharing.

The mapping is one-way; whoever holds the key can regenerate it with
:func:`mapping_for` to translate findings back to real names.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Iterable, Optional

from ..core.cct import CCTNode
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.monitor import MonitoringPoint
from ..core.profile import Profile, ProfileMeta

_PREFIX = {
    FrameKind.FUNCTION: "fn",
    FrameKind.LOOP: "loop",
    FrameKind.BASIC_BLOCK: "blk",
    FrameKind.INSTRUCTION: "insn",
    FrameKind.DATA_OBJECT: "obj",
    FrameKind.THREAD: "thr",
    FrameKind.ROOT: "root",
}


def _pseudonym(key: bytes, kind: str, text: str, length: int = 10) -> str:
    digest = hmac.new(key, ("%s\x00%s" % (kind, text)).encode("utf-8"),
                      hashlib.sha256).hexdigest()
    return "%s_%s" % (kind, digest[:length])


def anonymize(profile: Profile, key: str,
              keep_lines: bool = False,
              keep_modules: Iterable[str] = ()) -> Profile:
    """Return an anonymized copy of ``profile``.

    ``key`` seeds the pseudonym hash — use the same key across profiles
    that must stay diffable against each other.  ``keep_modules`` lists
    module names to leave readable (e.g. well-known system libraries,
    whose names are not secrets and which reviewers need to recognize).
    """
    secret = key.encode("utf-8")
    keep = frozenset(keep_modules)

    def scrub_frame(frame: Frame) -> Frame:
        if frame.kind is FrameKind.ROOT:
            return frame
        if frame.module in keep and frame.module:
            return (frame if keep_lines
                    else intern_frame(frame.name, frame.file, 0,
                                      frame.module, 0, frame.kind))
        prefix = _PREFIX.get(frame.kind, "sym")
        name = _pseudonym(secret, prefix, frame.name)
        file = (_pseudonym(secret, "file", frame.file) + ".x"
                if frame.file else "")
        module = (_pseudonym(secret, "mod", frame.module)
                  if frame.module else "")
        return intern_frame(name, file,
                            frame.line if keep_lines else 0,
                            module, 0, frame.kind)

    result = Profile(schema=profile.schema.copy(),
                     meta=ProfileMeta(tool=profile.meta.tool,
                                      time_nanos=0, duration_nanos=
                                      profile.meta.duration_nanos))
    node_map: Dict[int, CCTNode] = {id(profile.root): result.root}
    stack = [(profile.root, result.root)]
    while stack:
        src, dst = stack.pop()
        for index, value in src.metrics.items():
            dst.add_value(index, value)
        for child in src.children.values():
            copy = dst.child(scrub_frame(child.frame))
            node_map[id(child)] = copy
            stack.append((child, copy))
    for point in profile.points:
        result.points.append(MonitoringPoint(
            kind=point.kind,
            contexts=[node_map[id(ctx)] for ctx in point.contexts],
            values=dict(point.values),
            sequence=point.sequence))
    return result


def mapping_for(profile: Profile, key: str) -> Dict[str, str]:
    """Pseudonym → real-name mapping for a profile's frames.

    Generated from the *original* profile with the same key; the holder
    uses it to translate shared findings back.
    """
    secret = key.encode("utf-8")
    table: Dict[str, str] = {}
    for node in profile.nodes():
        frame = node.frame
        if frame.kind is FrameKind.ROOT:
            continue
        prefix = _PREFIX.get(frame.kind, "sym")
        table[_pseudonym(secret, prefix, frame.name)] = frame.name
        if frame.file:
            table[_pseudonym(secret, "file", frame.file) + ".x"] = \
                frame.file
        if frame.module:
            table[_pseudonym(secret, "mod", frame.module)] = frame.module
    return table
