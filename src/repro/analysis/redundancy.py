"""Computation-redundancy analysis (§IV-A's redundant/killing pairs).

RedSpy- and Witch-style profilers record *redundancies*: a value written at
one context (the **dead** write) is overwritten at another (the
**killing** write) without ever being read, or a load re-reads a value that
was never modified.  EasyView's representation stores each as a
two-context monitoring point ``[dead, killing]`` of kind ``REDUNDANCY``,
and this module turns those points into actionable reports:

* ranked dead/killing pairs with their least common ancestor (where a
  fix — hoisting, caching, eliminating the dead store — would live);
* the *redundancy fraction*: how much of the program's total operation
  count is wasted, the headline number such tools report;
* classification into intra-function (same function writes twice) and
  cross-function pairs, which need different fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.cct import CCTNode
from ..core.monitor import MonitoringPoint, PointKind
from ..core.profile import Profile
from ..errors import AnalysisError
from .traversal import common_ancestor


@dataclass
class RedundancyPair:
    """One aggregated (dead write, killing write) pair."""

    dead: CCTNode
    killing: CCTNode
    count: float
    lca: Optional[CCTNode]

    @property
    def intra_function(self) -> bool:
        """True when both writes live in the same function."""
        return self.dead.frame.merge_key() == self.killing.frame.merge_key()

    def fix_site(self) -> str:
        """Where the fix would live, as guidance text."""
        if self.intra_function:
            return "inside %s" % self.dead.frame.label()
        if self.lca is None or self.lca.parent is None:
            return "<program root>"
        return "under %s" % self.lca.frame.label()

    def describe(self) -> str:
        """One-line report entry."""
        kind = ("intra-function" if self.intra_function
                else "cross-function")
        return ("%s redundancy: value written at %s is killed at %s "
                "(%g occurrences) — fix %s"
                % (kind, _locate(self.dead), _locate(self.killing),
                   self.count, self.fix_site()))


def _locate(node: CCTNode) -> str:
    frame = node.frame
    if frame.location.is_known():
        return "%s (%s)" % (frame.name, frame.location)
    return frame.label()


def redundancy_points(profile: Profile) -> List[MonitoringPoint]:
    """All REDUNDANCY monitoring points in a profile."""
    return profile.points_of_kind(PointKind.REDUNDANCY)


def redundancy_pairs(profile: Profile, top: int = 20,
                     metric: str = "") -> List[RedundancyPair]:
    """Aggregate and rank the profile's redundancy pairs."""
    if not redundancy_points(profile):
        return []
    index = _count_metric(profile, metric)
    merged: Dict[Tuple[int, int], RedundancyPair] = {}
    for point in redundancy_points(profile):
        dead, killing = point.contexts
        key = (id(dead), id(killing))
        pair = merged.get(key)
        if pair is None:
            merged[key] = RedundancyPair(
                dead=dead, killing=killing,
                count=point.value(index),
                lca=common_ancestor(dead, killing))
        else:
            pair.count += point.value(index)
    ranked = sorted(merged.values(), key=lambda p: -p.count)
    return ranked[:top]


def redundancy_fraction(profile: Profile, total_metric: str,
                        count_metric: str = "") -> float:
    """Wasted fraction: redundant occurrences / total operations.

    ``total_metric`` names the denominator column (e.g. total stores or
    instructions measured by the host profiler).
    """
    total = profile.total(total_metric)
    if total <= 0:
        return 0.0
    index = _count_metric(profile, count_metric)
    wasted = sum(point.value(index)
                 for point in redundancy_points(profile))
    return min(wasted / total, 1.0)


def report(profile: Profile, top: int = 10) -> str:
    """A textual redundancy report (what the GUI pane would list)."""
    pairs = redundancy_pairs(profile, top=top)
    if not pairs:
        return "no redundancy pairs recorded"
    lines = ["top %d redundancy pairs:" % len(pairs)]
    for i, pair in enumerate(pairs, 1):
        lines.append("%2d. %s" % (i, pair.describe()))
    return "\n".join(lines)


def _count_metric(profile: Profile, metric: str = "") -> int:
    if metric:
        return profile.schema.index_of(metric)
    for name in ("redundant_ops", "occurrences", "count", "accesses"):
        index = profile.schema.get(name)
        if index is not None:
            return index
    for point in redundancy_points(profile):
        if point.values:
            return next(iter(point.values))
    raise AnalysisError("profile has no redundancy count metric")
