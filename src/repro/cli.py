"""The ``easyview`` command-line interface.

Subcommands mirror the viewer's capabilities for headless use:

* ``open``      — render a profile as a flame graph / outline / summary
* ``convert``   — convert any supported format to EasyView's binary format
* ``diff``      — differential view of two profiles
* ``aggregate`` — aggregate view over several profiles
* ``report``    — write a self-contained HTML report
* ``lint``      — static analysis: formulas, callbacks, profile invariants
* ``selfcheck`` — static concurrency/resource analysis of EasyView's own
  source (EV4xx), gated on the checked-in waiver baseline
* ``formats``   — list supported input formats
* ``engine-stats`` — analysis-engine cache counters (cold vs warm)
* ``serve``     — speak the Profile View Protocol over stdio
* ``obs``       — EasyView's own telemetry: trace a nested command and
  export the spans as metrics, JSONL, a Chrome trace, or an EasyView
  profile (the dogfooding pipeline)
* ``agent``/``collector``/``watch`` — the continuous-profiling loop:
  capture on a cadence, ship over HTTP into a ProfStore, and watch the
  stored stream for regressions
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_open(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis.transform import transform
    from .viz.flamegraph import FlameGraph
    from .viz.terminal import render_summary, render_tree_text

    profile = open_profile(args.path, format=args.format)
    tree = transform(profile, args.shape)
    graph = FlameGraph(tree, metric=args.metric or "")
    if args.outline:
        print(render_tree_text(tree, metric_index=graph.metric_index))
    else:
        print(graph.to_text(width=args.width, color=args.color))
    print()
    print(render_summary(tree, metric_index=graph.metric_index))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .core.serialize import dump

    profile = open_profile(args.input, format=args.format)
    dump(profile, args.output)
    print("wrote %s (%d contexts, metrics: %s)"
          % (args.output, profile.node_count(),
             ", ".join(profile.schema.names())))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis.diff import summarize
    from .engine import get_engine
    from .viz.terminal import render_tree_text

    baseline = open_profile(args.baseline, format=args.format)
    treatment = open_profile(args.treatment, format=args.format)
    tree = get_engine().diff_profiles(baseline, treatment, shape=args.shape)
    print(render_tree_text(tree))
    print()
    tags = summarize(tree)
    print("difference tags:", " ".join(
        "[%s]=%d" % (tag, count) for tag, count in sorted(tags.items())))
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .engine import get_engine
    from .viz.terminal import render_tree_text

    profiles = [open_profile(path, format=args.format)
                for path in args.paths]
    tree = get_engine().aggregate_profiles(profiles, shape=args.shape)
    print("aggregated %d profiles; showing %s"
          % (len(profiles), tree.schema[0].name))
    print(render_tree_text(tree))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .viz.flamegraph import FlameGraph
    from .viz.html import HtmlReport
    from .viz.treetable import TreeTable

    profile = open_profile(args.path, format=args.format)
    if args.interactive:
        from .viz.webview import save_webview
        save_webview(profile, args.output,
                     title="EasyView — %s" % args.path)
        print("wrote %s (interactive)" % args.output)
        return 0
    report = HtmlReport("EasyView report — %s" % args.path)
    for shape in ("top_down", "bottom_up", "flat"):
        graph = getattr(FlameGraph, shape)(profile)
        report.add_heading("%s flame graph" % shape.replace("_", "-"))
        report.add_flamegraph(graph)
    table = TreeTable(FlameGraph.top_down(profile).tree)
    table.expand_hot_path()
    report.add_heading("tree table (hot path expanded)")
    report.add_table(table)
    report.save(args.output)
    print("wrote %s" % args.output)
    return 0


def _cmd_leak(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis.leak import detect_leaks
    from .viz.histogram import sparkline

    profile = open_profile(args.path, format=args.format)
    verdicts = detect_leaks(profile, args.metric, threshold=args.threshold,
                            min_peak=args.min_peak)
    if not verdicts:
        print("no snapshot series found (metric %r)" % args.metric)
        return 1
    for verdict in verdicts[:args.top]:
        print("%s %s" % (sparkline(verdict.series), verdict.describe()))
    suspicious = sum(v.suspicious for v in verdicts)
    print("\n%d of %d contexts look like potential leaks"
          % (suspicious, len(verdicts)))
    return 0


def _cmd_reuse(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .viz.flamegraph import CorrelatedView

    profile = open_profile(args.path, format=args.format)
    view = CorrelatedView(profile)
    allocations = view.allocations()
    if not allocations:
        print("no use/reuse pairs recorded in this profile")
        return 1
    view.select_allocation(allocations[0][0])
    uses = view.uses()
    if uses:
        view.select_use(uses[0][0])
    print(view.render_text(top=args.top))
    print()
    for line in view.guidance(top=args.top):
        print("guidance:", line)
    return 0


def _cmd_inefficiencies(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis import redundancy, sharing

    profile = open_profile(args.path, format=args.format)
    printed = False
    if profile.points and any(p.kind.name == "REDUNDANCY"
                              for p in profile.points):
        print(redundancy.report(profile, top=args.top))
        printed = True
    contention = sharing.report(profile, top=args.top)
    if "no contention" not in contention:
        if printed:
            print()
        print(contention)
        printed = True
    if not printed:
        print("no multi-context inefficiency points recorded")
        return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .builder import validate

    profile = open_profile(args.path, format=args.format)
    report = validate(profile)
    for error in report.errors:
        print("error: %s" % error)
    for warning in report.warnings:
        print("warning: %s" % warning)
    if report.ok:
        print("OK: %d contexts, %d points, metrics: %s"
              % (profile.node_count(), len(profile.points),
                 ", ".join(profile.schema.names())))
        return 0
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (LintConfig, has_errors, lint_formula, lint_path,
                       lint_source, render_json)
    from .viz.terminal import render_diagnostics

    config = LintConfig.from_directives(args.disable or [])
    diagnostics = []
    for path in args.paths:
        diagnostics.extend(lint_path(path, format=args.format,
                                     config=config))
    metrics = None
    if args.paths and args.formula:
        # Formulas are linted against the union of the linted profiles'
        # schemas, so `--formula` next to a profile checks real metric names.
        from .converters import open_profile
        metrics = set()
        for path in args.paths:
            try:
                metrics.update(open_profile(path,
                                            format=args.format).schema.names())
            except Exception:
                pass  # conversion problems already reported by lint_path
    for formula in args.formula or []:
        diagnostics.extend(lint_formula(formula, metrics=metrics,
                                        profile_count=max(1, len(args.paths)),
                                        config=config))
    for path in args.callback or []:
        with open(path, "r", encoding="utf-8") as handle:
            diagnostics.extend(lint_source(handle.read(), subject=path,
                                           config=config))

    if args.json:
        print(render_json(diagnostics))
    else:
        print(render_diagnostics(diagnostics, color=args.color))
    return 1 if has_errors(diagnostics) else 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    """Run SelfCheck (EV4xx) over repo source and gate on the baseline.

    Exit codes (documented in docs/SELFCHECK.md): 0 — no findings beyond
    the baseline; 1 — new findings (or stale waivers); 2 — the analyzer
    itself failed.  ``main()`` maps stray exceptions to 1, so internal
    errors are caught here to honor the contract.
    """
    try:
        from .core.jsonio import dumps_data
        from .lint import LintConfig
        from .sa import Baseline, run_selfcheck
        from .viz.terminal import render_diagnostics

        config = LintConfig.from_directives(args.disable or [])
        baseline = Baseline.load(args.baseline)
        result = run_selfcheck(args.paths or ["src"],
                               baseline=baseline, config=config)

        if args.update_baseline:
            updated = Baseline.from_findings(result.diagnostics,
                                             previous=baseline)
            updated.save(args.baseline)
            print("selfcheck: wrote %d waiver(s) to %s"
                  % (len(updated), args.baseline))
            return 0

        if args.json:
            print(dumps_data(result.to_dict()))
        else:
            if result.new:
                print(render_diagnostics(result.new, color=args.color))
            for waiver in result.stale:
                print("stale waiver: %s %s: %s"
                      % (waiver.rule, waiver.subject, waiver.message))
            print("selfcheck: %d file(s), %d finding(s): %d new, "
                  "%d waived, %d stale waiver(s)"
                  % (result.files, len(result.diagnostics),
                     len(result.new), len(result.waived),
                     len(result.stale)))
        return 0 if result.clean and not result.stale else 1
    except Exception as exc:
        print("easyview selfcheck: internal error: %s" % exc,
              file=sys.stderr)
        return 2


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis.anonymize import anonymize
    from .core.serialize import dump

    profile = open_profile(args.path, format=args.format)
    scrubbed = anonymize(profile, key=args.key,
                         keep_lines=args.keep_lines,
                         keep_modules=args.keep_module)
    dump(scrubbed, args.output)
    print("wrote %s (%d contexts anonymized; values untouched)"
          % (args.output, scrubbed.node_count()))
    return 0


def _cmd_combine(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis.combine import combine
    from .core.serialize import dump

    profiles = [open_profile(path, format=args.format)
                for path in args.paths]
    merged = combine(profiles)
    dump(merged, args.output)
    print("wrote %s (tools: %s; metrics: %s)"
          % (args.output, merged.meta.tool,
             ", ".join(merged.schema.names())))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .converters import open_profile
    from .analysis.timerange import find_phases, range_profile
    from .viz.terminal import render_summary, render_tree_text
    from .viz.timeline import timeline_text
    from .analysis.transform import top_down

    profile = open_profile(args.path, format=args.format)
    text = timeline_text(profile, args.metric, width=args.width)
    if "no snapshot" in text:
        print(text)
        return 1
    print(text)
    if args.window:
        start, _, end = args.window.partition(":")
        sub = range_profile(profile, int(start), int(end),
                            combine=args.combine)
        print()
        print("window %s..%s (%s):" % (start, end, args.combine))
        print(render_summary(top_down(sub)))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .study.simulate import render_table, run_study
    from .study.survey import run_survey

    table = run_study(seed=args.seed)
    print("control-group study (group mean task times):")
    print(render_table(table))
    print()
    print("view-effectiveness survey:")
    print(run_survey(seed=args.seed + 2).render())
    return 0


def _cmd_formats(args: argparse.Namespace) -> int:
    from .converters import base

    for name in base.names():
        converter = base.get(name)
        extensions = " ".join(converter.extensions) or "-"
        print("%-16s %-28s %s"
              % (name, extensions, converter.description))
    return 0


def _format_nanos(nanos: int) -> str:
    import datetime
    if nanos <= 0:
        return "-"
    stamp = datetime.datetime.fromtimestamp(nanos / 1e9,
                                            tz=datetime.timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    from .store import ProfileStore

    labels = {}
    for item in args.label or []:
        key, _, value = item.partition("=")
        labels[key] = value
    with ProfileStore(args.store) as store:
        for path in args.paths:
            result = store.ingest(path, service=args.service,
                                  ptype=args.type, labels=labels,
                                  format=args.format)
            note = " (stamped at ingest)" if result.assigned_time else ""
            print("ingested %s as #%d service=%s type=%s time=%s%s"
                  % (path, result.entry.seq, args.service, args.type,
                     _format_nanos(result.entry.time_nanos), note))
            for diag in result.diagnostics:
                print("  %s" % diag.format())
        if not args.no_flush:
            address = store.flush()
            if address:
                print("flushed to segment %s" % address)
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    from .store import ProfileStore
    from .viz.flamegraph import FlameGraph
    from .viz.terminal import render_summary

    with ProfileStore(args.store) as store:
        result = store.query(" ".join(args.query), shape=args.shape)
        if result.tree is None:
            print("no records match %r" % result.query.to_text())
            return 1
        print("merged %d records for %r"
              % (result.count, result.query.to_text() or "<all>"))
        graph = FlameGraph(result.tree)
        print(graph.to_text(width=args.width, color=args.color))
        print()
        print(render_summary(result.tree, metric_index=graph.metric_index))
    return 0


def _cmd_store_ls(args: argparse.Namespace) -> int:
    from .store import ProfileStore

    with ProfileStore(args.store) as store:
        entries = store.select(" ".join(args.query))
        for entry in entries:
            labels = " ".join("%s=%s" % kv
                              for kv in sorted(entry.labels.items()))
            print("#%-5d %-16s %-6s %-20s %-10s %s"
                  % (entry.seq, entry.service or "-", entry.ptype,
                     _format_nanos(entry.time_nanos),
                     (entry.segment or "wal")[:10], labels))
        print("%d records" % len(entries))
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from .store import ProfileStore

    with ProfileStore(args.store) as store:
        before = store.stats()["segments"]
        address = store.compact(small_records=args.small_records)
        if address is None:
            print("nothing to compact (%d segments)" % before)
            return 0
        after = store.stats()["segments"]
        print("compacted %d segments into %s (%d live)"
              % (before - after + 1, address, after))
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    from .store import ProfileStore
    from .store.query import parse_age

    max_age = parse_age(args.max_age) if args.max_age else None
    with ProfileStore(args.store) as store:
        report = store.gc(max_age_nanos=max_age,
                          max_total_bytes=args.max_bytes)
        print("removed %d segments, swept %d orphans"
              % (len(report["removedSegments"]),
                 len(report["orphansSwept"])))
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from .store import ProfileStore

    with ProfileStore(args.store) as store:
        stats = store.stats(verify=not args.no_verify)
        if args.json:
            from .core.jsonio import dumps_data
            print(dumps_data(stats))
            return 0 if stats.get("integrity", {}).get("ok", True) else 1
        print("store %s: %d segments (%d bytes), %d records "
              "(%d in WAL), next seq %d"
              % (stats["root"], stats["segments"], stats["segmentBytes"],
                 stats["records"], stats["walRecords"], stats["nextSeq"]))
        window = stats["timeRange"]
        print("time range: %s .. %s"
              % (_format_nanos(window["startNanos"]),
                 _format_nanos(window["endNanos"])))
        for service, count in sorted(stats["services"].items()):
            print("  %-24s %d records" % (service or "-", count))
        if stats["walRecoveredTornBytes"]:
            print("recovered: truncated %d torn WAL bytes on open"
                  % stats["walRecoveredTornBytes"])
        if "integrity" in stats:
            if stats["integrity"]["ok"]:
                print("integrity: all segment content addresses verify")
            else:
                for problem in stats["integrity"]["problems"]:
                    print("integrity: %s" % problem)
                return 1
    return 0


def _run_nested(argv: List[str]) -> int:
    """Dispatch one nested ``easyview`` command line (for ``obs ...``).

    The nested command runs in-process so its spans land in this
    process's ring; its stdout is redirected to stderr so the export
    payload owns stdout.
    """
    import contextlib

    if argv and argv[0] == "--":
        argv = argv[1:]  # argparse.REMAINDER keeps the separator
    if not argv:
        raise SystemExit("obs: give a nested easyview command to trace, "
                         "e.g. `easyview obs export store query prof`")
    args = build_parser().parse_args(argv)
    with contextlib.redirect_stdout(sys.stderr):
        return args.fn(args)


def _format_span_table(spans) -> str:
    from .obs.export import by_name

    lines = ["%-40s %7s %12s %12s %8s" % ("span", "count", "total ms",
                                          "self ms", "errors")]
    for row in by_name(spans):
        lines.append("%-40s %7d %12.3f %12.3f %8d"
                     % (row["name"], row["count"],
                        row["totalNanos"] / 1e6, row["selfNanos"] / 1e6,
                        row["errors"]))
    return "\n".join(lines)


def _obs_snapshot() -> dict:
    """The ``obs metrics`` payload: registry + span summary + tracer."""
    from . import obs
    from .obs.export import by_name

    tracer = obs.get_tracer()
    spans = tracer.spans()
    return {
        "metrics": obs.get_registry().snapshot(),
        "spans": by_name(spans),
        "tracer": {"enabled": tracer.enabled,
                   "capacity": tracer.capacity,
                   "sampleEvery": tracer.sample_every,
                   "spanCount": len(spans)},
    }


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    from . import obs
    from .core.jsonio import dumps_data

    if args.command:
        obs.configure(enabled=True)
        _run_nested(args.command)
    fmt = "json" if args.json else args.format
    if fmt == "prom":
        # Prometheus text exposition: what a scraper pointed at a file
        # (or the collector's /metrics endpoint) expects.
        sys.stdout.write(obs.registry_prometheus())
        return 0
    snapshot = _obs_snapshot()
    if fmt == "json":
        print(dumps_data(snapshot))
        return 0
    metrics = snapshot["metrics"]
    for name, value in metrics["counters"].items():
        print("%-40s %d" % (name, value))
    for name, value in metrics["gauges"].items():
        print("%-40s %g" % (name, value))
    for name, hist in metrics["histograms"].items():
        print("%-40s n=%d mean=%.6f max=%s"
              % (name, hist["count"], hist["mean"], hist["max"]))
    if snapshot["spans"]:
        print()
        print(_format_span_table(obs.get_tracer().spans()))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Trace a nested command, then export the span ring.

    ``--format easyview`` emits the spans folded into an EasyView
    profile (JSON form, or native binary when ``-o`` ends in ``.ezvw``)
    that every viewer surface — and ``store ingest`` — accepts:

        easyview obs export --format easyview -o self.ezvw.json \\
            store query prof service=api
        easyview open self.ezvw.json
        easyview store ingest prof self.ezvw.json --service easyview
    """
    from . import obs
    from .obs import export as export_mod

    tracer = obs.configure(enabled=True, capacity=args.capacity,
                           sample_every=args.sample_every)
    rc = _run_nested(args.command)
    spans = tracer.spans()
    if not spans:
        print("easyview obs: the traced command recorded no spans",
              file=sys.stderr)
        return 1
    if args.format == "easyview":
        profile = export_mod.to_profile(spans)
        if args.output and args.output.endswith(".ezvw"):
            from .core.serialize import dump
            dump(profile, args.output)
            print("wrote %s (%d spans as %d contexts)"
                  % (args.output, len(spans), profile.node_count()),
                  file=sys.stderr)
            return rc
        from .core import jsonio
        content = jsonio.dumps(profile)
    elif args.format == "chrome":
        import json as json_mod
        content = json_mod.dumps(export_mod.to_chrome_trace(spans),
                                 indent=2)
    else:  # jsonl
        content = export_mod.to_jsonl(spans)
    if args.output:
        from .core.atomicio import atomic_write_text
        atomic_write_text(args.output, content + "\n")
        print("wrote %s (%d spans)" % (args.output, len(spans)),
              file=sys.stderr)
    else:
        print(content)
    return rc


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    """Run a nested command traced, reporting telemetry as it runs.

    Exit status is the nested command's own, even when the watcher is
    interrupted after the command finished; an interrupt that lands
    while the command is still running reports the conventional 130
    (128 + SIGINT).  Either way the watcher thread is joined before
    this function returns — the final span table is printed once, after
    the last writer to the ring has stopped.
    """
    import threading

    from . import obs

    tracer = obs.configure(enabled=True)
    outcome = {}

    def run() -> None:
        try:
            outcome["rc"] = _run_nested(args.command)
        except SystemExit as exc:  # argparse errors and explicit exits
            code = exc.code
            outcome["rc"] = code if isinstance(code, int) else 1
        except BaseException as exc:  # surfaced after the final report
            outcome["error"] = exc

    worker = threading.Thread(target=run, name="easyview-obs-watch",
                              daemon=True)
    worker.start()
    interrupted = False
    try:
        while worker.is_alive():
            worker.join(args.interval)
            spans = tracer.spans()
            top = None
            if spans:
                from .obs.export import by_name
                top = by_name(spans)[0]
            line = "obs: %d spans" % len(spans)
            if top is not None:
                line += " | top %s x%d %.1f ms" % (
                    top["name"], top["count"], top["totalNanos"] / 1e6)
            print(line, file=sys.stderr)
    except KeyboardInterrupt:
        interrupted = True
        print("obs: interrupted; waiting for the traced command",
              file=sys.stderr)
    # Join even on interrupt: the in-process command cannot be killed,
    # only outwaited (briefly) — a still-running command after the grace
    # period is reported rather than silently abandoned mid-table.  A
    # second Ctrl-C landing in this grace join must not turn into a
    # traceback either.
    try:
        worker.join(timeout=max(args.interval, 1.0))
    except KeyboardInterrupt:
        interrupted = True
    if worker.is_alive():
        print("obs: traced command still running; span table may be "
              "partial", file=sys.stderr)
    print(_format_span_table(tracer.spans()))
    error = outcome.get("error")
    if error is not None:
        raise error
    if "rc" in outcome:
        return int(outcome["rc"])
    return 130 if interrupted else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.port is not None:
        from .serve.server import ServeConfig, run_server

        run_server(ServeConfig(host=args.host, port=args.port,
                               max_pending=args.max_pending,
                               max_session_queue=args.max_session_queue,
                               workers=args.workers))
        return 0
    from .ide.server import StdioServer

    StdioServer().serve_forever()
    return 0


def _parse_labels(pairs: List[str]) -> dict:
    labels = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit("labels are k=v, got %r" % pair)
        labels[key] = value
    return labels


def _cmd_agent_run(args: argparse.Namespace) -> int:
    """Capture on a cadence and ship to a collector (spooling outages)."""
    from .continuous import (CaptureAgent, DiskSpool, MachineSource,
                             RetryPolicy)
    from .continuous.agent import HTTPShipper, SamplerSource

    if args.self_profile:
        # Dogfooding source: sample this very process running a nested
        # easyview command each tick.
        source = SamplerSource(lambda: _run_nested(list(args.self_profile)))
    else:
        source = MachineSource(args.scenario,
                               **_typed_params(args.scenario_arg))
    agent = CaptureAgent(
        source, HTTPShipper(args.collector, timeout=args.timeout),
        service=args.service, host=args.host, ptype=args.type,
        labels=_parse_labels(args.label),
        cadence_seconds=args.cadence,
        spool=DiskSpool(args.spool) if args.spool else None,
        retry=RetryPolicy(max_attempts=args.max_attempts))
    results = []
    try:
        if args.ticks:
            results = agent.run(args.ticks)
        else:
            while True:  # cadence loop until interrupted
                results.append(agent.tick())
                agent.sleep(agent.cadence_seconds)
    except KeyboardInterrupt:
        print("agent: interrupted", file=sys.stderr)
    shipped = sum(1 for r in results if r is not None)
    print("agent: %d tick(s), %d shipped, %d spooled"
          % (len(results), shipped,
             len(agent.spool) if agent.spool else 0), file=sys.stderr)
    return 0 if shipped == len(results) else 1


def _typed_params(pairs: List[str]) -> dict:
    """``k=v`` scenario args with ints/floats/bools recognized."""
    params = {}
    for key, value in _parse_labels(pairs).items():
        if value.lower() in ("true", "false"):
            params[key] = value.lower() == "true"
            continue
        for cast in (int, float):
            try:
                params[key] = cast(value)
                break
            except ValueError:
                continue
        else:
            params[key] = value
    return params


def _cmd_collector(args: argparse.Namespace) -> int:
    """Serve the upload endpoint over one ProfStore until interrupted."""
    import signal
    import threading

    from .continuous import Collector
    from .store import ProfileStore

    store = ProfileStore(args.store)
    collector = Collector(store, host=args.host, port=args.port,
                          max_pending=args.max_pending,
                          max_service_queue=args.max_service_queue,
                          max_body_bytes=args.max_body_bytes)
    collector.start()
    print("collector: listening on %s (store %s)"
          % (collector.url, store.root), file=sys.stderr)
    # Ctrl-C raises KeyboardInterrupt; SIGTERM (what a supervisor — or a
    # CI `kill` against a backgrounded daemon, which starts with SIGINT
    # ignored — sends) must take the same drain-then-flush exit path.
    stopping = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: stopping.set())
    except ValueError:  # not the main thread (tests)
        pass
    try:
        while not stopping.wait(1.0):
            pass
        print("collector: draining", file=sys.stderr)
        collector.drain()
    except KeyboardInterrupt:
        print("collector: draining", file=sys.stderr)
        collector.drain()
    finally:
        collector.stop()
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Windowed regression watch over a stored capture stream."""
    from .continuous.watch import RegressionWatch
    from .store import ProfileStore

    store = ProfileStore(args.store)
    watch = RegressionWatch(
        store, query=" ".join(args.query), window=args.window,
        baseline=args.baseline, metric=args.metric, shape=args.shape,
        min_ratio=args.min_ratio, top=args.top)
    if args.now is not None:
        watch.clock = lambda: args.now
    last = {}

    def report_out(report) -> None:
        last["report"] = report
        if args.json != "-":
            print(report.render())

    try:
        watch.run(args.ticks, interval_seconds=args.interval,
                  on_report=report_out)
    except KeyboardInterrupt:
        print("watch: interrupted", file=sys.stderr)
    report = last.get("report")
    if report is None:
        return 1
    if args.json == "-":
        print(report.to_json())
    elif args.json:
        from .core.atomicio import atomic_write_text
        atomic_write_text(args.json, report.to_json() + "\n")
        print("watch: wrote %s" % args.json, file=sys.stderr)
    if args.fail_on_regression and report.has_regressions:
        return 2
    return 0


def _cmd_engine_stats(args: argparse.Namespace) -> int:
    """Report the shared engine's cache counters.

    With profile paths, first exercises the engine — transform + layout per
    profile, plus a diff of the first two and an aggregate over all of them
    when several are given — twice over, so the report shows the cold
    (miss) and warm (hit) cost side by side.
    """
    import time

    from .engine import get_engine

    engine = get_engine()
    if args.paths:
        from .converters import open_profile

        profiles = [open_profile(path, format=args.format)
                    for path in args.paths]

        def workload() -> None:
            for profile in profiles:
                tree = engine.transform(profile, args.shape)
                engine.layout(tree)
            if len(profiles) >= 2:
                engine.diff_profiles(profiles[0], profiles[1],
                                     shape=args.shape)
                engine.aggregate_profiles(profiles, shape=args.shape)

        t0 = time.perf_counter()
        workload()
        t1 = time.perf_counter()
        workload()
        t2 = time.perf_counter()
        if not args.json:
            print("cold pass: %.1f ms" % ((t1 - t0) * 1e3))
            print("warm pass: %.1f ms" % ((t2 - t1) * 1e3))

    stats = engine.stats()
    if args.json:
        from .core.jsonio import dumps_data
        if args.paths:
            stats["passes"] = {"coldSeconds": t1 - t0,
                               "warmSeconds": t2 - t1}
        print(dumps_data(stats))
        return 0
    print("cache: %d/%d entries, %d hits, %d misses, %d evictions, "
          "%d bypasses (hit rate %.1f%%)"
          % (stats["size"], stats["capacity"], stats["hits"],
             stats["misses"], stats["evictions"], stats["bypasses"],
             100.0 * stats["hitRate"]))
    for operation, counts in stats["operations"].items():
        print("  %-12s %d hits / %d misses"
              % (operation, counts["hits"], counts["misses"]))
    pool = stats["pool"]
    print("pool: %d workers, %d parallel batches, %d inline batches"
          % (pool["maxWorkers"], pool["parallelBatches"],
             pool["inlineBatches"]))
    return 0


def _cmd_bench_codec(args: argparse.Namespace) -> int:
    """Run the codec fast-path benchmark (same harness as CI)."""
    from .bench.codec import (CodecMismatch, FULL_TIERS, QUICK_TIERS,
                              format_report, run_codec_bench, write_report)

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    try:
        report = run_codec_bench(tiers, repeats=args.repeats)
    except CodecMismatch as exc:
        print("easyview: codec mismatch: %s" % exc, file=sys.stderr)
        return 2
    if args.out:
        write_report(report, args.out)
    if args.json:
        from .core.jsonio import dumps_data
        print(dumps_data(report))
    else:
        print(format_report(report))
        if args.out:
            print("report written to %s" % args.out)
    return 0


def _cmd_bench_cct(args: argparse.Namespace) -> int:
    """Run the columnar CCT benchmark (same harness as CI)."""
    from .bench.cct import (FULL_TIERS, OracleMismatch, QUICK_TIERS,
                            format_report, run_cct_bench, write_report)

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    try:
        report = run_cct_bench(tiers, repeats=args.repeats)
    except OracleMismatch as exc:
        print("easyview: columnar oracle mismatch: %s" % exc,
              file=sys.stderr)
        return 2
    if args.out:
        write_report(report, args.out)
    if args.json:
        from .core.jsonio import dumps_data
        print(dumps_data(report))
    else:
        print(format_report(report))
        if args.out:
            print("report written to %s" % args.out)
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Run the multi-client serving benchmark (same harness as CI)."""
    from .bench.serve import (FULL_TIERS, QUICK_TIERS, ServeMismatch,
                              format_report, run_serve_bench, write_report)

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    try:
        report = run_serve_bench(tiers)
    except ServeMismatch as exc:
        print("easyview: serve mismatch: %s" % exc, file=sys.stderr)
        return 2
    if args.out:
        write_report(report, args.out)
    if args.json:
        from .core.jsonio import dumps_data
        print(dumps_data(report))
    else:
        print(format_report(report))
        if args.out:
            print("report written to %s" % args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="easyview",
        description="EasyView: performance profiles, anywhere")
    sub = parser.add_subparsers(dest="command", required=True)

    p_open = sub.add_parser("open", help="render a profile")
    p_open.add_argument("path")
    p_open.add_argument("--format", default=None)
    p_open.add_argument("--shape", default="top_down",
                        choices=["top_down", "bottom_up", "flat"])
    p_open.add_argument("--metric", default=None)
    p_open.add_argument("--width", type=int, default=100)
    p_open.add_argument("--color", action="store_true")
    p_open.add_argument("--outline", action="store_true",
                        help="indented outline instead of flame rows")
    p_open.set_defaults(fn=_cmd_open)

    p_convert = sub.add_parser("convert",
                               help="convert to EasyView binary format")
    p_convert.add_argument("input")
    p_convert.add_argument("output")
    p_convert.add_argument("--format", default=None)
    p_convert.set_defaults(fn=_cmd_convert)

    p_diff = sub.add_parser("diff", help="differential view of two profiles")
    p_diff.add_argument("baseline")
    p_diff.add_argument("treatment")
    p_diff.add_argument("--format", default=None)
    p_diff.add_argument("--shape", default="top_down",
                        choices=["top_down", "bottom_up", "flat"])
    p_diff.set_defaults(fn=_cmd_diff)

    p_agg = sub.add_parser("aggregate",
                           help="aggregate view over several profiles")
    p_agg.add_argument("paths", nargs="+")
    p_agg.add_argument("--format", default=None)
    p_agg.add_argument("--shape", default="top_down",
                       choices=["top_down", "bottom_up", "flat"])
    p_agg.set_defaults(fn=_cmd_aggregate)

    p_report = sub.add_parser("report", help="write an HTML report")
    p_report.add_argument("path")
    p_report.add_argument("-o", "--output", default="easyview-report.html")
    p_report.add_argument("--format", default=None)
    p_report.add_argument("--interactive", action="store_true",
                          help="self-contained interactive viewer instead "
                               "of a static report")
    p_report.set_defaults(fn=_cmd_report)

    p_leak = sub.add_parser("leak",
                            help="memory-leak verdicts from snapshots")
    p_leak.add_argument("path")
    p_leak.add_argument("--format", default=None)
    p_leak.add_argument("--metric", default="inuse_bytes")
    p_leak.add_argument("--threshold", type=float, default=0.6)
    p_leak.add_argument("--min-peak", type=float, default=0.0,
                        dest="min_peak")
    p_leak.add_argument("--top", type=int, default=10)
    p_leak.set_defaults(fn=_cmd_leak)

    p_reuse = sub.add_parser("reuse",
                             help="correlated use/reuse analysis")
    p_reuse.add_argument("path")
    p_reuse.add_argument("--format", default=None)
    p_reuse.add_argument("--top", type=int, default=5)
    p_reuse.set_defaults(fn=_cmd_reuse)

    p_ineff = sub.add_parser("inefficiencies",
                             help="redundancy and contention reports")
    p_ineff.add_argument("path")
    p_ineff.add_argument("--format", default=None)
    p_ineff.add_argument("--top", type=int, default=10)
    p_ineff.set_defaults(fn=_cmd_inefficiencies)

    p_validate = sub.add_parser("validate",
                                help="structural validation report")
    p_validate.add_argument("path")
    p_validate.add_argument("--format", default=None)
    p_validate.set_defaults(fn=_cmd_validate)

    p_lint = sub.add_parser("lint",
                            help="static analysis: formulas, callbacks, "
                                 "profile invariants")
    p_lint.add_argument("paths", nargs="*",
                        help="profile files to lint")
    p_lint.add_argument("--format", default=None)
    p_lint.add_argument("--formula", action="append", default=[],
                        help="formula text to lint (repeatable)")
    p_lint.add_argument("--callback", action="append", default=[],
                        help="callback source file to lint (repeatable)")
    p_lint.add_argument("--disable", action="append", default=[],
                        help="rule directive, e.g. EV104=off or "
                             "EV305=warning (repeatable)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    p_lint.add_argument("--color", action="store_true")
    p_lint.set_defaults(fn=_cmd_lint)

    p_selfcheck = sub.add_parser(
        "selfcheck",
        help="static concurrency/resource analysis of EasyView's own "
             "source (EV4xx), gated on the checked-in baseline")
    p_selfcheck.add_argument("paths", nargs="*",
                             help="files/directories to analyze "
                                  "(default: src)")
    p_selfcheck.add_argument("--baseline", default="SELFCHECK_BASELINE.json",
                             help="waiver file (default: "
                                  "SELFCHECK_BASELINE.json)")
    p_selfcheck.add_argument("--update-baseline", action="store_true",
                             help="rewrite the baseline from current "
                                  "findings (keeps justifications, stamps "
                                  "new entries UNREVIEWED)")
    p_selfcheck.add_argument("--disable", action="append", default=[],
                             help="disable a rule or family, e.g. EV412, "
                                  "EV4xx=off, selfcheck=hint (repeatable)")
    p_selfcheck.add_argument("--json", action="store_true",
                             help="machine-readable report")
    p_selfcheck.add_argument("--color", action="store_true")
    p_selfcheck.set_defaults(fn=_cmd_selfcheck)

    p_anon = sub.add_parser("anonymize",
                            help="scrub names for safe sharing")
    p_anon.add_argument("path")
    p_anon.add_argument("-o", "--output", default="anonymized.ezvw")
    p_anon.add_argument("--key", required=True,
                        help="pseudonym key (same key keeps profiles "
                             "diffable)")
    p_anon.add_argument("--keep-lines", action="store_true",
                        dest="keep_lines")
    p_anon.add_argument("--keep-module", action="append", default=[],
                        help="module name to leave readable (repeatable)")
    p_anon.add_argument("--format", default=None)
    p_anon.set_defaults(fn=_cmd_anonymize)

    p_combine = sub.add_parser("combine",
                               help="merge profiles from different tools")
    p_combine.add_argument("paths", nargs="+")
    p_combine.add_argument("-o", "--output", default="combined.ezvw")
    p_combine.add_argument("--format", default=None)
    p_combine.set_defaults(fn=_cmd_combine)

    p_timeline = sub.add_parser("timeline",
                                help="snapshot-series timeline strip")
    p_timeline.add_argument("path")
    p_timeline.add_argument("--format", default=None)
    p_timeline.add_argument("--metric", default="inuse_bytes")
    p_timeline.add_argument("--width", type=int, default=60)
    p_timeline.add_argument("--window", default=None,
                            help="START:END snapshot range to summarize")
    p_timeline.add_argument("--combine", default="mean",
                            choices=["mean", "sum", "last"])
    p_timeline.set_defaults(fn=_cmd_timeline)

    p_study = sub.add_parser("study",
                             help="replay the §VII-D study simulation")
    p_study.add_argument("--seed", type=int, default=2024)
    p_study.set_defaults(fn=_cmd_study)

    p_formats = sub.add_parser("formats", help="list supported formats")
    p_formats.set_defaults(fn=_cmd_formats)

    p_engine = sub.add_parser(
        "engine-stats",
        help="analysis-engine cache counters (optionally exercising the "
             "engine on the given profiles, cold then warm)")
    p_engine.add_argument("paths", nargs="*")
    p_engine.add_argument("--format", default=None)
    p_engine.add_argument("--shape", default="top_down",
                          choices=["top_down", "bottom_up", "flat"])
    p_engine.add_argument("--json", action="store_true",
                          help="machine-readable snapshot")
    p_engine.set_defaults(fn=_cmd_engine_stats)

    p_obs = sub.add_parser(
        "obs",
        help="self-profiling: trace easyview's own execution")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_o_metrics = obs_sub.add_parser(
        "metrics",
        help="metric snapshot (optionally tracing a nested command)")
    p_o_metrics.add_argument("--format", default="text",
                             choices=["text", "json", "prom"],
                             help="text: human table; json: full snapshot; "
                                  "prom: Prometheus text exposition")
    p_o_metrics.add_argument("--json", action="store_true",
                             help="shorthand for --format json")
    p_o_metrics.add_argument("command", nargs=argparse.REMAINDER,
                             help="nested easyview command to run traced")
    p_o_metrics.set_defaults(fn=_cmd_obs_metrics)

    p_o_export = obs_sub.add_parser(
        "export",
        help="trace a nested command, export its spans")
    p_o_export.add_argument("--format", default="easyview",
                            choices=["easyview", "chrome", "jsonl"],
                            help="easyview: CCT profile of the traced "
                                 "run; chrome: Trace Event JSON; jsonl: "
                                 "one span per line")
    p_o_export.add_argument("-o", "--output", default=None,
                            help="output file (default stdout; .ezvw "
                                 "writes native binary)")
    p_o_export.add_argument("--capacity", type=int, default=None,
                            help="span ring capacity")
    p_o_export.add_argument("--sample-every", type=int, default=None,
                            dest="sample_every",
                            help="keep every Nth trace (1 = all)")
    p_o_export.add_argument("command", nargs=argparse.REMAINDER,
                            help="nested easyview command to run traced")
    p_o_export.set_defaults(fn=_cmd_obs_export)

    p_o_watch = obs_sub.add_parser(
        "watch",
        help="run a nested command traced, reporting live telemetry")
    p_o_watch.add_argument("--interval", type=float, default=2.0,
                           help="seconds between progress lines")
    p_o_watch.add_argument("command", nargs=argparse.REMAINDER,
                           help="nested easyview command to run traced")
    p_o_watch.set_defaults(fn=_cmd_obs_watch)

    p_store = sub.add_parser("store",
                             help="persistent profile repository (ProfStore)")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_s_ingest = store_sub.add_parser(
        "ingest", help="ingest profiles into the store")
    p_s_ingest.add_argument("store", help="store root directory")
    p_s_ingest.add_argument("paths", nargs="+")
    p_s_ingest.add_argument("--service", required=True)
    p_s_ingest.add_argument("--type", default="cpu")
    p_s_ingest.add_argument("--format", default=None)
    p_s_ingest.add_argument("--label", action="append", default=[],
                            help="k=v ingest label (repeatable)")
    p_s_ingest.add_argument("--no-flush", action="store_true",
                            dest="no_flush",
                            help="leave records in the WAL (no segment)")
    p_s_ingest.set_defaults(fn=_cmd_store_ingest)

    p_s_query = store_sub.add_parser(
        "query", help="merge-on-read view over matching records")
    p_s_query.add_argument("store")
    p_s_query.add_argument("query", nargs="*",
                           help="terms like service=api type=cpu since=6h")
    p_s_query.add_argument("--shape", default="top_down",
                           choices=["top_down", "bottom_up", "flat"])
    p_s_query.add_argument("--width", type=int, default=100)
    p_s_query.add_argument("--color", action="store_true")
    p_s_query.set_defaults(fn=_cmd_store_query)

    p_s_ls = store_sub.add_parser(
        "ls", help="list matching records without merging")
    p_s_ls.add_argument("store")
    p_s_ls.add_argument("query", nargs="*")
    p_s_ls.set_defaults(fn=_cmd_store_ls)

    p_s_compact = store_sub.add_parser(
        "compact", help="merge small segments into one")
    p_s_compact.add_argument("store")
    p_s_compact.add_argument("--small-records", type=int, default=32,
                             dest="small_records",
                             help="segments with at most this many records "
                                  "are compaction candidates")
    p_s_compact.set_defaults(fn=_cmd_store_compact)

    p_s_gc = store_sub.add_parser(
        "gc", help="apply retention: drop old segments")
    p_s_gc.add_argument("store")
    p_s_gc.add_argument("--max-age", default=None, dest="max_age",
                        help="drop segments wholly older than this "
                             "(e.g. 7d, 12h)")
    p_s_gc.add_argument("--max-bytes", type=int, default=None,
                        dest="max_bytes",
                        help="drop oldest segments while the store "
                             "exceeds this byte budget")
    p_s_gc.set_defaults(fn=_cmd_store_gc)

    p_s_stats = store_sub.add_parser(
        "stats", help="store counters + segment integrity re-hash")
    p_s_stats.add_argument("store")
    p_s_stats.add_argument("--no-verify", action="store_true",
                           dest="no_verify",
                           help="skip re-hashing segment content addresses")
    p_s_stats.add_argument("--json", action="store_true",
                           help="machine-readable snapshot")
    p_s_stats.set_defaults(fn=_cmd_store_stats)

    p_serve = sub.add_parser(
        "serve", help="Profile View Protocol server (stdio or socket)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="serve many clients on a TCP socket "
                              "(0 = ephemeral); default is stdio")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address for --port (default loopback)")
    p_serve.add_argument("--max-pending", type=int, default=1024,
                         help="global admission cap on queued+running "
                              "requests")
    p_serve.add_argument("--max-session-queue", type=int, default=16,
                         help="per-session request queue depth")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="dispatch pool width (default: engine sizing)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_agent = sub.add_parser(
        "agent", help="continuous-profiling capture agent")
    agent_sub = p_agent.add_subparsers(dest="agent_command", required=True)
    p_a_run = agent_sub.add_parser(
        "run", help="capture on a cadence and ship to a collector")
    p_a_run.add_argument("--collector", required=True,
                         help="collector base URL, e.g. http://host:9120")
    p_a_run.add_argument("--service", required=True,
                         help="service label stamped on every capture")
    p_a_run.add_argument("--host", default="",
                         help="host label (default: this hostname)")
    p_a_run.add_argument("--type", default="cpu",
                         help="profile type label")
    p_a_run.add_argument("--scenario", default="checkout",
                         help="ProgramMachine workload to capture "
                              "(see repro.profilers.workloads.SCENARIOS)")
    p_a_run.add_argument("--scenario-arg", action="append", default=[],
                         dest="scenario_arg",
                         help="k=v builder argument (repeatable)")
    p_a_run.add_argument("--self-profile", nargs=argparse.REMAINDER,
                         default=None, dest="self_profile",
                         help="instead of a scenario: sample this process "
                              "running the given nested easyview command "
                              "each tick")
    p_a_run.add_argument("--cadence", type=float, default=1.0,
                         help="seconds between captures")
    p_a_run.add_argument("--ticks", type=int, default=0,
                         help="stop after N captures (0 = run forever)")
    p_a_run.add_argument("--spool", default=None,
                         help="directory for captures that outlive "
                              "collector outages")
    p_a_run.add_argument("--max-attempts", type=int, default=4,
                         dest="max_attempts",
                         help="ship attempts per capture before spooling")
    p_a_run.add_argument("--timeout", type=float, default=5.0,
                         help="per-request HTTP timeout, seconds")
    p_a_run.add_argument("--label", action="append", default=[],
                         help="k=v capture label (repeatable)")
    p_a_run.set_defaults(fn=_cmd_agent_run)

    p_collector = sub.add_parser(
        "collector",
        help="HTTP collector: agent uploads into a ProfStore")
    p_collector.add_argument("--store", required=True,
                             help="store root directory")
    p_collector.add_argument("--port", type=int, default=9120,
                             help="listen port (0 = ephemeral)")
    p_collector.add_argument("--host", default="127.0.0.1",
                             help="bind address (default loopback)")
    p_collector.add_argument("--max-pending", type=int, default=32,
                             dest="max_pending",
                             help="global cap on in-flight uploads")
    p_collector.add_argument("--max-service-queue", type=int, default=8,
                             dest="max_service_queue",
                             help="per-service in-flight cap")
    p_collector.add_argument("--max-body-bytes", type=int,
                             default=8 * 1024 * 1024, dest="max_body_bytes",
                             help="largest accepted upload body")
    p_collector.set_defaults(fn=_cmd_collector)

    p_watch = sub.add_parser(
        "watch",
        help="scheduled regression watch over a stored capture stream")
    p_watch.add_argument("--store", required=True,
                         help="store root directory")
    p_watch.add_argument("query", nargs="*",
                         help="stream selector, e.g. service=api type=cpu")
    p_watch.add_argument("--window", default="60s",
                         help="current-window length (e.g. 30s, 5m)")
    p_watch.add_argument("--baseline", default=None,
                         help="baseline-window length (default: --window)")
    p_watch.add_argument("--metric", default=None,
                         help="metric to rank on (default: first :mean)")
    p_watch.add_argument("--shape", default="top_down",
                         choices=["top_down", "bottom_up", "flat"])
    p_watch.add_argument("--min-ratio", type=float, default=1.0,
                         dest="min_ratio",
                         help="report only current/baseline >= this")
    p_watch.add_argument("--top", type=int, default=20,
                         help="entries per report section")
    p_watch.add_argument("--now", type=int, default=None,
                         help="evaluate windows against this nanosecond "
                              "timestamp instead of the wall clock "
                              "(reproducible reports)")
    p_watch.add_argument("--ticks", type=int, default=1,
                         help="comparisons to run (1 = one-shot)")
    p_watch.add_argument("--interval", type=float, default=30.0,
                         help="seconds between comparisons")
    p_watch.add_argument("--json", default=None,
                         help="write the final report as JSON here "
                              "('-' for stdout, replacing the text form)")
    p_watch.add_argument("--fail-on-regression", action="store_true",
                         dest="fail_on_regression",
                         help="exit 2 when the final report has "
                              "regressions (CI gating)")
    p_watch.set_defaults(fn=_cmd_watch)

    p_bench = sub.add_parser("bench", help="run built-in benchmarks")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_b_codec = bench_sub.add_parser(
        "codec", help="wire codec fast path vs reference codec")
    p_b_codec.add_argument("--json", action="store_true",
                           help="print the full report as JSON")
    p_b_codec.add_argument("--quick", action="store_true",
                           help="small+medium tiers only (skip large)")
    p_b_codec.add_argument("--repeats", type=int, default=3,
                           help="best-of-N repetitions per measurement")
    p_b_codec.add_argument("--out", metavar="PATH",
                           help="also write the JSON report to PATH")
    p_b_codec.set_defaults(fn=_cmd_bench_codec)
    p_b_cct = bench_sub.add_parser(
        "cct", help="columnar CCT core vs per-node object tree")
    p_b_cct.add_argument("--json", action="store_true",
                         help="print the full report as JSON")
    p_b_cct.add_argument("--quick", action="store_true",
                         help="small+medium tiers only (skip large)")
    p_b_cct.add_argument("--repeats", type=int, default=3,
                         help="best-of-N repetitions per measurement")
    p_b_cct.add_argument("--out", metavar="PATH",
                         help="also write the JSON report to PATH")
    p_b_cct.set_defaults(fn=_cmd_bench_cct)
    p_b_serve = bench_sub.add_parser(
        "serve", help="concurrent socket serving vs single-client stdio")
    p_b_serve.add_argument("--json", action="store_true",
                           help="print the full report as JSON")
    p_b_serve.add_argument("--quick", action="store_true",
                           help="1/16/64 sessions only (skip the 1024 tier)")
    p_b_serve.add_argument("--out", metavar="PATH",
                           help="also write the JSON report to PATH")
    p_b_serve.set_defaults(fn=_cmd_bench_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:  # surface errors as exit status, not traceback
        print("easyview: error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
