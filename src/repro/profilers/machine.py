"""A deterministic synthetic program machine.

The paper's evaluation profiles real systems (a Go gRPC client, LULESH,
Spark).  Offline, we substitute a *program machine*: a weighted call-graph
whose deterministic execution produces profiles with prescribed shapes —
hotspots under chosen call paths, leaky allocation contexts, use/reuse
pairs, and diff-able variants.  Because the machine drives the standard
:class:`~repro.builder.ProfileBuilder`, the produced profiles exercise
exactly the code paths a real profiler's output would.

A program is a set of :class:`Func` specs.  Execution expands the call tree
from the entry function: each call contributes its ``self_cost`` (scaled by
a deterministic per-path jitter) at its context and recurses into its
callees ``calls``-many times.  Allocation, snapshot, and reuse events
attach to functions and are emitted at every expansion of that function's
context.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.monitor import PointKind
from ..core.profile import Profile
from ..errors import EasyViewError


@dataclass(frozen=True)
class Callee:
    """One outgoing call edge: target function, invocation count."""

    target: str
    calls: int = 1


@dataclass
class Func:
    """One synthetic function."""

    name: str
    file: str = ""
    line: int = 0
    module: str = ""
    self_cost: float = 0.0          # exclusive metric units per expansion
    callees: List[Callee] = field(default_factory=list)
    #: bytes allocated per expansion (emitted as allocation points)
    alloc_bytes: float = 0.0
    alloc_object: str = ""

    def frame(self) -> Frame:
        return intern_frame(self.name, self.file, self.line, self.module)


class ProgramMachine:
    """Executes a synthetic program into a profile."""

    def __init__(self, functions: Sequence[Func], entry: str = "main",
                 seed: int = 42, jitter: float = 0.0,
                 recursion_limit: int = 500) -> None:
        self._functions: Dict[str, Func] = {}
        for func in functions:
            if func.name in self._functions:
                raise EasyViewError("duplicate function %r" % func.name)
            self._functions[func.name] = func
        if entry not in self._functions:
            raise EasyViewError("entry function %r is not defined" % entry)
        self.entry = entry
        self.seed = seed
        #: relative amplitude of the deterministic per-path cost jitter
        self.jitter = jitter
        #: deepest acyclic call chain the program may declare; raise it for
        #: deliberately deep shapes (e.g. the 10k-frame stress workload)
        self.recursion_limit = recursion_limit
        self._check_recursion_budget()

    def function(self, name: str) -> Func:
        try:
            return self._functions[name]
        except KeyError:
            raise EasyViewError("undefined function %r" % name) from None

    def _check_recursion_budget(self, limit: Optional[int] = None) -> None:
        """Reject call graphs with acyclic paths deeper than the limit (the
        machine expands cycles only to a bounded depth, but catches typos
        early).

        The walk is an explicit-stack depth-first search, never Python
        recursion: a program as deep as its own budget allows (see
        ``recursion_limit``) must be *checkable* without tripping the
        interpreter's recursion limit.
        """
        if limit is None:
            limit = self.recursion_limit
        # Each frame: [name, callee iterator, deepest subtree so far].
        entry_func = self._functions[self.entry]
        stack = [[self.entry, iter(entry_func.callees), 0]]
        on_path = {self.entry}
        deepest = 0
        while stack:
            frame = stack[-1]
            pushed = False
            for callee in frame[1]:
                target = callee.target
                if target in on_path:
                    # Cycle edge: the callee contributes depth 0, the edge
                    # itself still counts one level.
                    if frame[2] < 1:
                        frame[2] = 1
                    continue
                func = self._functions.get(target)
                if func is None:
                    raise EasyViewError("call edge to undefined function %r"
                                        % target)
                stack.append([target, iter(func.callees), 0])
                on_path.add(target)
                pushed = True
                break
            if pushed:
                continue
            stack.pop()
            on_path.discard(frame[0])
            reached = frame[2]
            if stack:
                if stack[-1][2] < reached + 1:
                    stack[-1][2] = reached + 1
            else:
                deepest = reached
        if deepest > limit:
            raise EasyViewError("call graph deeper than %d" % limit)

    def _path_jitter(self, path_key: str) -> float:
        """Deterministic multiplicative jitter in [1-j, 1+j] for a path."""
        if not self.jitter:
            return 1.0
        digest = hashlib.sha1((str(self.seed) + path_key).encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 2 ** 32
        return 1.0 + self.jitter * (2.0 * unit - 1.0)

    def run(self, metric: str = "cpu", unit: str = "nanoseconds",
            tool: str = "machine", max_cycle_depth: int = 3,
            snapshots: int = 0,
            snapshot_decay: Optional[Dict[str, Sequence[float]]] = None
            ) -> Profile:
        """Execute the program and return its profile.

        ``snapshots`` > 0 additionally emits that many allocation snapshot
        captures per allocating context; ``snapshot_decay`` maps function
        names to a per-snapshot multiplier series describing how that
        context's live bytes evolve (default: constant — i.e. leak-shaped).
        """
        builder = ProfileBuilder(tool=tool)
        cost_metric = builder.metric(metric, unit=unit)
        alloc_metric = None
        if any(f.alloc_bytes for f in self._functions.values()):
            alloc_metric = builder.metric("alloc_bytes", unit="bytes")
            inuse_metric = builder.metric("inuse_bytes", unit="bytes")

        # Iterative expansion as an enter/exit depth-first walk.  The call
        # path and per-name cycle counters are *shared* mutable state,
        # pushed on enter and popped on exit — copying them per expansion
        # (the old tuple-of-frames approach) cost O(depth) per node, which
        # made deliberately deep shapes (10k-frame chains) quadratic.
        entry = self.function(self.entry)
        path: List[Frame] = []
        cycles: Dict[str, int] = {}
        #: (func, occurrence count, entering?); exits restore shared state.
        stack: List[Tuple[Func, float, bool]] = [(entry, 1.0, True)]
        while stack:
            func, count, entering = stack.pop()
            if not entering:
                path.pop()
                cycles[func.name] -= 1
                continue
            path.append(func.frame())
            cycles[func.name] = cycles.get(func.name, 0) + 1
            stack.append((func, count, False))
            if func.self_cost or (func.alloc_bytes
                                  and alloc_metric is not None):
                path_key = "/".join(f.name for f in path)
                scale = count * self._path_jitter(path_key)
                if func.self_cost:
                    builder.sample(path,
                                   {cost_metric: func.self_cost * scale})
                if func.alloc_bytes and alloc_metric is not None:
                    object_name = func.alloc_object or ("obj@%s" % func.name)
                    builder.allocation(object_name, path, {
                        alloc_metric: func.alloc_bytes * scale})
                    for sequence in range(1, snapshots + 1):
                        decay = 1.0
                        if snapshot_decay and func.name in snapshot_decay:
                            series = snapshot_decay[func.name]
                            decay = series[min(sequence - 1,
                                               len(series) - 1)]
                        builder.snapshot(sequence, path, {
                            inuse_metric: func.alloc_bytes * scale * decay})
            for callee_edge in reversed(func.callees):
                callee = self.function(callee_edge.target)
                if cycles.get(callee.name, 0) >= max_cycle_depth:
                    continue
                stack.append((callee, count * callee_edge.calls, True))
        return builder.build()


def add_reuse_pairs(profile: Profile,
                    pairs: Sequence[Tuple[Sequence, Sequence, Sequence, float]],
                    metric: str = "accesses") -> Profile:
    """Attach use/reuse monitoring points to an existing profile.

    Each entry is ``(alloc_stack, use_stack, reuse_stack, count)`` with
    stacks as builder frame specs (root first).  Returns the same profile.
    """
    from ..builder.builder import _coerce_frame
    index = profile.schema.get(metric)
    if index is None:
        from ..core.metric import Metric
        index = profile.add_metric(Metric(name=metric, unit="count"))
    from ..core.monitor import MonitoringPoint
    for alloc_stack, use_stack, reuse_stack, count in pairs:
        contexts = [
            profile.cct.add_path([_coerce_frame(s) for s in alloc_stack]),
            profile.cct.add_path([_coerce_frame(s) for s in use_stack]),
            profile.cct.add_path([_coerce_frame(s) for s in reuse_stack]),
        ]
        profile.add_point(MonitoringPoint(
            kind=PointKind.USE_REUSE, contexts=contexts,
            values={index: count}))
    return profile
