"""A deterministic synthetic program machine.

The paper's evaluation profiles real systems (a Go gRPC client, LULESH,
Spark).  Offline, we substitute a *program machine*: a weighted call-graph
whose deterministic execution produces profiles with prescribed shapes —
hotspots under chosen call paths, leaky allocation contexts, use/reuse
pairs, and diff-able variants.  Because the machine drives the standard
:class:`~repro.builder.ProfileBuilder`, the produced profiles exercise
exactly the code paths a real profiler's output would.

A program is a set of :class:`Func` specs.  Execution expands the call tree
from the entry function: each call contributes its ``self_cost`` (scaled by
a deterministic per-path jitter) at its context and recurses into its
callees ``calls``-many times.  Allocation, snapshot, and reuse events
attach to functions and are emitted at every expansion of that function's
context.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.monitor import PointKind
from ..core.profile import Profile
from ..errors import EasyViewError


@dataclass(frozen=True)
class Callee:
    """One outgoing call edge: target function, invocation count."""

    target: str
    calls: int = 1


@dataclass
class Func:
    """One synthetic function."""

    name: str
    file: str = ""
    line: int = 0
    module: str = ""
    self_cost: float = 0.0          # exclusive metric units per expansion
    callees: List[Callee] = field(default_factory=list)
    #: bytes allocated per expansion (emitted as allocation points)
    alloc_bytes: float = 0.0
    alloc_object: str = ""

    def frame(self) -> Frame:
        return intern_frame(self.name, self.file, self.line, self.module)


class ProgramMachine:
    """Executes a synthetic program into a profile."""

    def __init__(self, functions: Sequence[Func], entry: str = "main",
                 seed: int = 42, jitter: float = 0.0) -> None:
        self._functions: Dict[str, Func] = {}
        for func in functions:
            if func.name in self._functions:
                raise EasyViewError("duplicate function %r" % func.name)
            self._functions[func.name] = func
        if entry not in self._functions:
            raise EasyViewError("entry function %r is not defined" % entry)
        self.entry = entry
        self.seed = seed
        #: relative amplitude of the deterministic per-path cost jitter
        self.jitter = jitter
        self._check_recursion_budget()

    def function(self, name: str) -> Func:
        try:
            return self._functions[name]
        except KeyError:
            raise EasyViewError("undefined function %r" % name) from None

    def _check_recursion_budget(self, limit: int = 500) -> None:
        """Reject call graphs with cycles deeper than ``limit`` (the machine
        expands cycles only to a bounded depth, but catches typos early)."""
        color: Dict[str, int] = {}

        def depth(name: str, seen: Tuple[str, ...]) -> int:
            if name in seen:
                return 0  # cycle: bounded elsewhere
            func = self._functions.get(name)
            if func is None:
                raise EasyViewError("call edge to undefined function %r"
                                    % name)
            best = 0
            for callee in func.callees:
                best = max(best, 1 + depth(callee.target, seen + (name,)))
            return best

        if depth(self.entry, ()) > limit:
            raise EasyViewError("call graph deeper than %d" % limit)

    def _path_jitter(self, path_key: str) -> float:
        """Deterministic multiplicative jitter in [1-j, 1+j] for a path."""
        if not self.jitter:
            return 1.0
        digest = hashlib.sha1((str(self.seed) + path_key).encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 2 ** 32
        return 1.0 + self.jitter * (2.0 * unit - 1.0)

    def run(self, metric: str = "cpu", unit: str = "nanoseconds",
            tool: str = "machine", max_cycle_depth: int = 3,
            snapshots: int = 0,
            snapshot_decay: Optional[Dict[str, Sequence[float]]] = None
            ) -> Profile:
        """Execute the program and return its profile.

        ``snapshots`` > 0 additionally emits that many allocation snapshot
        captures per allocating context; ``snapshot_decay`` maps function
        names to a per-snapshot multiplier series describing how that
        context's live bytes evolve (default: constant — i.e. leak-shaped).
        """
        builder = ProfileBuilder(tool=tool)
        cost_metric = builder.metric(metric, unit=unit)
        alloc_metric = None
        if any(f.alloc_bytes for f in self._functions.values()):
            alloc_metric = builder.metric("alloc_bytes", unit="bytes")
            inuse_metric = builder.metric("inuse_bytes", unit="bytes")

        # Iterative expansion: (function, path frames, occurrences, cycle
        # counter per function name).
        entry = self.function(self.entry)
        stack: List[Tuple[Func, Tuple[Frame, ...], float, Tuple[Tuple[str, int], ...]]]
        stack = [(entry, (entry.frame(),), 1.0, ((entry.name, 1),))]
        while stack:
            func, path, count, cycles = stack.pop()
            path_key = "/".join(f.name for f in path)
            scale = count * self._path_jitter(path_key)
            if func.self_cost:
                builder.sample(path, {cost_metric: func.self_cost * scale})
            if func.alloc_bytes and alloc_metric is not None:
                object_name = func.alloc_object or ("obj@%s" % func.name)
                builder.allocation(object_name, path, {
                    alloc_metric: func.alloc_bytes * scale})
                for sequence in range(1, snapshots + 1):
                    decay = 1.0
                    if snapshot_decay and func.name in snapshot_decay:
                        series = snapshot_decay[func.name]
                        decay = series[min(sequence - 1, len(series) - 1)]
                    builder.snapshot(sequence, path, {
                        inuse_metric: func.alloc_bytes * scale * decay})
            for callee_edge in reversed(func.callees):
                callee = self.function(callee_edge.target)
                depth_so_far = dict(cycles).get(callee.name, 0)
                if depth_so_far >= max_cycle_depth:
                    continue
                new_cycles = tuple(
                    (name, depth + 1 if name == callee.name else depth)
                    for name, depth in cycles)
                if callee.name not in dict(cycles):
                    new_cycles = new_cycles + ((callee.name, 1),)
                stack.append((callee, path + (callee.frame(),),
                              count * callee_edge.calls, new_cycles))
        return builder.build()


def add_reuse_pairs(profile: Profile,
                    pairs: Sequence[Tuple[Sequence, Sequence, Sequence, float]],
                    metric: str = "accesses") -> Profile:
    """Attach use/reuse monitoring points to an existing profile.

    Each entry is ``(alloc_stack, use_stack, reuse_stack, count)`` with
    stacks as builder frame specs (root first).  Returns the same profile.
    """
    from ..builder.builder import _coerce_frame
    index = profile.schema.get(metric)
    if index is None:
        from ..core.metric import Metric
        index = profile.add_metric(Metric(name=metric, unit="count"))
    from ..core.monitor import MonitoringPoint
    for alloc_stack, use_stack, reuse_stack, count in pairs:
        contexts = [
            profile.cct.add_path([_coerce_frame(s) for s in alloc_stack]),
            profile.cct.add_path([_coerce_frame(s) for s in use_stack]),
            profile.cct.add_path([_coerce_frame(s) for s in reuse_stack]),
        ]
        profile.add_point(MonitoringPoint(
            kind=PointKind.USE_REUSE, contexts=contexts,
            values={index: count}))
    return profile
