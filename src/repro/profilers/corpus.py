"""Synthetic pprof corpus generation for the response-time study (Fig. 5).

The paper gleans real PProf profiles of industrial services from ~1 MB to
~1 GB.  Offline we generate structurally equivalent binaries: realistic
function/location/sample tables, Go-flavored symbol names, plausible stack
depths, and a long-tailed value distribution.  Sizes are scaled to a laptop
benchmark budget; the size *ratios* between tiers mirror the paper's 1 MB /
100 MB / 1 GB spread on a log scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..proto import pprof_pb

_PACKAGES = ["runtime", "net/http", "encoding/json", "database/sql",
             "google.golang.org/grpc", "github.com/acme/api",
             "github.com/acme/storage", "github.com/acme/cache",
             "bufio", "sync", "context", "crypto/tls"]
_VERBS = ["Serve", "Handle", "Read", "Write", "Marshal", "Unmarshal",
          "Get", "Put", "Flush", "Dial", "Query", "Scan", "Lock",
          "Process", "Encode", "Decode", "Merge", "Sort", "Hash"]
_NOUNS = ["Request", "Response", "Buffer", "Conn", "Row", "Block",
          "Header", "Body", "Frame", "Chunk", "Entry", "Index", "Shard"]


@dataclass(frozen=True)
class CorpusSpec:
    """Shape parameters for one synthetic pprof profile."""

    name: str
    functions: int
    samples: int
    max_depth: int
    seed: int = 1234

    def estimated_tier(self) -> str:
        return self.name


#: The benchmark tiers standing in for the paper's 1 MB → 1 GB range.
TIERS: Tuple[CorpusSpec, ...] = (
    CorpusSpec("small", functions=300, samples=2_000, max_depth=24),
    CorpusSpec("medium", functions=1_500, samples=20_000, max_depth=40),
    CorpusSpec("large", functions=6_000, samples=120_000, max_depth=56),
    CorpusSpec("xlarge", functions=12_000, samples=400_000, max_depth=64),
)


def tier(name: str) -> CorpusSpec:
    """Look up a tier by name."""
    for spec in TIERS:
        if spec.name == name:
            return spec
    raise KeyError("unknown corpus tier %r (have: %s)"
                   % (name, ", ".join(s.name for s in TIERS)))


def generate(spec: CorpusSpec) -> pprof_pb.Profile:
    """Generate one pprof profile message from a spec.

    The call structure is a random DAG biased toward a few hub functions
    (like real services: one HTTP loop fans into everything), and sample
    values follow a Pareto-ish tail so a handful of paths dominate — the
    regime where viewer efficiency differences show.
    """
    rng = random.Random(spec.seed)
    profile = pprof_pb.Profile()
    strings: Dict[str, int] = {"": 0}
    table = [""]

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(table)
            table.append(text)
            strings[text] = index
        return index

    profile.sample_type = [
        pprof_pb.ValueType(type=intern("cpu"), unit=intern("nanoseconds")),
        pprof_pb.ValueType(type=intern("samples"), unit=intern("count")),
    ]
    profile.period_type = pprof_pb.ValueType(type=intern("cpu"),
                                             unit=intern("nanoseconds"))
    profile.period = 10_000_000  # 100 Hz

    binary = pprof_pb.Mapping(id=1, memory_start=0x400000,
                              memory_limit=0x800000,
                              filename=intern("/usr/bin/service"),
                              has_functions=True, has_filenames=True,
                              has_line_numbers=True)
    profile.mapping.append(binary)

    # Functions with Go-flavored names and plausible files.
    for i in range(spec.functions):
        package = rng.choice(_PACKAGES)
        name = "%s.(*%s).%s" % (package, rng.choice(_NOUNS),
                                rng.choice(_VERBS))
        if rng.random() < 0.3:
            name = "%s.%s%s" % (package, rng.choice(_VERBS),
                                rng.choice(_NOUNS))
        profile.function.append(pprof_pb.Function(
            id=i + 1,
            name=intern("%s#%d" % (name, i)),
            system_name=intern(name),
            filename=intern("%s/%s.go" % (package,
                                          rng.choice(_NOUNS).lower())),
            start_line=rng.randint(1, 900)))
        profile.location.append(pprof_pb.Location(
            id=i + 1, mapping_id=1,
            address=0x400000 + 64 * (i + 1),
            line=[pprof_pb.Line(function_id=i + 1,
                                line=rng.randint(1, 950))]))

    # Hub-biased call structure: low ids call high ids, hubs everywhere.
    hubs = list(range(1, min(12, spec.functions) + 1))

    def random_stack() -> List[int]:
        depth = rng.randint(3, spec.max_depth)
        stack = [rng.choice(hubs)]
        for _ in range(depth - 1):
            parent = stack[-1]
            if rng.random() < 0.2:
                nxt = rng.choice(hubs)
            else:
                lo = min(parent + 1, spec.functions)
                nxt = rng.randint(lo, spec.functions)
            stack.append(nxt)
        stack.reverse()  # pprof stacks are leaf-first
        return stack

    # A limited path pool: real profiles repeat call paths heavily, which
    # is what makes prefix-merging effective.
    pool = [random_stack() for _ in range(max(spec.samples // 20, 10))]
    for _ in range(spec.samples):
        stack = rng.choice(pool)
        if rng.random() < 0.15:
            stack = random_stack()
        cpu = int(rng.paretovariate(1.5) * profile.period)
        profile.sample.append(pprof_pb.Sample(
            location_id=list(stack), value=[cpu, max(cpu // profile.period, 1)]))

    profile.string_table = table
    profile.time_nanos = 1_700_000_000_000_000_000
    profile.duration_nanos = spec.samples * profile.period
    return profile


def generate_bytes(spec: CorpusSpec, compress: bool = True) -> bytes:
    """Generate and serialize one corpus profile."""
    return pprof_pb.dumps(generate(spec), compress=compress)


def write_corpus(directory: str,
                 tiers: Optional[Tuple[CorpusSpec, ...]] = None
                 ) -> Dict[str, str]:
    """Write every tier to ``directory``; returns name → path."""
    import os
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for spec in tiers or TIERS:
        path = os.path.join(directory, "%s.pb.gz" % spec.name)
        with open(path, "wb") as handle:
            handle.write(generate_bytes(spec))
        paths[spec.name] = path
    return paths
