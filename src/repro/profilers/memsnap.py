"""A heap-snapshot profiler built on :mod:`tracemalloc`.

Reproduces PProf's heap-profiling workflow from §VII-C1: capture the live
allocations periodically, attribute them to allocation call paths, and emit
each capture as a snapshot monitoring point — the input format of the
aggregate view and the leak detector.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Callable, List, Optional, Tuple

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile


class HeapSnapshotProfiler:
    """Periodic live-heap capture for the current process."""

    def __init__(self, max_frames: int = 16) -> None:
        self.max_frames = max_frames
        self._builder: Optional[ProfileBuilder] = None
        self._inuse_metric = 0
        self._count_metric = 0
        self._sequence = 0

    def start(self) -> None:
        """Start allocation tracking."""
        if self._builder is not None:
            raise RuntimeError("heap profiler already running")
        tracemalloc.start(self.max_frames)
        self._builder = ProfileBuilder(tool="repro-heap",
                                       time_nanos=time.time_ns())
        self._inuse_metric = self._builder.metric("inuse_bytes",
                                                  unit="bytes")
        self._count_metric = self._builder.metric("inuse_objects",
                                                  unit="count")
        self._sequence = 0

    def capture(self) -> int:
        """Take one snapshot of the live heap; returns its sequence number.

        Each distinct allocation call path becomes one snapshot point with
        the path's current live bytes and object count.
        """
        if self._builder is None:
            raise RuntimeError("heap profiler is not running")
        self._sequence += 1
        snapshot = tracemalloc.take_snapshot()
        for stat in snapshot.statistics("traceback"):
            stack = self._stack_for(stat.traceback)
            if not stack:
                continue
            self._builder.snapshot(self._sequence, stack, {
                self._inuse_metric: float(stat.size),
                self._count_metric: float(stat.count),
            })
        return self._sequence

    def stop(self) -> Profile:
        """Stop tracking and return the profile with all captures."""
        if self._builder is None:
            raise RuntimeError("heap profiler is not running")
        tracemalloc.stop()
        profile = self._builder.build()
        self._builder = None
        return profile

    @staticmethod
    def _stack_for(traceback: "tracemalloc.Traceback") -> List[Frame]:
        """Root-first frames for a tracemalloc traceback."""
        frames = [intern_frame(name="<frame>", file=frame.filename,
                               line=frame.lineno)
                  for frame in traceback]
        # tracemalloc stores oldest-last; EasyView stacks are root-first.
        frames.reverse()
        return frames


def snapshot_workload(fn: Callable[[int], Any], steps: int,
                      max_frames: int = 16) -> Profile:
    """Run ``fn(step)`` for each step, capturing the heap after each.

    The analogue of the paper's "every 0.1 second" cadence, but driven by
    workload steps for determinism.
    """
    profiler = HeapSnapshotProfiler(max_frames=max_frames)
    profiler.start()
    try:
        for step in range(steps):
            fn(step)
            profiler.capture()
    finally:
        profile = profiler.stop()
    return profile
