"""Workload library: synthetic equivalents of the paper's case studies.

Each generator reproduces the *shape* the corresponding section of the
paper relies on:

* :func:`grpc_client_profile` — §VII-C1 / Fig. 4: a Go gRPC benchmark
  client whose HTTP-client creation paths (``bufio.NewReaderSize``,
  ``transport.newBufWriter``) leak, while ``passthrough`` reclaims.
* :func:`lulesh_profile` — §VII-C2 / Fig. 6: LULESH with a ``brk``/libc
  hotspot under many allocation call paths; swapping the allocator model to
  TCMalloc recovers ≈30% of total time.
* :func:`lulesh_reuse_profile` — Fig. 7: DrCCTProf-style use/reuse pairs in
  ``CalcVolumeForceForElems``/``CalcHourglassForceForElems``; fusing the
  flagged loops recovers ≈28%.
* :func:`spark_profile` — Fig. 3: Async-Profiler-style Java stacks for a
  SparkBench run with RDD vs SQL Dataset APIs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.profile import Profile
from .machine import Callee, Func, ProgramMachine, add_reuse_pairs

GO_MOD = "rpcx-benchmark"
GRPC_MOD = "google.golang.org/grpc"
BUFIO_MOD = "bufio"
LIBC = "libc-2.31.so"
LULESH_MOD = "lulesh2.0"
TCMALLOC = "libtcmalloc.so"


def grpc_client_profile(clients: int = 50, snapshots: int = 20,
                        seed: int = 7) -> Profile:
    """Memory profile of the rpcx-benchmark gRPC client with PProf-style
    periodic heap snapshots.

    Two allocation contexts on the client-creation path retain their memory
    across all snapshots (the potential leaks: connections never closed);
    the request-serving ``passthrough`` buffers are reclaimed toward the end
    of the run (healthy).
    """
    leak_profile = [1.0] * snapshots  # continuously high, no reclamation
    grow_profile = [min(1.0, 0.3 + 0.05 * i) for i in range(snapshots)]
    healthy_profile = [max(0.05, 1.0 - 0.09 * i) for i in range(snapshots)]

    functions = [
        Func("main", "client/main.go", 12, GO_MOD,
             callees=[Callee("benchmark.Run")]),
        Func("benchmark.Run", "client/bench.go", 40, GO_MOD, self_cost=5e6,
             callees=[Callee("grpc.Dial", calls=clients),
                      Callee("client.Invoke", calls=clients * 4)]),
        Func("grpc.Dial", "clientconn.go", 104, GRPC_MOD, self_cost=2e6,
             callees=[Callee("transport.newHTTP2Client")]),
        Func("transport.newHTTP2Client", "http2_client.go", 212, GRPC_MOD,
             self_cost=1e6,
             callees=[Callee("bufio.NewReaderSize"),
                      Callee("transport.newBufWriter")]),
        Func("bufio.NewReaderSize", "bufio.go", 60, BUFIO_MOD,
             self_cost=4e5, alloc_bytes=32768,
             alloc_object="bufio.Reader"),
        Func("transport.newBufWriter", "http2_client.go", 380, GRPC_MOD,
             self_cost=3e5, alloc_bytes=65536,
             alloc_object="transport.bufWriter"),
        Func("client.Invoke", "call.go", 35, GRPC_MOD, self_cost=8e5,
             callees=[Callee("codec.Marshal"), Callee("passthrough")]),
        Func("codec.Marshal", "codec.go", 88, GRPC_MOD, self_cost=5e5,
             alloc_bytes=2048, alloc_object="marshalBuf"),
        Func("passthrough", "resolver.go", 21, GRPC_MOD, self_cost=6e5,
             alloc_bytes=16384, alloc_object="passthroughBuf"),
    ]
    machine = ProgramMachine(functions, entry="main", seed=seed,
                             jitter=0.05)
    return machine.run(metric="cpu", tool="pprof", snapshots=snapshots,
                       snapshot_decay={
                           "bufio.NewReaderSize": leak_profile,
                           "transport.newBufWriter": grow_profile,
                           "codec.Marshal": healthy_profile,
                           "passthrough": healthy_profile,
                       })


#: Fraction of total LULESH time the libc allocator (brk et al.) consumes in
#: the paper's measurement; the TCMalloc swap eliminates most of it for the
#: reported ≈30% whole-program speedup.
LULESH_ALLOCATOR_SHARE = 0.33


def lulesh_profile(allocator: str = "libc", scale: int = 8,
                   seed: int = 11) -> Profile:
    """CPU-time profile of a LULESH-like run (HPCToolkit-style).

    With ``allocator="libc"``, memory management (``malloc``/``free`` →
    ``brk``) is the dominant leaf across several call paths, exactly the
    Fig. 6 picture.  With ``allocator="tcmalloc"``, the allocator leaf
    costs shrink to ~10% of their libc values, modeling the TCMalloc swap.
    """
    if allocator not in ("libc", "tcmalloc"):
        raise ValueError("allocator must be 'libc' or 'tcmalloc'")
    cheap = allocator == "tcmalloc"
    alloc_module = TCMALLOC if cheap else LIBC
    alloc_leaf = "tc_alloc" if cheap else "brk"
    # Allocator leaf cost, tuned so libc's brk consumes ≈26% of total time
    # (0.9× of which the TCMalloc model eliminates ⇒ ≈1.3× whole-program
    # speedup, the paper's "30% speedup" observation).
    brk_cost = 1.5e5 * (0.10 if cheap else 1.0)

    functions = [
        Func("main", "lulesh.cc", 2650, LULESH_MOD,
             callees=[Callee("LagrangeLeapFrog", calls=scale)]),
        Func("LagrangeLeapFrog", "lulesh.cc", 2350, LULESH_MOD,
             self_cost=2e5,
             callees=[Callee("LagrangeNodal"),
                      Callee("LagrangeElements")]),
        Func("LagrangeNodal", "lulesh.cc", 1050, LULESH_MOD, self_cost=3e5,
             callees=[Callee("CalcForceForNodes")]),
        Func("CalcForceForNodes", "lulesh.cc", 980, LULESH_MOD,
             self_cost=2e5,
             callees=[Callee("CalcVolumeForceForElems")]),
        Func("CalcVolumeForceForElems", "lulesh.cc", 890, LULESH_MOD,
             self_cost=9e5,
             callees=[Callee("CalcHourglassForceForElems"),
                      Callee("Allocate", calls=3)]),
        Func("CalcHourglassForceForElems", "lulesh.cc", 720, LULESH_MOD,
             self_cost=14e5,
             callees=[Callee("Allocate", calls=4),
                      Callee("Release", calls=4)]),
        Func("LagrangeElements", "lulesh.cc", 1900, LULESH_MOD,
             self_cost=4e5,
             callees=[Callee("CalcLagrangeElements"),
                      Callee("ApplyMaterialPropertiesForElems")]),
        Func("CalcLagrangeElements", "lulesh.cc", 1450, LULESH_MOD,
             self_cost=6e5,
             callees=[Callee("Allocate", calls=2), Callee("Release")]),
        Func("ApplyMaterialPropertiesForElems", "lulesh.cc", 2200,
             LULESH_MOD, self_cost=5e5,
             callees=[Callee("EvalEOSForElems")]),
        Func("EvalEOSForElems", "lulesh.cc", 2050, LULESH_MOD,
             self_cost=5e5,
             callees=[Callee("Allocate", calls=2), Callee("Release")]),
        Func("Allocate", "lulesh.cc", 120, LULESH_MOD, self_cost=5e4,
             callees=[Callee("malloc")]),
        Func("Release", "lulesh.cc", 131, LULESH_MOD, self_cost=3e4,
             callees=[Callee("free")]),
        Func("malloc", "malloc.c", 3060, alloc_module, self_cost=1e5,
             callees=[Callee(alloc_leaf)]),
        Func("free", "malloc.c", 3101, alloc_module, self_cost=8e4,
             callees=[Callee(alloc_leaf)]),
        Func(alloc_leaf, "sbrk.c" if not cheap else "tcmalloc.cc",
             45, alloc_module, self_cost=brk_cost),
    ]
    machine = ProgramMachine(functions, entry="main", seed=seed,
                             jitter=0.03)
    return machine.run(metric="cpu_time", unit="nanoseconds",
                       tool="hpctoolkit")


def lulesh_reuse_profile(scale: int = 4, seed: int = 13) -> Profile:
    """LULESH with DrCCTProf-style use/reuse pairs attached (Fig. 7).

    The dominant pair lives in ``CalcVolumeForceForElems`` →
    ``CalcHourglassForceForElems``: the hourglass-force loop re-reads the
    element arrays the volume-force loop just produced, from sibling call
    sites — the fusable pattern whose optimization the paper credits with a
    28% speedup.
    """
    profile = lulesh_profile(scale=scale, seed=seed)
    base = [("main", "lulesh.cc", 2650, LULESH_MOD),
            ("LagrangeLeapFrog", "lulesh.cc", 2350, LULESH_MOD),
            ("LagrangeNodal", "lulesh.cc", 1050, LULESH_MOD),
            ("CalcForceForNodes", "lulesh.cc", 980, LULESH_MOD)]
    volume = base + [("CalcVolumeForceForElems", "lulesh.cc", 890,
                      LULESH_MOD)]
    hourglass = volume + [("CalcHourglassForceForElems", "lulesh.cc", 720,
                           LULESH_MOD)]
    elements = [("main", "lulesh.cc", 2650, LULESH_MOD),
                ("LagrangeLeapFrog", "lulesh.cc", 2350, LULESH_MOD),
                ("LagrangeElements", "lulesh.cc", 1900, LULESH_MOD),
                ("CalcLagrangeElements", "lulesh.cc", 1450, LULESH_MOD)]
    alloc_dvdx = volume + [("Allocate", "lulesh.cc", 120, LULESH_MOD),
                           ("dvdx[]", "lulesh.cc", 890, LULESH_MOD)]
    alloc_determ = base + [("Allocate", "lulesh.cc", 120, LULESH_MOD),
                           ("determ[]", "lulesh.cc", 980, LULESH_MOD)]
    pairs = [
        # The headline pair: produced in the volume loop, re-read in the
        # hourglass loop — sibling calls under CalcVolumeForceForElems.
        (alloc_dvdx,
         volume + [("IntegrateStressForElems", "lulesh.cc", 850, LULESH_MOD)],
         hourglass + [("CalcFBHourglassForceForElems", "lulesh.cc", 610,
                       LULESH_MOD)],
         48000.0 * scale),
        # A smaller cross-phase reuse (not fusable: different iterations).
        (alloc_determ,
         volume + [("IntegrateStressForElems", "lulesh.cc", 850, LULESH_MOD)],
         elements + [("CalcKinematicsForElems", "lulesh.cc", 1380,
                      LULESH_MOD)],
         9000.0 * scale),
        # Self-reuse inside the hourglass loop (already local).
        (alloc_dvdx,
         hourglass + [("CalcFBHourglassForceForElems", "lulesh.cc", 610,
                       LULESH_MOD)],
         hourglass + [("CalcFBHourglassForceForElems", "lulesh.cc", 612,
                       LULESH_MOD)],
         15000.0 * scale),
    ]
    return add_reuse_pairs(profile, pairs)


#: Fraction of hourglass-loop time the fused variant saves (paper: ≈28%
#: whole-program; our model applies the saving to the fused loops' costs).
LULESH_FUSION_SAVING = 0.55


def lulesh_fused_profile(scale: int = 4, seed: int = 13) -> Profile:
    """LULESH after the loop fusion of §VII-C2 (for before/after benches).

    The fused loop eliminates the redundant traversal in
    ``CalcHourglassForceForElems`` and part of the volume loop's stores.
    """
    profile = lulesh_profile(scale=scale, seed=seed)
    index = profile.schema.index_of("cpu_time")
    # Model the fusion: the fused loop eliminates the hourglass loop's
    # redundant traversal *and* its temporary allocations, so the whole
    # subtree under CalcHourglassForceForElems shrinks; the volume loop
    # loses part of its stores.
    for root in profile.find_by_name("CalcHourglassForceForElems"):
        for node in root.walk():
            node.metrics[index] = (node.metrics.get(index, 0.0)
                                   * (1 - LULESH_FUSION_SAVING))
    for node in profile.find_by_name("CalcVolumeForceForElems"):
        node.metrics[index] = node.metrics.get(index, 0.0) * (1 - 0.35)
    profile.cct.clear_inclusive_cache()
    return profile


SPARK_MOD = "spark-assembly"
SCALA_MOD = "scala-library"


def spark_profile(api: str = "rdd", scale: int = 6, seed: int = 17
                  ) -> Profile:
    """Async-Profiler-style CPU profile of a SparkBench job (Fig. 3).

    ``api="rdd"`` runs through ``ShuffleMapTask`` with the costly
    iterator/shuffle pipeline; ``api="sql"`` keeps the common executor
    scaffolding but replaces the RDD iterator chain with the (cheaper)
    SQL execution engine and bypasses most of the shuffle.
    """
    if api not in ("rdd", "sql"):
        raise ValueError("api must be 'rdd' or 'sql'")

    common = [
        Func("java.lang.Thread.run", "Thread.java", 748, "rt.jar",
             callees=[Callee("ThreadPoolExecutor$Worker.run")]),
        Func("ThreadPoolExecutor$Worker.run", "ThreadPoolExecutor.java",
             624, "rt.jar",
             callees=[Callee("ThreadPoolExecutor.runWorker")]),
        Func("ThreadPoolExecutor.runWorker", "ThreadPoolExecutor.java",
             1149, "rt.jar",
             callees=[Callee("Executor$TaskRunner.run")]),
        Func("Executor$TaskRunner.run", "Executor.scala", 414, SPARK_MOD,
             self_cost=2e5,
             callees=[Callee("Task.run", calls=scale)]),
        Func("Task.run", "Task.scala", 123, SPARK_MOD, self_cost=1e5,
             callees=[Callee("ShuffleMapTask.runTask")]),
    ]
    if api == "rdd":
        variant = [
            Func("ShuffleMapTask.runTask", "ShuffleMapTask.scala", 99,
                 SPARK_MOD, self_cost=2e5,
                 callees=[Callee("RDD.iterator", calls=2),
                          Callee("BypassMergeSortShuffleWriter.write")]),
            Func("RDD.iterator", "RDD.scala", 288, SPARK_MOD, self_cost=3e5,
                 callees=[Callee("MapPartitionsRDD.compute")]),
            Func("MapPartitionsRDD.compute", "MapPartitionsRDD.scala", 52,
                 SPARK_MOD, self_cost=4e5,
                 callees=[Callee("Iterator$$anon$11.next", calls=3)]),
            Func("Iterator$$anon$11.next", "Iterator.scala", 410, SCALA_MOD,
                 self_cost=5e5,
                 callees=[Callee("CartesianRDD.compute")]),
            Func("CartesianRDD.compute", "CartesianRDD.scala", 75,
                 SPARK_MOD, self_cost=5e5),
            Func("BypassMergeSortShuffleWriter.write",
                 "BypassMergeSortShuffleWriter.java", 205, SPARK_MOD,
                 self_cost=16e5,
                 callees=[Callee("DiskBlockObjectWriter.write", calls=2)]),
            Func("DiskBlockObjectWriter.write",
                 "DiskBlockObjectWriter.scala", 248, SPARK_MOD,
                 self_cost=8e5),
        ]
    else:
        variant = [
            Func("ShuffleMapTask.runTask", "ShuffleMapTask.scala", 99,
                 SPARK_MOD, self_cost=2e5,
                 callees=[Callee("WholeStageCodegenExec.doExecute"),
                          Callee("UnsafeShuffleWriter.write")]),
            Func("WholeStageCodegenExec.doExecute",
                 "WholeStageCodegenExec.scala", 608, SPARK_MOD,
                 self_cost=5e5,
                 callees=[Callee("GeneratedIterator.processNext", calls=3)]),
            Func("GeneratedIterator.processNext", "generated.java", 41,
                 SPARK_MOD, self_cost=9e5,
                 callees=[Callee("UnsafeRow.write")]),
            Func("UnsafeRow.write", "UnsafeRow.java", 183, SPARK_MOD,
                 self_cost=3e5),
            Func("UnsafeShuffleWriter.write", "UnsafeShuffleWriter.java",
                 175, SPARK_MOD, self_cost=9e5),
        ]
    machine = ProgramMachine(common + variant,
                             entry="java.lang.Thread.run", seed=seed,
                             jitter=0.04)
    profile = machine.run(metric="cpu", unit="nanoseconds",
                          tool="async-profiler")
    profile.meta.attributes["api"] = api
    return profile


def redundancy_workload(scale: int = 4, seed: int = 23) -> Profile:
    """A RedSpy/Witch-style redundancy profile (§IV-A pairs).

    The shape is the classic dead-store pattern: an initialization loop
    zeroes a matrix that the compute loop immediately overwrites (a
    cross-function dead/killing pair whose fix hoists to their common
    caller), plus an intra-function pair where a temporary is written
    twice on the same path.
    """
    from ..builder.builder import _coerce_frame
    from ..core.monitor import MonitoringPoint, PointKind

    functions = [
        Func("main", "solver.c", 10, "solver",
             callees=[Callee("iterate", calls=scale)]),
        Func("iterate", "solver.c", 40, "solver", self_cost=2e5,
             callees=[Callee("init_matrix"), Callee("compute_matrix")]),
        Func("init_matrix", "solver.c", 80, "solver", self_cost=6e5),
        Func("compute_matrix", "solver.c", 120, "solver", self_cost=18e5,
             callees=[Callee("update_cell", calls=4)]),
        Func("update_cell", "solver.c", 160, "solver", self_cost=3e5),
    ]
    machine = ProgramMachine(functions, entry="main", seed=seed,
                             jitter=0.02)
    profile = machine.run(metric="stores", unit="count", tool="redspy")

    ops = profile.schema.get("redundant_ops")
    if ops is None:
        from ..core.metric import Metric
        ops = profile.add_metric(Metric("redundant_ops", unit="count"))

    base = [("main", "solver.c", 10, "solver"),
            ("iterate", "solver.c", 40, "solver")]
    init = base + [("init_matrix", "solver.c", 80, "solver")]
    compute = base + [("compute_matrix", "solver.c", 120, "solver")]
    cell_a = compute + [("update_cell", "solver.c", 160, "solver")]

    def ctx(stack):
        return profile.cct.add_path([_coerce_frame(s) for s in stack])

    # Cross-function: the zeroing stores die in the compute loop.
    profile.add_point(MonitoringPoint(
        kind=PointKind.REDUNDANCY,
        contexts=[ctx(init), ctx(compute)],
        values={ops: 90_000.0 * scale}))
    # Intra-function: update_cell writes the same cell twice.
    profile.add_point(MonitoringPoint(
        kind=PointKind.REDUNDANCY,
        contexts=[ctx(cell_a), ctx(cell_a)],
        values={ops: 12_000.0 * scale}))
    return profile


def false_sharing_workload(threads: int = 2, scale: int = 4,
                           seed: int = 29) -> Profile:
    """A Cheetah/Featherlight-style contention profile (§IV-A pairs).

    Two worker threads increment adjacent counters in one ``stats``
    struct: their accesses ping-pong the cache line (false sharing on the
    named object), and an unsynchronized flag update forms a data race.
    """
    from ..builder.builder import _coerce_frame
    from ..core.frame import FrameKind, intern_frame
    from ..core.metric import Metric
    from ..core.monitor import MonitoringPoint, PointKind

    functions = [
        Func("main", "server.c", 5, "server",
             callees=[Callee("worker_loop", calls=threads)]),
        Func("worker_loop", "server.c", 30, "server", self_cost=4e5,
             callees=[Callee("bump_counter", calls=8 * scale),
                      Callee("set_flag")]),
        Func("bump_counter", "server.c", 60, "server", self_cost=1e5),
        Func("set_flag", "server.c", 90, "server", self_cost=2e4),
    ]
    machine = ProgramMachine(functions, entry="main", seed=seed)
    profile = machine.run(metric="cpu", unit="nanoseconds",
                          tool="featherlight")
    events = profile.add_metric(Metric("pingpongs", unit="count"))

    def access(thread, fn, line):
        stack = [
            intern_frame("main", "server.c", 5, "server"),
            intern_frame("thread-%d" % thread, kind=FrameKind.THREAD),
            intern_frame("stats", "server.c", 12, "server",
                         kind=FrameKind.DATA_OBJECT),
            intern_frame(fn, "server.c", line, "server"),
        ]
        return profile.cct.add_path(stack)

    # False sharing: each thread's counter bumps hit one cache line.
    profile.add_point(MonitoringPoint(
        kind=PointKind.FALSE_SHARING,
        contexts=[access(0, "bump_counter", 61),
                  access(1, "bump_counter", 62)],
        values={events: 50_000.0 * scale}))
    # A smaller ping-pong on the flag field.
    profile.add_point(MonitoringPoint(
        kind=PointKind.FALSE_SHARING,
        contexts=[access(0, "set_flag", 91),
                  access(1, "bump_counter", 62)],
        values={events: 4_000.0 * scale}))
    # And a genuine race on the flag.
    profile.add_point(MonitoringPoint(
        kind=PointKind.DATA_RACE,
        contexts=[access(0, "set_flag", 91), access(1, "set_flag", 91)],
        values={events: 700.0 * scale}))
    return profile


def scaling_workload(ranks: int, seed: int = 31) -> Profile:
    """An MPI-style memory profile at a given rank count (ScaAnalyzer).

    Per-rank memory for one rank's profile: the halo-exchange buffers grow
    with the rank count (the classic memory-scaling loss — each rank keeps
    a buffer per peer), a replicated lookup table is constant, and the
    domain arrays *shrink* as the domain is partitioned finer.
    """
    if ranks < 1:
        raise ValueError("ranks must be positive")
    functions = [
        Func("main", "mpi_app.c", 8, "mpi_app",
             callees=[Callee("setup"), Callee("exchange_halos"),
                      Callee("solve")]),
        Func("setup", "mpi_app.c", 30, "mpi_app", self_cost=1e5,
             # Replicated table: constant per rank regardless of scale.
             alloc_bytes=4 * 1024 * 1024, alloc_object="lookup_table"),
        Func("exchange_halos", "mpi_app.c", 70, "mpi_app", self_cost=2e5,
             # One buffer per peer: grows linearly with ranks.
             alloc_bytes=64 * 1024 * ranks, alloc_object="halo_buffers"),
        Func("solve", "mpi_app.c", 120, "mpi_app", self_cost=8e5,
             # Partitioned domain: shrinks as ranks grow.
             alloc_bytes=max(256 * 1024 * 1024 // ranks, 1),
             alloc_object="domain_arrays"),
    ]
    machine = ProgramMachine(functions, entry="main", seed=seed)
    profile = machine.run(metric="cpu", unit="nanoseconds",
                          tool="scaanalyzer")
    profile.meta.attributes["ranks"] = str(ranks)
    # Fold allocation points into per-node alloc_bytes metrics for the
    # scaling comparison (live-bytes semantics, one value per run).
    from ..core.monitor import PointKind
    index = profile.schema.index_of("alloc_bytes")
    for point in profile.points_of_kind(PointKind.ALLOCATION):
        point.primary().add_value(index, point.value(index))
    return profile


def go_service_profile(requests: int = 200, seed: int = 37) -> Profile:
    """A Go-service CPU profile with the three Task II inefficiencies.

    §VII-D's Task II asks analysts to find hot memory allocation, garbage
    collection, and lock wait, *and where they are called from* — the
    bottom-up use case.  This workload plants all three with distinct
    caller sets: ``runtime.mallocgc`` called from two request handlers,
    ``runtime.gcBgMarkWorker`` driven by the allocation volume, and
    ``sync.(*Mutex).Lock`` contended from the session-store paths.
    """
    rt = "runtime"
    svc = "api-server"
    functions = [
        Func("main", "main.go", 10, svc,
             callees=[Callee("http.Serve")]),
        Func("http.Serve", "server.go", 30, svc, self_cost=2e5,
             callees=[Callee("handleUpload", calls=requests // 2),
                      Callee("handleQuery", calls=requests),
                      Callee("runtime.gcBgMarkWorker", calls=8)]),
        Func("handleUpload", "upload.go", 44, svc, self_cost=3e5,
             callees=[Callee("decodeBody"),
                      Callee("sessionStore.Put")]),
        Func("handleQuery", "query.go", 61, svc, self_cost=2e5,
             callees=[Callee("renderRows"),
                      Callee("sessionStore.Get")]),
        Func("decodeBody", "upload.go", 88, svc, self_cost=1e5,
             callees=[Callee("runtime.mallocgc", calls=3)]),
        Func("renderRows", "query.go", 99, svc, self_cost=2e5,
             callees=[Callee("runtime.mallocgc", calls=2)]),
        Func("sessionStore.Put", "store.go", 25, svc, self_cost=5e4,
             callees=[Callee("sync.(*Mutex).Lock")]),
        Func("sessionStore.Get", "store.go", 40, svc, self_cost=5e4,
             callees=[Callee("sync.(*Mutex).Lock")]),
        Func("runtime.mallocgc", "malloc.go", 900, rt, self_cost=2.5e5),
        Func("runtime.gcBgMarkWorker", "mgc.go", 1200, rt, self_cost=9e5),
        Func("sync.(*Mutex).Lock", "mutex.go", 72, rt, self_cost=1.8e5),
    ]
    machine = ProgramMachine(functions, entry="main", seed=seed,
                             jitter=0.04)
    profile = machine.run(metric="cpu", unit="nanoseconds", tool="pprof")
    # Companion metrics the real pprof would report separately.
    from ..core.metric import Metric
    alloc = profile.add_metric(Metric("alloc_ops", unit="count"))
    lock = profile.add_metric(Metric("lock_wait", unit="nanoseconds"))
    cpu = profile.schema.index_of("cpu")
    for node in profile.find_by_name("runtime.mallocgc"):
        node.add_value(alloc, node.exclusive(cpu) / 250.0)
    for node in profile.find_by_name("sync.(*Mutex).Lock"):
        node.add_value(lock, node.exclusive(cpu) * 3.0)
    profile.cct.clear_inclusive_cache()
    return profile


def deep_path_profile(depth: int = 10000, fanout_every: int = 500,
                      seed: int = 41) -> Profile:
    """A deliberately deep profile: one ``depth``-frame call chain.

    Real async/actor runtimes and instrumented interpreters routinely
    produce stacks thousands of frames deep; any recursive walk over the
    CCT dies on them long before the paper's large-profile tiers do.  This
    shape is the stress fixture for that audit: a single linear chain of
    ``depth`` frames (every ``fanout_every``-th frame also carries a tiny
    side branch and a bit of exclusive cost, so traversals, aggregation,
    and diffs all see interior structure, not just one path).
    """
    functions: List[Func] = []
    for index in range(depth):
        callees = []
        if index + 1 < depth:
            callees.append(Callee("f%d" % (index + 1)))
        side_cost = 0.0
        if fanout_every and index % fanout_every == 0:
            callees.append(Callee("side%d" % index))
            functions.append(Func("side%d" % index, "deep.py",
                                  5 * index + 3, "deepmod",
                                  self_cost=7.0))
            side_cost = 3.0
        functions.append(Func("f%d" % index, "deep.py", 5 * index + 1,
                              "deepmod",
                              self_cost=side_cost if callees else 11.0,
                              callees=callees))
    machine = ProgramMachine(functions, entry="f0", seed=seed,
                             recursion_limit=depth + 1)
    return machine.run(metric="cpu", unit="nanoseconds", tool="deepgen")


def checkout_service_profile(slow: bool = False, scale: int = 20,
                             seed: int = 43) -> Profile:
    """A small web-service request profile for the continuous loop.

    The shape is one request handler fanning into three phases —
    ``parse_payload``, ``db_query``, ``render`` — whose costs are
    deterministic per seed.  With ``slow=True`` the payload parser's
    exclusive cost quadruples (a "someone swapped in a pure-Python JSON
    decoder" regression): exactly one frame moves, which is what the
    regression watch's self-delta attribution must pin — the report has
    to rank ``parse_payload`` first, not its ancestors, whose inclusive
    time grows just as much.
    """
    svc = "checkout"
    parse_cost = 2e5 * (4.0 if slow else 1.0)
    functions = [
        Func("main", "checkout/main.py", 8, svc,
             callees=[Callee("handle_request", calls=scale)]),
        Func("handle_request", "checkout/handler.py", 21, svc,
             self_cost=5e4,
             callees=[Callee("parse_payload"), Callee("db_query"),
                      Callee("render")]),
        Func("parse_payload", "checkout/codec.py", 44, svc,
             self_cost=parse_cost),
        Func("db_query", "checkout/db.py", 67, svc, self_cost=3e5,
             callees=[Callee("pool_acquire")]),
        Func("pool_acquire", "checkout/db.py", 112, svc, self_cost=8e4),
        Func("render", "checkout/render.py", 30, svc, self_cost=1.5e5),
    ]
    # Small deterministic jitter: distinct seeds yield distinct captures
    # (so a capture stream survives collector dedup), same seed yields
    # byte-identical ones (so no-change windows diff to exactly zero).
    machine = ProgramMachine(functions, entry="main", seed=seed,
                             jitter=0.02)
    return machine.run(metric="cpu", unit="nanoseconds", tool="easyview")


#: Workload builders addressable by name — the capture agent's
#: ``--scenario`` flag and :class:`repro.continuous.MachineSource` resolve
#: through this table, so a new workload becomes a shippable capture
#: source by adding one entry.
SCENARIOS = {
    "grpc-client": grpc_client_profile,
    "lulesh": lulesh_profile,
    "lulesh-reuse": lulesh_reuse_profile,
    "spark": spark_profile,
    "go-service": go_service_profile,
    "checkout": checkout_service_profile,
}
