"""A wall-clock sampling profiler (the perf/Async-Profiler model).

A background thread periodically captures the target threads' Python stacks
via :func:`sys._current_frames` and accumulates one sample per capture.
Sampling trades exactness for negligible overhead, which is why most of the
profilers EasyView ingests (perf, PProf's CPU profiler, Async-Profiler) are
sampling profilers — supporting one natively keeps the direct-integration
path honest for that family too.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile


class SamplingProfiler:
    """Samples thread stacks at a fixed interval.

    By default only the starting thread is sampled; with
    ``all_threads=True`` every Python thread is captured per tick under a
    ``THREAD``-kind context (named after the thread), which feeds the
    per-thread operations of :mod:`repro.analysis.threads` directly.
    """

    def __init__(self, interval_seconds: float = 0.001,
                 all_threads: bool = False) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        self.interval_seconds = interval_seconds
        self.all_threads = all_threads
        self._builder: Optional[ProfileBuilder] = None
        self._metric = 0
        self._target_thread_id: Optional[int] = None
        self._sampler: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self.samples_taken = 0

    def start(self, thread_id: Optional[int] = None) -> None:
        """Begin sampling (the current thread by default)."""
        if self._sampler is not None:
            raise RuntimeError("sampler already running")
        self._builder = ProfileBuilder(tool="repro-sampling",
                                       time_nanos=time.time_ns())
        self._metric = self._builder.metric("samples", unit="count")
        self._target_thread_id = (thread_id if thread_id is not None
                                  else threading.get_ident())
        self._stop_event.clear()
        self.samples_taken = 0
        self._sampler = threading.Thread(target=self._run, daemon=True)
        self._sampler.start()

    def stop(self) -> Profile:
        """Stop sampling and return the profile."""
        if self._sampler is None or self._builder is None:
            raise RuntimeError("sampler is not running")
        self._stop_event.set()
        self._sampler.join()
        self._sampler = None
        profile = self._builder.build()
        profile.meta.duration_nanos = int(
            self.samples_taken * self.interval_seconds * 1e9)
        self._builder = None
        return profile

    def profile(self, fn: Callable[..., Any], *args: Any, **kwargs: Any
                ) -> Tuple[Any, Profile]:
        """Run ``fn`` under the sampler; returns (result, profile)."""
        self.start()
        try:
            result = fn(*args, **kwargs)
        finally:
            profile = self.stop()
        return result, profile

    def _run(self) -> None:
        sampler_ident = threading.get_ident()
        while not self._stop_event.wait(self.interval_seconds):
            frames = sys._current_frames()
            assert self._builder is not None
            if self.all_threads:
                names = {t.ident: t.name for t in threading.enumerate()}
                captured = False
                for ident, pyframe in frames.items():
                    if ident == sampler_ident:
                        continue
                    stack = self._unwind(pyframe)
                    if not stack:
                        continue
                    from ..core.frame import FrameKind
                    prefix = intern_frame(
                        names.get(ident, "thread-%d" % ident),
                        kind=FrameKind.THREAD)
                    self._builder.sample([prefix] + stack,
                                         {self._metric: 1.0})
                    captured = True
                if captured:
                    self.samples_taken += 1
                continue
            pyframe = frames.get(self._target_thread_id)
            if pyframe is None:
                continue
            stack = self._unwind(pyframe)
            if not stack:
                continue
            self._builder.sample(stack, {self._metric: 1.0})
            self.samples_taken += 1

    @staticmethod
    def _unwind(pyframe: Any) -> List[Frame]:
        """Root-first frames for one Python stack."""
        frames: List[Frame] = []
        while pyframe is not None:
            code = pyframe.f_code
            frames.append(intern_frame(
                code.co_qualname if hasattr(code, "co_qualname")
                else code.co_name,
                file=code.co_filename,
                line=pyframe.f_lineno,
                module=pyframe.f_globals.get("__name__", "")))
            pyframe = pyframe.f_back
        frames.reverse()
        return frames


def sample_callable(fn: Callable[..., Any], *args: Any,
                    interval_seconds: float = 0.001, **kwargs: Any
                    ) -> Tuple[Any, Profile]:
    """One-shot convenience: sample ``fn(*args, **kwargs)``."""
    return SamplingProfiler(interval_seconds).profile(fn, *args, **kwargs)
