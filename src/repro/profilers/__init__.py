"""Profiler substrates: real in-process Python profilers (tracing, sampling,
heap snapshots), the deterministic synthetic program machine, the paper's
case-study workloads, and the pprof corpus generator."""

from .corpus import CorpusSpec, TIERS, generate, generate_bytes, tier, write_corpus
from .machine import Callee, Func, ProgramMachine, add_reuse_pairs
from .memsnap import HeapSnapshotProfiler, snapshot_workload
from .sampling import SamplingProfiler, sample_callable
from .tracing import TracingProfiler, profile_callable
from .workloads import (LULESH_ALLOCATOR_SHARE, LULESH_FUSION_SAVING,
                        false_sharing_workload, go_service_profile,
                        grpc_client_profile, lulesh_fused_profile,
                        lulesh_profile, lulesh_reuse_profile,
                        redundancy_workload, scaling_workload,
                        spark_profile)

__all__ = [
    "CorpusSpec", "TIERS", "generate", "generate_bytes", "tier",
    "write_corpus", "Callee", "Func", "ProgramMachine", "add_reuse_pairs",
    "HeapSnapshotProfiler", "snapshot_workload", "SamplingProfiler",
    "sample_callable", "TracingProfiler", "profile_callable",
    "LULESH_ALLOCATOR_SHARE", "LULESH_FUSION_SAVING",
    "false_sharing_workload", "go_service_profile", "redundancy_workload",
    "scaling_workload", "grpc_client_profile",
    "lulesh_fused_profile", "lulesh_profile", "lulesh_reuse_profile",
    "spark_profile",
]
