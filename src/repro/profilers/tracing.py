"""A real in-process Python profiler that emits EasyView data directly.

This is the paper's "direct integration" path (§IV-B): a profiler calls the
data builder while measuring, and the entire EasyView-specific glue is the
handful of lines in :meth:`TracingProfiler._emit` — the under-20-lines claim
the programmability evaluation (§VII-A) audits.

The profiler uses :func:`sys.setprofile` for exact call/return accounting:
every function gets its wall-clock *exclusive* time and call count
attributed to its full call path.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile

_StackEntry = Tuple[Frame, float]  # (frame, accumulated child time)


class TracingProfiler:
    """Deterministic call profiler built on ``sys.setprofile``."""

    def __init__(self, timer: Callable[[], float] = time.perf_counter
                 ) -> None:
        self._timer = timer
        self._builder: Optional[ProfileBuilder] = None
        self._time_metric = 0
        self._calls_metric = 0
        # Stack of (frame, entry time, child time accumulated so far).
        self._stack: List[List[Any]] = []
        self._active = False

    # -- measurement ------------------------------------------------------------

    def start(self) -> None:
        """Begin measuring the current thread."""
        if self._active:
            raise RuntimeError("profiler already running")
        self._builder = ProfileBuilder(
            tool="repro-tracing", time_nanos=time.time_ns())
        self._time_metric = self._builder.metric("wall_time",
                                                 unit="nanoseconds")
        self._calls_metric = self._builder.metric("calls", unit="count")
        self._stack = []
        self._active = True
        sys.setprofile(self._trace)

    def stop(self) -> Profile:
        """Stop measuring and return the profile."""
        sys.setprofile(None)
        if not self._active or self._builder is None:
            raise RuntimeError("profiler is not running")
        self._active = False
        profile = self._builder.build()
        self._builder = None
        return profile

    def profile(self, fn: Callable[..., Any], *args: Any, **kwargs: Any
                ) -> Tuple[Any, Profile]:
        """Run ``fn`` under the profiler; returns (result, profile)."""
        self.start()
        try:
            result = fn(*args, **kwargs)
        finally:
            profile = self.stop()
        return result, profile

    # -- internals ----------------------------------------------------------------

    def _trace(self, pyframe: Any, event: str, arg: Any) -> None:
        if event in ("call", "c_call"):
            frame = self._frame_for(pyframe, event, arg)
            self._stack.append([frame, self._timer(), 0.0])
        elif event in ("return", "c_return", "c_exception"):
            if not self._stack:
                return
            frame, entered, child_time = self._stack.pop()
            elapsed = self._timer() - entered
            exclusive = max(elapsed - child_time, 0.0)
            if self._stack:
                self._stack[-1][2] += elapsed
            self._emit(frame, exclusive)

    def _frame_for(self, pyframe: Any, event: str, arg: Any) -> Frame:
        if event == "c_call":
            name = getattr(arg, "__qualname__", None) or repr(arg)
            module = getattr(arg, "__module__", "") or "builtins"
            return intern_frame(name, module=module)
        code = pyframe.f_code
        return intern_frame(code.co_qualname
                            if hasattr(code, "co_qualname")
                            else code.co_name,
                            file=code.co_filename,
                            line=code.co_firstlineno,
                            module=pyframe.f_globals.get("__name__", ""))

    def _emit(self, frame: Frame, exclusive_seconds: float) -> None:
        # The entire EasyView integration: one builder call per return.
        stack = [entry[0] for entry in self._stack] + [frame]
        assert self._builder is not None
        self._builder.sample(stack, {
            self._time_metric: exclusive_seconds * 1e9,
            self._calls_metric: 1.0,
        })


def profile_callable(fn: Callable[..., Any], *args: Any, **kwargs: Any
                     ) -> Tuple[Any, Profile]:
    """One-shot convenience: profile ``fn(*args, **kwargs)``."""
    return TracingProfiler().profile(fn, *args, **kwargs)
