"""Chrome Trace Event Format converter (``about:tracing`` / Perfetto
legacy JSON).

Trace files carry time-ordered *events* rather than samples: ``B``/``E``
pairs open and close a named slice on a (pid, tid) track, ``X`` events are
complete slices with a duration, and ``M`` metadata events name processes
and threads.  EasyView folds the slices into calling-context form — a
slice's "call path" is the stack of slices open around it on its track —
attributing each slice's *self* time (duration minus nested slices), which
turns any trace into a profile every view understands.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..builder import ProfileBuilder
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Convert a Trace Event Format JSON payload."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("not valid trace-event JSON: %s" % exc) from exc
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise FormatError("trace JSON must carry a 'traceEvents' array")
    elif isinstance(payload, list):
        events = payload  # the bare-array flavor
    else:
        raise FormatError("trace JSON must be an object or array")

    builder = ProfileBuilder(tool="chrome-trace")
    wall = builder.metric("wall_time", unit="microseconds")
    count = builder.metric("slices", unit="count")

    thread_names: Dict[Tuple, str] = {}
    for event in events:
        if not isinstance(event, dict):
            raise FormatError("trace events must be JSON objects")
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            key = (event.get("pid"), event.get("tid"))
            thread_names[key] = event.get("args", {}).get("name", "")

    def thread_frame(pid, tid) -> Frame:
        label = thread_names.get((pid, tid)) or "pid %s tid %s" % (pid, tid)
        return intern_frame(label, kind=FrameKind.THREAD)

    def slice_frame(event) -> Frame:
        args = event.get("args") or {}
        return intern_frame(event.get("name") or "(unnamed)",
                            file=str(args.get("file", "")),
                            line=int(args.get("line", 0) or 0),
                            module=event.get("cat", ""))

    # Per-track open-slice stacks: entries are [frame, start, child_time].
    stacks: Dict[Tuple, List[list]] = {}
    emitted = 0

    def emit(track_key, frame, start, end, child_time) -> None:
        nonlocal emitted
        duration = max(end - start, 0.0)
        self_time = max(duration - child_time, 0.0)
        stack = stacks.get(track_key, [])
        if stack:
            stack[-1][2] += duration
        path = [thread_frame(*track_key)]
        path.extend(entry[0] for entry in stack)
        path.append(frame)
        builder.sample(path, {wall: self_time, count: 1.0})
        emitted += 1

    # Events must be processed in timestamp order per track; sort stably.
    def sort_key(event):
        ts = event.get("ts", 0)
        if not isinstance(ts, (int, float)):
            raise FormatError("event 'ts' must be numeric")
        return (ts, 0 if event.get("ph") != "E" else 1)

    for event in sorted((e for e in events if isinstance(e, dict)),
                        key=sort_key):
        phase = event.get("ph")
        key = (event.get("pid"), event.get("tid"))
        ts = float(event.get("ts", 0))
        if phase == "B":
            stacks.setdefault(key, []).append([slice_frame(event), ts, 0.0])
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                raise FormatError("E event at ts=%s closes nothing" % ts)
            frame, start, child_time = stack.pop()
            emit(key, frame, start, ts, child_time)
        elif phase == "X":
            duration = float(event.get("dur", 0))
            stack = stacks.setdefault(key, [])
            # A complete slice nests under whatever is open around it.
            stacks[key].append([slice_frame(event), ts, 0.0])
            frame, start, child_time = stacks[key].pop()
            emit(key, frame, ts, ts + duration, child_time)

    for key, stack in stacks.items():
        if stack:
            raise FormatError("track %s ended with %d unclosed slices"
                              % (key, len(stack)))
    if not emitted:
        raise FormatError("trace contains no duration events")
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096].lstrip()
    if head.startswith(b"{"):
        return b'"traceEvents"' in data[:8192]
    if head.startswith(b"["):
        return b'"ph"' in data[:8192] and b'"ts"' in data[:8192]
    return False


register(Converter(
    name="chrome-trace",
    parse=parse,
    sniff=_sniff,
    extensions=(".trace.json", ".traceevents"),
    description="Chrome/Perfetto Trace Event Format (B/E/X slices)"))
