"""Format converters: pprof, collapsed stacks, Chrome, speedscope,
pyinstrument, Scalene, perf script, HPCToolkit, TAU, Cloud Profiler, and
gprof — all registered with auto-detection (§IV-B)."""

from .base import Converter, detect, get, names, open_profile, parse_bytes

# Importing each module registers its converter.  Registration order sets
# sniffing priority: binary/magic formats first, permissive text last.
from . import easyview         # noqa: F401  (EZVW magic)
from . import pprof            # noqa: F401  (gzip/protobuf magic)
from . import cloudprofiler    # noqa: F401  (JSON with profileBytes)
from . import speedscope       # noqa: F401  (JSON with $schema)
from . import chrome           # noqa: F401  (JSON with nodes/callFrame)
from . import chrome_trace     # noqa: F401  (JSON with traceEvents/ph)
from . import pyinstrument     # noqa: F401  (JSON with root_frame)
from . import scalene          # noqa: F401  (JSON with files/…)
from . import hpctoolkit       # noqa: F401  (XML)
from . import gprof            # noqa: F401  (text with 'Flat profile')
from . import callgrind        # noqa: F401  (text with events:/fn=)
from . import tau              # noqa: F401  (text '<n> <metric>')
from . import perf_script      # noqa: F401  (text sample headers)
from . import austin           # noqa: F401  (text P/T-prefixed stacks)
from . import collapsed        # noqa: F401  (text, most permissive)

__all__ = ["Converter", "detect", "get", "names", "open_profile",
           "parse_bytes"]
