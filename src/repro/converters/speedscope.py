"""Speedscope JSON converter.

Speedscope's file format (https://www.speedscope.app) carries a ``shared``
frame table plus one or more profiles, each either *sampled* (stacks of
frame indices with per-sample weights) or *evented* (open/close frame
events with timestamps).  Both flavors convert; multiple profiles in one
file (threads) merge into one EasyView profile with a thread context each.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..builder import ProfileBuilder
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Convert a speedscope JSON payload."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("not valid speedscope JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise FormatError("speedscope JSON must be an object")
    if str(payload.get("$schema", "")).find("speedscope") < 0:
        raise FormatError("missing speedscope $schema marker")

    shared = payload.get("shared", {})
    if not isinstance(shared, dict):
        raise FormatError("speedscope 'shared' must be an object")
    shared_frames = shared.get("frames", [])
    if not isinstance(shared_frames, list):
        raise FormatError("speedscope frame table must be an array")
    frames: List[Frame] = []
    for spec in shared_frames:
        if not isinstance(spec, dict):
            raise FormatError("speedscope frames must be objects")
        frames.append(intern_frame(
            name=spec.get("name") or "(anonymous)",
            file=spec.get("file", ""),
            line=int(spec.get("line", 0) or 0)))

    builder = ProfileBuilder(tool="speedscope")
    weight_metric = builder.metric("weight", unit=_unit_of(payload))

    profiles = payload.get("profiles", [])
    if not isinstance(profiles, list):
        raise FormatError("speedscope 'profiles' must be an array")
    multiple = len(profiles) > 1
    for profile_spec in profiles:
        if not isinstance(profile_spec, dict):
            raise FormatError("speedscope profiles must be objects")
        prefix: List[Frame] = []
        if multiple:
            prefix = [intern_frame(profile_spec.get("name", "thread"),
                                   kind=FrameKind.THREAD)]
        kind = profile_spec.get("type")
        if kind == "sampled":
            _convert_sampled(builder, weight_metric, profile_spec, frames,
                             prefix)
        elif kind == "evented":
            _convert_evented(builder, weight_metric, profile_spec, frames,
                             prefix)
        else:
            raise FormatError("unknown speedscope profile type %r" % kind)
    return builder.build()


def _unit_of(payload: dict) -> str:
    units = {p.get("unit") for p in payload.get("profiles", [])
             if isinstance(p, dict)}
    unit = units.pop() if len(units) == 1 else "none"
    return {"nanoseconds": "nanoseconds", "microseconds": "microseconds",
            "milliseconds": "milliseconds", "seconds": "seconds",
            "bytes": "bytes"}.get(unit or "none", "")


def _convert_sampled(builder: ProfileBuilder, metric: int, spec: dict,
                     frames: List[Frame], prefix: List[Frame]) -> None:
    samples = spec.get("samples", [])
    weights = spec.get("weights", [])
    if len(weights) not in (0, len(samples)):
        raise FormatError("weights length %d != samples length %d"
                          % (len(weights), len(samples)))
    for i, stack in enumerate(samples):
        weight = float(weights[i]) if weights else 1.0
        try:
            path = prefix + [frames[index] for index in stack]
        except IndexError:
            raise FormatError("sample %d references an unknown frame" % i
                              ) from None
        if path:
            builder.sample(path, {metric: weight})


def _convert_evented(builder: ProfileBuilder, metric: int, spec: dict,
                     frames: List[Frame], prefix: List[Frame]) -> None:
    stack: List[int] = []
    last_at = float(spec.get("startValue", 0))
    for event in spec.get("events", []):
        at = float(event.get("at", last_at))
        if stack and at > last_at:
            try:
                path = prefix + [frames[index] for index in stack]
            except IndexError:
                raise FormatError("event references an unknown frame"
                                  ) from None
            builder.sample(path, {metric: at - last_at})
        event_type = event.get("type")
        frame_index = int(event.get("frame", -1))
        if event_type == "O":
            stack.append(frame_index)
        elif event_type == "C":
            if not stack or stack[-1] != frame_index:
                raise FormatError(
                    "mismatched close event for frame %d" % frame_index)
            stack.pop()
        else:
            raise FormatError("unknown event type %r" % event_type)
        last_at = at
    if stack:
        raise FormatError("evented profile ended with %d open frames"
                          % len(stack))


def _sniff(data: bytes, path: str) -> bool:
    return b"speedscope" in data[:4096]


register(Converter(
    name="speedscope",
    parse=parse,
    sniff=_sniff,
    extensions=(".speedscope.json",),
    description="speedscope.app JSON (sampled and evented)"))
