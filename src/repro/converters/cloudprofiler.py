"""Google Cloud Profiler converter.

Cloud Profiler's API wraps a standard pprof payload in a JSON envelope
(``profiles.create``/``profiles.patch`` bodies): the gzipped protobuf is
base64-encoded under ``profileBytes`` alongside ``profileType`` and
deployment metadata.  Conversion unwraps the envelope and delegates to the
pprof converter, tagging the profile with the deployment attributes.
"""

from __future__ import annotations

import base64
import json

from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register
from .pprof import parse as parse_pprof


def parse(data: bytes) -> Profile:
    """Convert a Cloud Profiler JSON envelope."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("not a Cloud Profiler JSON envelope: %s"
                          % exc) from exc
    if not isinstance(payload, dict):
        raise FormatError("Cloud Profiler envelope must be an object")
    encoded = payload.get("profileBytes")
    if not encoded:
        raise FormatError("envelope has no 'profileBytes'")
    try:
        raw = base64.b64decode(encoded, validate=True)
    except Exception as exc:
        raise FormatError("profileBytes is not valid base64: %s"
                          % exc) from exc
    profile = parse_pprof(raw)
    profile.meta.tool = "cloud-profiler"
    if "profileType" in payload:
        profile.meta.attributes["profileType"] = str(payload["profileType"])
    deployment = payload.get("deployment", {})
    if isinstance(deployment, dict):
        for key in ("projectId", "target"):
            if key in deployment:
                profile.meta.attributes[key] = str(deployment[key])
    return profile


def wrap(pprof_bytes: bytes, profile_type: str = "CPU",
         project_id: str = "", target: str = "") -> bytes:
    """Build a Cloud Profiler envelope around a pprof payload (for tests
    and for exporting back to the API)."""
    envelope = {
        "profileType": profile_type,
        "profileBytes": base64.b64encode(pprof_bytes).decode("ascii"),
        "deployment": {"projectId": project_id, "target": target},
    }
    return json.dumps(envelope).encode("utf-8")


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096]
    return (head.lstrip().startswith(b"{")
            and b'"profileBytes"' in head)


register(Converter(
    name="cloud-profiler",
    parse=parse,
    sniff=_sniff,
    extensions=(".cloudprofile.json",),
    description="Google Cloud Profiler JSON envelope around pprof"))
