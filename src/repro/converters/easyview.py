"""Loader for EasyView's own binary format (``.ezvw``).

Registered like any converter so :func:`repro.open_profile` and the viewer
session open native files transparently — this is the format the data
builder emits and ``easyview convert`` writes.
"""

from __future__ import annotations

from ..core import serialize
from ..core.profile import Profile
from ..proto.easyview_pb import FORMAT_MAGIC
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Parse a native EasyView profile."""
    return serialize.loads(data)


def _sniff(data: bytes, path: str) -> bool:
    return data[:4] == FORMAT_MAGIC


register(Converter(
    name="easyview",
    parse=parse,
    sniff=_sniff,
    extensions=(".ezvw", ".drcctprof"),
    description="EasyView native binary format (data-builder output)"))


def _parse_json(data: bytes) -> Profile:
    from ..core import jsonio
    from ..errors import FormatError
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FormatError("easyview-json must be UTF-8") from exc
    return jsonio.loads(text)


def _sniff_json(data: bytes, path: str) -> bool:
    head = data[:2048]
    return head.lstrip().startswith(b"{") and b'"easyview-json"' in head


register(Converter(
    name="easyview-json",
    parse=_parse_json,
    sniff=_sniff_json,
    extensions=(".ezvw.json",),
    description="EasyView JSON form (debugging / web front-ends)"))
