"""TAU text profile converter (``profile.X.Y.Z`` files).

A TAU profile file starts with ``<count> <metric-name>``, a ``# Name Calls
Subrs Excl Incl ProfileCalls`` header, then one quoted-name row per timer.
Timer names containing `` => `` are *callpath* timers — ``a => b => c``
attributes to the full path — while plain names are flat timers, which we
only use for timers that never appear inside any callpath (to avoid double
counting).  Exclusive values feed the metric; calls become a second column.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..builder import ProfileBuilder
from ..core.frame import intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register

_ROW_RE = re.compile(
    r'^"(?P<name>[^"]*)"\s+(?P<calls>[\d.eE+]+)\s+(?P<subrs>[\d.eE+]+)\s+'
    r"(?P<excl>[\d.eE+-]+)\s+(?P<incl>[\d.eE+-]+)")
_SOURCE_RE = re.compile(r"^(?P<name>.*?)\s+\[\{(?P<file>[^}]*)\}\s*"
                        r"\{(?P<line>\d+)[,}]")


def _split_name(name: str) -> Tuple[str, str, int]:
    """Extract (timer, file, line) from a TAU timer name.

    TAU encodes source info as ``name [{file} {line,col}-{line,col}]``.
    """
    match = _SOURCE_RE.match(name)
    if match:
        return (match.group("name").strip(), match.group("file"),
                int(match.group("line")))
    return name.strip(), "", 0


def parse(data: bytes) -> Profile:
    """Convert one TAU profile file."""
    text = data.decode("utf-8", errors="replace")
    lines = text.splitlines()
    if not lines:
        raise FormatError("empty TAU profile")
    head = lines[0].split(None, 1)
    if not head or not head[0].isdigit():
        raise FormatError("TAU profiles start with '<count> <metric>'")
    metric_name = head[1].strip() if len(head) > 1 else "TIME"
    unit = "microseconds" if "TIME" in metric_name.upper() else ""

    builder = ProfileBuilder(tool="tau")
    excl_metric = builder.metric(metric_name, unit=unit)
    calls_metric = builder.metric("calls", unit="count")

    rows: List[Tuple[str, float, float]] = []
    for line in lines[1:]:
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("<"):
            continue
        match = _ROW_RE.match(line)
        if match is None:
            continue
        rows.append((match.group("name"),
                     float(match.group("calls")),
                     float(match.group("excl"))))
    if not rows:
        raise FormatError("no timer rows found in TAU profile")

    # A timer's flat exclusive time equals the summed exclusive time of the
    # callpath rows that end at it, so a flat row double-counts exactly when
    # its timer is the *leaf* of some callpath row.  Flat rows for timers
    # that only appear as interior path elements (e.g. "main" heading every
    # path) still carry unique exclusive time and are kept.
    callpath_leaves = set()
    for name, _, _ in rows:
        if " => " in name:
            callpath_leaves.add(_split_name(name.split(" => ")[-1])[0])

    for name, calls, excl in rows:
        if " => " in name:
            parts = [_split_name(part) for part in name.split(" => ")]
        else:
            timer = _split_name(name)
            if timer[0] in callpath_leaves:
                continue
            parts = [timer]
        stack = [intern_frame(timer_name or "<unknown>", file=file,
                              line=line)
                 for timer_name, file, line in parts]
        builder.sample(stack, {excl_metric: excl, calls_metric: calls})
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:2048]
    try:
        text = head.decode("utf-8")
    except UnicodeDecodeError:
        return False
    lines = text.splitlines()
    if not lines:
        return False
    first = lines[0].split(None, 1)
    if not first or not first[0].isdigit():
        return False
    return (len(first) > 1 and ("templated_functions" in first[1]
                                or "MULTI" in first[1]
                                or first[1].strip().isupper()))


register(Converter(
    name="tau",
    parse=parse,
    sniff=_sniff,
    extensions=(".tau",),
    description="TAU profile.X.Y.Z text format (flat and callpath timers)"))
