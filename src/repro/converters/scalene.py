"""Scalene JSON converter.

Scalene (Berger, 2020) is line-granular: its ``--json`` output maps files to
per-line records with CPU shares split into Python/native/system time, plus
memory and copy metrics.  There are no call paths; each line becomes a
``file → function → line`` context (an ``INSTRUCTION``-kind frame), which
the flat view renders exactly like Scalene's own per-file tables.
"""

from __future__ import annotations

import json
from typing import List

from ..builder import ProfileBuilder
from ..core.frame import FrameKind, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Convert Scalene ``--json`` output."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("not valid Scalene JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise FormatError("Scalene JSON must be an object")
    files = payload.get("files")
    if not isinstance(files, dict):
        raise FormatError("Scalene JSON must contain a 'files' object")

    elapsed_ns = float(payload.get("elapsed_time_sec", 0.0)) * 1e9
    builder = ProfileBuilder(tool="scalene",
                             duration_nanos=int(elapsed_ns))
    cpu_python = builder.metric("cpu_python", unit="nanoseconds")
    cpu_native = builder.metric("cpu_native", unit="nanoseconds")
    cpu_system = builder.metric("cpu_system", unit="nanoseconds")
    mem_peak = builder.metric("memory_peak", unit="bytes")
    copy_volume = builder.metric("copy_volume", unit="bytes")

    for path, record in files.items():
        if not isinstance(record, dict):
            raise FormatError("Scalene file records must be objects")
        lines = record.get("lines", [])
        if not isinstance(lines, list):
            raise FormatError("Scalene 'lines' must be an array")
        for entry in lines:
            if not isinstance(entry, dict):
                raise FormatError("Scalene line entries must be objects")
            line_number = int(entry.get("lineno", 0) or 0)
            function = entry.get("function") or "<module>"
            stack = [
                intern_frame(function, file=path, line=line_number),
                intern_frame("line %d" % line_number, file=path,
                             line=line_number, kind=FrameKind.INSTRUCTION),
            ]
            # Scalene reports CPU as percent of elapsed time.
            values = {
                cpu_python: float(entry.get("n_cpu_percent_python", 0.0))
                / 100.0 * elapsed_ns,
                cpu_native: float(entry.get("n_cpu_percent_c", 0.0))
                / 100.0 * elapsed_ns,
                cpu_system: float(entry.get("n_sys_percent", 0.0))
                / 100.0 * elapsed_ns,
                mem_peak: float(entry.get("n_peak_mb", 0.0)) * 1024 * 1024,
                copy_volume: float(entry.get("n_copy_mb_s", 0.0))
                * 1024 * 1024,
            }
            if any(values.values()):
                builder.sample(stack, values)
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:8192]
    return (head.lstrip().startswith(b"{")
            and b'"files"' in head
            and (b"n_cpu_percent_python" in data[:65536]
                 or b'"scalene' in head))


register(Converter(
    name="scalene",
    parse=parse,
    sniff=_sniff,
    extensions=(".scalene.json",),
    description="Scalene --json line-granular output"))
