"""HPCToolkit ``experiment.xml`` converter.

HPCToolkit databases carry a calling-context tree in XML: a ``SecHeader``
with metric/file/procedure/load-module tables, then a
``SecCallPathProfileData`` tree of ``PF`` (procedure frame), ``C``
(callsite), ``L`` (loop), and ``S`` (statement) scopes, each optionally
holding ``M`` metric values.  Loops and statements become ``LOOP`` /
``INSTRUCTION``-kind contexts, preserving HPCToolkit's sub-procedure
attribution that plain stack formats lose.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from ..builder import ProfileBuilder
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Convert an HPCToolkit experiment XML document."""
    try:
        root = ET.fromstring(data.decode("utf-8", errors="replace"))
    except ET.ParseError as exc:
        raise FormatError("not valid experiment XML: %s" % exc) from exc
    if root.tag != "HPCToolkitExperiment":
        raise FormatError("root element is %r, expected HPCToolkitExperiment"
                          % root.tag)

    builder = ProfileBuilder(tool="hpctoolkit")

    metrics: Dict[str, int] = {}
    files: Dict[str, str] = {}
    procedures: Dict[str, str] = {}
    modules: Dict[str, str] = {}

    for metric in root.iter("Metric"):
        name = metric.get("n", "metric")
        unit = "microseconds" if "usec" in name.lower() else ""
        metrics[metric.get("i", str(len(metrics)))] = builder.metric(
            name, unit=unit)
    for file_el in root.iter("File"):
        files[file_el.get("i", "")] = file_el.get("n", "")
    for proc in root.iter("Procedure"):
        procedures[proc.get("i", "")] = proc.get("n", "")
    for module in root.iter("LoadModule"):
        name = module.get("n", "")
        modules[module.get("i", "")] = name.rsplit("/", 1)[-1]

    if not metrics:
        raise FormatError("experiment XML declares no metrics")

    data_root = root.find(".//SecCallPathProfileData")
    if data_root is None:
        raise FormatError("experiment XML has no SecCallPathProfileData")

    def frame_for(element: ET.Element) -> Optional[Frame]:
        tag = element.tag
        line = int(element.get("l", 0) or 0)
        file = files.get(element.get("f", ""), "")
        module = modules.get(element.get("lm", ""), "")
        if tag == "PF" or tag == "Pr":
            name = procedures.get(element.get("n", ""),
                                  element.get("n", "<unknown>"))
            return intern_frame(name, file=file, line=line, module=module)
        if tag == "L":
            return intern_frame("loop@%s:%d" % (file.rsplit("/", 1)[-1],
                                                line),
                                file=file, line=line, module=module,
                                kind=FrameKind.LOOP)
        if tag == "S":
            return intern_frame("line %d" % line, file=file, line=line,
                                module=module, kind=FrameKind.INSTRUCTION)
        return None  # C (callsite) and unknown scopes are transparent

    emitted = 0

    def walk(element: ET.Element, path: List[Frame]) -> None:
        nonlocal emitted
        frame = frame_for(element)
        new_path = path + [frame] if frame is not None else path
        values = {}
        for m in element.findall("M"):
            column = metrics.get(m.get("n", ""))
            if column is not None:
                values[column] = values.get(column, 0.0) + float(
                    m.get("v", "0"))
        if values and new_path:
            builder.sample(new_path, values)
            emitted += 1
        for child in element:
            if child.tag != "M":
                walk(child, new_path)

    for child in data_root:
        walk(child, [])
    if not emitted:
        raise FormatError("experiment XML carries no metric values")
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    return b"HPCToolkitExperiment" in data[:4096]


register(Converter(
    name="hpctoolkit",
    parse=parse,
    sniff=_sniff,
    extensions=(".xml",),
    description="HPCToolkit experiment.xml calling-context database"))
