"""Converter infrastructure: the registry and format sniffing.

A converter turns one foreign profile format into EasyView's representation
(§IV-B's second integration path).  Each converter declares a name, file
extensions, and a ``sniff`` predicate; :func:`open_profile` picks one by
explicit name, extension, or content sniffing, in that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.profile import Profile
from ..errors import ConversionError, FormatError

ParseFn = Callable[[bytes], Profile]
SniffFn = Callable[[bytes, str], bool]


@dataclass(frozen=True)
class Converter:
    """One registered format converter."""

    name: str
    parse: ParseFn
    sniff: SniffFn
    extensions: Sequence[str] = ()
    description: str = ""


_REGISTRY: Dict[str, Converter] = {}
_ORDER: List[str] = []


def register(converter: Converter) -> Converter:
    """Add a converter to the registry (insertion order = sniff priority)."""
    if converter.name in _REGISTRY:
        raise ConversionError("converter %r already registered"
                              % converter.name)
    _REGISTRY[converter.name] = converter
    _ORDER.append(converter.name)
    return converter


def get(name: str) -> Converter:
    """Look up a converter by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConversionError(
            "unknown format %r (supported: %s)"
            % (name, ", ".join(sorted(_REGISTRY)))) from None


def names() -> List[str]:
    """All registered converter names, in registration order."""
    return list(_ORDER)


def detect(data: bytes, path: str = "") -> Converter:
    """Pick a converter by extension first, then by content sniffing."""
    lowered = path.lower()
    for name in _ORDER:
        converter = _REGISTRY[name]
        if any(lowered.endswith(ext) for ext in converter.extensions):
            if converter.sniff(data, path):
                return converter
    for name in _ORDER:
        converter = _REGISTRY[name]
        if converter.sniff(data, path):
            return converter
    raise FormatError("cannot detect the format of %r (%d bytes); "
                      "pass format= explicitly" % (path or "<data>",
                                                   len(data)))


def parse_bytes(data: bytes, format: Optional[str] = None,
                path: str = "") -> Profile:
    """Convert raw bytes with an explicit or detected format.

    The conversion runs under the :func:`~repro.core.gcguard.no_gc` guard:
    bulk CCT construction allocates millions of acyclic containers, and
    suppressing generational collections during the build is one of the
    §V-C efficiency levers.
    """
    from ..core.gcguard import no_gc
    from ..obs import get_tracer
    converter = get(format) if format else detect(data, path)
    with get_tracer().span("convert.parse", format=converter.name,
                           bytes=len(data)):
        with no_gc():
            profile = converter.parse(data)
    if not profile.meta.tool:
        profile.meta.tool = converter.name
    return profile


def open_profile(path: str, format: Optional[str] = None) -> Profile:
    """Open a profile file of any supported format."""
    with open(path, "rb") as handle:
        data = handle.read()
    return parse_bytes(data, format=format, path=path)
