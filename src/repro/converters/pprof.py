"""pprof binary → EasyView converter (and back).

pprof's ``profile.proto`` is, as §VII-A notes, essentially a subset of
EasyView's representation, so the conversion is mechanical: samples'
leaf-first location stacks become root-first call paths, every declared
``sample_type`` becomes a metric column, inlined frames expand into
separate contexts, and mappings become load modules.

The reverse direction (:func:`to_pprof`) loses only what pprof cannot hold
(multi-context points, snapshot sequences); it exists so EasyView can feed
its analyses back into pprof-consuming pipelines.
"""

from __future__ import annotations

import os
from typing import Dict, List

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from ..proto import pprof_pb
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Convert a (possibly gzipped) pprof payload."""
    try:
        message = pprof_pb.loads(data)
    except Exception as exc:
        raise FormatError("not a pprof profile: %s" % exc) from exc

    builder = ProfileBuilder(tool="pprof",
                             time_nanos=message.time_nanos,
                             duration_nanos=message.duration_nanos)
    metric_columns = []
    for value_type in message.sample_type:
        name = message.string(value_type.type) or "value"
        unit = message.string(value_type.unit)
        metric_columns.append(builder.metric(name, unit=unit))
    if not metric_columns:
        metric_columns.append(builder.metric("value"))

    functions = {fn.id: fn for fn in message.function}
    mappings = {mp.id: mp for mp in message.mapping}

    # Pre-resolve every location to its frame chain (caller-first), since
    # locations repeat across thousands of samples.
    frames_by_location: Dict[int, List[Frame]] = {}
    for location in message.location:
        module = ""
        mapping = mappings.get(location.mapping_id)
        if mapping is not None:
            module = os.path.basename(message.string(mapping.filename))
        chain: List[Frame] = []
        # A location's lines are innermost-first (inlining); callers first
        # for EasyView means reversed.
        for line in reversed(location.line):
            function = functions.get(line.function_id)
            if function is None:
                continue
            chain.append(intern_frame(
                name=message.string(function.name) or "<unknown>",
                file=message.string(function.filename),
                line=line.line or function.start_line,
                module=module,
                address=location.address))
        if not chain:
            chain.append(intern_frame(
                name="0x%x" % location.address if location.address
                else "<unknown>",
                module=module, address=location.address))
        frames_by_location[location.id] = chain

    # Real profiles repeat call stacks heavily, so the leaf CCT node for
    # each distinct location-id tuple is resolved once and cached — one of
    # the §V-C optimizations that keeps large profiles fast to open.
    profile = builder.build()
    root = profile.root
    leaf_cache: Dict[tuple, object] = {}
    for sample in message.sample:
        key = tuple(sample.location_id)
        node = leaf_cache.get(key)
        if node is None:
            node = root
            # pprof stacks are leaf-first; walk callers-first.
            for location_id in reversed(sample.location_id):
                chain = frames_by_location.get(location_id)
                if chain is None:
                    raise FormatError(
                        "sample references undefined location %d"
                        % location_id)
                for frame in chain:
                    node = node.child(frame)
            leaf_cache[key] = node
        metrics = node.metrics
        for column, value in zip(metric_columns, sample.value):
            metrics[column] = metrics.get(column, 0.0) + value
    return profile


def to_pprof(profile: Profile, metric_names: List[str] = None
             ) -> pprof_pb.Profile:
    """Lower an EasyView profile to a pprof message (lossy; see module doc)."""
    from ..core.frame import FrameKind

    message = pprof_pb.Profile()
    strings: Dict[str, int] = {"": 0}
    table = [""]

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(table)
            table.append(text)
            strings[text] = index
        return index

    schema = profile.schema
    columns = ([schema.index_of(name) for name in metric_names]
               if metric_names else list(range(len(schema))))
    for column in columns:
        metric = schema[column]
        message.sample_type.append(pprof_pb.ValueType(
            type=intern(metric.name), unit=intern(metric.unit)))

    function_ids: Dict[tuple, int] = {}
    location_ids: Dict[tuple, int] = {}

    def location_for(frame: Frame) -> int:
        fn_key = (frame.name, frame.file)
        fn_id = function_ids.get(fn_key)
        if fn_id is None:
            fn_id = len(message.function) + 1
            function_ids[fn_key] = fn_id
            message.function.append(pprof_pb.Function(
                id=fn_id, name=intern(frame.name),
                system_name=intern(frame.name),
                filename=intern(frame.file)))
        loc_key = (fn_id, frame.line, frame.address)
        loc_id = location_ids.get(loc_key)
        if loc_id is None:
            loc_id = len(message.location) + 1
            location_ids[loc_key] = loc_id
            message.location.append(pprof_pb.Location(
                id=loc_id, address=frame.address,
                line=[pprof_pb.Line(function_id=fn_id, line=frame.line)]))
        return loc_id

    for node in profile.nodes():
        if not node.metrics or node.frame.kind is FrameKind.ROOT:
            continue
        stack = [location_for(frame)
                 for frame in reversed(node.call_path())]
        message.sample.append(pprof_pb.Sample(
            location_id=stack,
            value=[int(node.metrics.get(column, 0.0))
                   for column in columns]))

    message.string_table = table
    message.time_nanos = profile.meta.time_nanos
    message.duration_nanos = profile.meta.duration_nanos
    return message


def _sniff(data: bytes, path: str) -> bool:
    if data[:2] == pprof_pb.GZIP_MAGIC:
        return True
    # Uncompressed protobuf: first field of a pprof profile is always a
    # length-delimited message (tag byte 0x0A or similar low tag).
    return bool(data) and data[0] in (0x0A, 0x12) and b"{" not in data[:1]


register(Converter(
    name="pprof",
    parse=parse,
    sniff=_sniff,
    extensions=(".pb.gz", ".pprof", ".pb"),
    description="pprof binary protobuf (Go runtime, perf, Cloud Profiler)"))
