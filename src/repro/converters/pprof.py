"""pprof binary → EasyView converter (and back).

pprof's ``profile.proto`` is, as §VII-A notes, essentially a subset of
EasyView's representation, so the conversion is mechanical: samples'
leaf-first location stacks become root-first call paths, every declared
``sample_type`` becomes a metric column, inlined frames expand into
separate contexts, and mappings become load modules.

The reverse direction (:func:`to_pprof`) loses only what pprof cannot hold
(multi-context points, snapshot sequences); it exists so EasyView can feed
its analyses back into pprof-consuming pipelines.
"""

from __future__ import annotations

import os
from typing import Dict, List

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from ..proto import pprof_pb
from .base import Converter, register


def _begin(message: "pprof_pb.Profile"):
    """Builder + metric column mapping for a parsed pprof message."""
    builder = ProfileBuilder(tool="pprof",
                             time_nanos=message.time_nanos,
                             duration_nanos=message.duration_nanos)
    metric_columns = []
    for value_type in message.sample_type:
        name = message.string(value_type.type) or "value"
        unit = message.string(value_type.unit)
        metric_columns.append(builder.metric(name, unit=unit))
    if not metric_columns:
        metric_columns.append(builder.metric("value"))
    return builder, metric_columns


def _frame_chains(message: "pprof_pb.Profile") -> Dict[int, List[Frame]]:
    """Pre-resolve every location to its frame chain (caller-first), since
    locations repeat across thousands of samples."""
    functions = {fn.id: fn for fn in message.function}
    mappings = {mp.id: mp for mp in message.mapping}
    frames_by_location: Dict[int, List[Frame]] = {}
    for location in message.location:
        module = ""
        mapping = mappings.get(location.mapping_id)
        if mapping is not None:
            module = os.path.basename(message.string(mapping.filename))
        chain: List[Frame] = []
        # A location's lines are innermost-first (inlining); callers first
        # for EasyView means reversed.
        for line in reversed(location.line):
            function = functions.get(line.function_id)
            if function is None:
                continue
            chain.append(intern_frame(
                name=message.string(function.name) or "<unknown>",
                file=message.string(function.filename),
                line=line.line or function.start_line,
                module=module,
                address=location.address))
        if not chain:
            chain.append(intern_frame(
                name="0x%x" % location.address if location.address
                else "<unknown>",
                module=module, address=location.address))
        frames_by_location[location.id] = chain
    return frames_by_location


def _accumulate_object(message: "pprof_pb.Profile", profile: Profile,
                       metric_columns: List[int]) -> None:
    """Replay ``message.sample`` through the object CCT."""
    frames_by_location = _frame_chains(message)
    # Real profiles repeat call stacks heavily, so the leaf CCT node for
    # each distinct location-id tuple is resolved once and cached — one of
    # the §V-C optimizations that keeps large profiles fast to open.
    root = profile.root
    leaf_cache: Dict[tuple, object] = {}
    for sample in message.sample:
        key = tuple(sample.location_id)
        node = leaf_cache.get(key)
        if node is None:
            node = root
            # pprof stacks are leaf-first; walk callers-first.
            for location_id in reversed(sample.location_id):
                chain = frames_by_location.get(location_id)
                if chain is None:
                    raise FormatError(
                        "sample references undefined location %d"
                        % location_id)
                for frame in chain:
                    node = node.child(frame)
            leaf_cache[key] = node
        metrics = node.metrics
        for column, value in zip(metric_columns, sample.value):
            metrics[column] = metrics.get(column, 0.0) + value


def _build_columnar(message: "pprof_pb.Profile",
                    block: "pprof_pb.SampleBlock",
                    metric_columns: List[int], n_schema: int):
    """Fold a deferred sample block straight into a columnar CCT.

    Mirrors :func:`_accumulate_object` exactly — same wire-order sample
    walk, same leaf cache, same zip-truncation value semantics — but over
    integer frame ids, with zero :class:`~repro.core.cct.CCTNode` (and,
    on the fast path, zero ``Sample``) objects ever constructed.
    """
    from ..core import cct_columnar
    if not cct_columnar.numpy_available():
        return None
    import numpy as np

    bld = cct_columnar.ColumnarBuilder()
    chain_fids: Dict[int, tuple] = {
        loc_id: tuple(bld.frame_token(frame) for frame in chain)
        for loc_id, chain in _frame_chains(message).items()}

    decoded = block.decoded
    offsets = block.offsets
    irregular = iter(block.irregular)
    descend = bld.descend
    leaf_cache: Dict[object, int] = {}
    ok_leafs: List[int] = []
    slow: List[tuple] = []  # (leaf id, value list) for irregular samples
    k = 0
    # Wire order matters: trie nodes are created at first touch, and the
    # materialized facade must reproduce the object tree's child insertion
    # order — so ok and irregular samples interleave exactly as sent.
    for matched in block.ok:
        if matched:
            seg = decoded[offsets[2 * k]:offsets[2 * k + 1]]
            k += 1
            key = seg.tobytes()
            leaf = leaf_cache.get(key)
            if leaf is None:
                leaf = 0
                for location_id in reversed(seg.tolist()):
                    fids = chain_fids.get(location_id)
                    if fids is None:
                        raise FormatError(
                            "sample references undefined location %d"
                            % location_id)
                    for fid in fids:
                        leaf = descend(leaf, fid)
                leaf_cache[key] = leaf
            ok_leafs.append(leaf)
        else:
            sample = next(irregular)
            key = tuple(sample.location_id)
            leaf = leaf_cache.get(key)
            if leaf is None:
                leaf = 0
                for location_id in reversed(sample.location_id):
                    fids = chain_fids.get(location_id)
                    if fids is None:
                        raise FormatError(
                            "sample references undefined location %d"
                            % location_id)
                    for fid in fids:
                        leaf = descend(leaf, fid)
                leaf_cache[key] = leaf
            slow.append((leaf, sample.value))

    n_nodes = bld.n_nodes
    values = np.zeros((n_nodes, n_schema), dtype=np.float64)
    present = np.zeros((n_nodes, n_schema), dtype=bool)
    n_ok = len(ok_leafs)
    if n_ok:
        leaf_arr = np.asarray(ok_leafs, dtype=np.int64)
        v_starts = offsets[1:2 * n_ok:2]
        v_ends = offsets[2:2 * n_ok + 1:2]
        m = len(metric_columns)
        if (metric_columns == list(range(m))
                and bool((v_ends - v_starts == m).all())):
            # Canonical case: every sample carries exactly one value per
            # declared column — gather into an (n_ok, m) matrix and
            # scatter-add in one pass.
            idx = v_starts[:, None] + np.arange(m, dtype=np.int64)
            np.add.at(values, leaf_arr, decoded[idx].astype(np.float64))
            present[leaf_arr] = True
        else:
            # Ragged value runs or aliased metric names: zip-truncate per
            # sample, exactly like the object path.
            starts_l = v_starts.tolist()
            ends_l = v_ends.tolist()
            for i, leaf in enumerate(ok_leafs):
                run = decoded[starts_l[i]:ends_l[i]].tolist()
                for column, value in zip(metric_columns, run):
                    values[leaf, column] += value
                    present[leaf, column] = True
    for leaf, vals in slow:
        for column, value in zip(metric_columns, vals):
            values[leaf, column] += value
            present[leaf, column] = True
    return bld.finish(values, present)


def parse(data: bytes) -> Profile:
    """Convert a (possibly gzipped) pprof payload.

    Canonical payloads stay columnar end to end — packed sample runs are
    bulk-decoded into int64 arrays and folded straight into a
    :class:`~repro.core.cct_columnar.ColumnarCCT`; the object tree only
    materializes if a consumer asks for it.  Anything the fast path cannot
    prove canonical falls back to :func:`parse_object` semantics.
    """
    try:
        message, block = pprof_pb.loads_columnar(data)
    except Exception as exc:
        raise FormatError("not a pprof profile: %s" % exc) from exc

    builder, metric_columns = _begin(message)
    profile = builder.build()
    if block is not None:
        columnar = _build_columnar(message, block, metric_columns,
                                   len(profile.schema))
        if columnar is not None:
            profile.attach_columnar(columnar)
            return profile
    _accumulate_object(message, profile, metric_columns)
    return profile


def parse_object(data: bytes) -> Profile:
    """Reference conversion through the per-node object CCT.

    Kept verbatim as the differential oracle for :func:`parse`: the bench
    equality gate and ``tests/test_cct_columnar.py`` assert both paths
    produce identical trees, digests, and analysis results.
    """
    try:
        message = pprof_pb.loads(data)
    except Exception as exc:
        raise FormatError("not a pprof profile: %s" % exc) from exc

    builder, metric_columns = _begin(message)
    profile = builder.build()
    _accumulate_object(message, profile, metric_columns)
    return profile


def to_pprof(profile: Profile, metric_names: List[str] = None
             ) -> pprof_pb.Profile:
    """Lower an EasyView profile to a pprof message (lossy; see module doc)."""
    from ..core.frame import FrameKind

    message = pprof_pb.Profile()
    strings: Dict[str, int] = {"": 0}
    table = [""]

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(table)
            table.append(text)
            strings[text] = index
        return index

    schema = profile.schema
    columns = ([schema.index_of(name) for name in metric_names]
               if metric_names else list(range(len(schema))))
    for column in columns:
        metric = schema[column]
        message.sample_type.append(pprof_pb.ValueType(
            type=intern(metric.name), unit=intern(metric.unit)))

    function_ids: Dict[tuple, int] = {}
    location_ids: Dict[tuple, int] = {}

    def location_for(frame: Frame) -> int:
        fn_key = (frame.name, frame.file)
        fn_id = function_ids.get(fn_key)
        if fn_id is None:
            fn_id = len(message.function) + 1
            function_ids[fn_key] = fn_id
            message.function.append(pprof_pb.Function(
                id=fn_id, name=intern(frame.name),
                system_name=intern(frame.name),
                filename=intern(frame.file)))
        loc_key = (fn_id, frame.line, frame.address)
        loc_id = location_ids.get(loc_key)
        if loc_id is None:
            loc_id = len(message.location) + 1
            location_ids[loc_key] = loc_id
            message.location.append(pprof_pb.Location(
                id=loc_id, address=frame.address,
                line=[pprof_pb.Line(function_id=fn_id, line=frame.line)]))
        return loc_id

    for node in profile.nodes():
        if not node.metrics or node.frame.kind is FrameKind.ROOT:
            continue
        stack = [location_for(frame)
                 for frame in reversed(node.call_path())]
        message.sample.append(pprof_pb.Sample(
            location_id=stack,
            value=[int(node.metrics.get(column, 0.0))
                   for column in columns]))

    message.string_table = table
    message.time_nanos = profile.meta.time_nanos
    message.duration_nanos = profile.meta.duration_nanos
    return message


def _sniff(data: bytes, path: str) -> bool:
    if data[:2] == pprof_pb.GZIP_MAGIC:
        return True
    # Uncompressed protobuf: first field of a pprof profile is always a
    # length-delimited message (tag byte 0x0A or similar low tag).
    return bool(data) and data[0] in (0x0A, 0x12) and b"{" not in data[:1]


register(Converter(
    name="pprof",
    parse=parse,
    sniff=_sniff,
    extensions=(".pb.gz", ".pprof", ".pb"),
    description="pprof binary protobuf (Go runtime, perf, Cloud Profiler)"))
