"""``perf script`` text output converter.

``perf record`` + ``perf script`` produces one block per sample::

    prog 1234 56789.123456:     250000 cycles:
            ffffffff81a0 do_syscall_64 ([kernel.kallsyms])
                55d2b31  compute+0x1f (/usr/bin/prog)
                55d2a10  main+0x40 (/usr/bin/prog)

The header carries process, timestamp, period, and event name; stack lines
are leaf-first with address, ``symbol+offset``, and load module.  Samples
of different events become different metric columns.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register

_HEADER_RE = re.compile(
    r"^(?P<comm>\S+)\s+(?P<pid>\d+)(?:/\d+)?\s+(?:\[\d+\]\s+)?"
    r"(?P<time>[\d.]+):\s+(?P<period>\d+)\s+(?P<event>[\w\-.:]+):")
_FRAME_RE = re.compile(
    r"^\s+(?P<address>[0-9a-fA-F]+)\s+(?P<symbol>.+?)"
    r"(?:\+0x(?P<offset>[0-9a-fA-F]+))?\s+\((?P<module>[^)]*)\)\s*$")


def parse(data: bytes) -> Profile:
    """Convert ``perf script`` text."""
    try:
        text = data.decode("utf-8", errors="replace")
    except Exception as exc:  # pragma: no cover - decode with replace
        raise FormatError("cannot decode perf script output") from exc

    builder = ProfileBuilder(tool="perf")
    metrics: Dict[str, int] = {}

    current_event: Optional[str] = None
    current_period = 0.0
    current_stack: List[Frame] = []
    parsed_samples = 0

    def flush() -> None:
        nonlocal parsed_samples
        if current_event is None or not current_stack:
            return
        column = metrics.get(current_event)
        if column is None:
            column = builder.metric(current_event, unit="events")
            metrics[current_event] = column
        # perf prints leaf-first; EasyView wants root-first.
        builder.sample(list(reversed(current_stack)),
                       {column: current_period})
        parsed_samples += 1

    for line in text.splitlines():
        if not line.strip():
            flush()
            current_event = None
            current_stack = []
            continue
        header = _HEADER_RE.match(line)
        if header:
            flush()
            current_event = header.group("event")
            current_period = float(header.group("period"))
            current_stack = []
            continue
        frame_match = _FRAME_RE.match(line)
        if frame_match and current_event is not None:
            module = frame_match.group("module")
            module = module.rsplit("/", 1)[-1]
            symbol = frame_match.group("symbol").strip()
            if symbol == "[unknown]":
                symbol = "0x" + frame_match.group("address")
            current_stack.append(intern_frame(
                name=symbol, module=module,
                address=int(frame_match.group("address"), 16)))
    flush()

    if not parsed_samples:
        raise FormatError("no samples found in perf script output")
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:8192]
    if head[:1] in (b"{", b"<", b"\x1f"):
        return False
    try:
        text = head.decode("utf-8", errors="replace")
    except Exception:  # pragma: no cover
        return False
    return any(_HEADER_RE.match(line) for line in text.splitlines()[:50])


register(Converter(
    name="perf",
    parse=parse,
    sniff=_sniff,
    extensions=(".perf", ".perfscript"),
    description="Linux `perf script` text output"))
