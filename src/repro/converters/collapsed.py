"""Collapsed ("folded") stack converter — Brendan Gregg's flame-graph input.

One line per unique stack::

    main;compute;hot_loop 412
    main;io_wait 88

Frames are separated by ``;`` (root first), the trailing integer is the
sample count.  Frames of the form ``module`AFunction`` or ``func (file:12)``
carry extra attribution that many emitters (perf's stackcollapse scripts,
py-spy --format raw) include; both are recognized.
"""

from __future__ import annotations

import re
from typing import List

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register

_LOCATION_RE = re.compile(r"^(?P<name>.*?)\s+\((?P<file>[^():]+):(?P<line>\d+)\)$")
_MODULE_RE = re.compile(r"^(?P<module>[^`]+)`(?P<name>.+)$")


def _parse_frame(token: str) -> Frame:
    token = token.strip()
    module = ""
    match = _MODULE_RE.match(token)
    if match:
        module = match.group("module")
        token = match.group("name")
    match = _LOCATION_RE.match(token)
    if match:
        return intern_frame(match.group("name"), file=match.group("file"),
                            line=int(match.group("line")), module=module)
    return intern_frame(token or "<unknown>", module=module)


def parse(data: bytes) -> Profile:
    """Convert folded-stack text."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FormatError("collapsed stacks must be UTF-8 text") from exc
    builder = ProfileBuilder(tool="collapsed")
    metric = builder.metric("samples", unit="count")
    parsed_any = False
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            raise FormatError("line %d has no sample count: %r"
                              % (line_number, line))
        try:
            count = float(count_text)
        except ValueError:
            raise FormatError("line %d has non-numeric count %r"
                              % (line_number, count_text)) from None
        frames = [_parse_frame(token)
                  for token in stack_text.split(";") if token.strip()]
        if not frames:
            raise FormatError("line %d has an empty stack" % line_number)
        builder.sample(frames, {metric: count})
        parsed_any = True
    if not parsed_any:
        raise FormatError("no stacks found in collapsed input")
    return builder.build()


def serialize(profile: Profile, metric: str = "") -> str:
    """Render a profile as folded stacks (for round-trips and export)."""
    index = (profile.schema.index_of(metric) if metric else 0)
    lines: List[str] = []
    for node in profile.nodes():
        value = node.metrics.get(index, 0.0)
        if value <= 0:
            continue
        path = ";".join(frame.name for frame in node.call_path())
        if path:
            lines.append("%s %g" % (path, value))
    lines.sort()
    return "\n".join(lines) + "\n"


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096]
    if not head or head[:1] in (b"{", b"<", b"\x1f"):
        return False
    try:
        text = head.decode("utf-8")
    except UnicodeDecodeError:
        return False
    lines = [ln for ln in text.splitlines() if ln.strip()
             and not ln.startswith("#")]
    if not lines:
        return False
    sample = lines[0]
    stack, _, count = sample.rpartition(" ")
    return bool(stack) and ";" in stack and count.replace(".", "").isdigit()


register(Converter(
    name="collapsed",
    parse=parse,
    sniff=_sniff,
    extensions=(".folded", ".collapsed"),
    description="Brendan Gregg folded stacks (stackcollapse-*, py-spy raw)"))
