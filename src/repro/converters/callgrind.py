"""Valgrind Callgrind output converter.

Callgrind's profile format (the KCachegrind input; Valgrind is one of the
fine-grained profilers §IV-A surveys) is positional text: ``events:``
declares the cost columns, ``fl=``/``fn=`` set the current file/function —
with the ``(N) name`` compression scheme where a number introduces or
back-references a string — cost lines attribute events to source lines,
and ``cfl=``/``cfn=``/``calls=`` describe call edges whose following cost
line carries the *inclusive* cost of the calls.

Callgrind records a call *graph*, not full call paths, so conversion
mirrors the gprof strategy: per-function line costs become contexts under
the function, and each call edge adds a two-level ``caller → callee``
path carrying the edge's inclusive cost as a ``calls`` metric plus
attributed events — enough for top-down, bottom-up, and flat questions.
Subposition compression (``+N``/``-N``/``*``) is handled.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..builder import ProfileBuilder
from ..core.frame import FrameKind, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register

_NAME_REF_RE = re.compile(r"^\((?P<id>\d+)\)\s*(?P<name>.*)$")


class _NameTable:
    """One compression namespace (fl/fn/cfl/cfn share per-kind tables)."""

    def __init__(self) -> None:
        self._by_id: Dict[int, str] = {}

    def resolve(self, text: str) -> str:
        text = text.strip()
        match = _NAME_REF_RE.match(text)
        if match is None:
            return text
        ref = int(match.group("id"))
        name = match.group("name").strip()
        if name:
            self._by_id[ref] = name
            return name
        if ref not in self._by_id:
            raise FormatError("callgrind back-reference (%d) before "
                              "definition" % ref)
        return self._by_id[ref]


def _parse_position(token: str, last: int) -> int:
    """One subposition: absolute, ``+N``/``-N`` relative, or ``*``."""
    if token == "*":
        return last
    if token.startswith("+"):
        return last + int(token[1:])
    if token.startswith("-"):
        return last - int(token[1:])
    if token.startswith("0x"):
        return int(token, 16)
    return int(token)


def parse(data: bytes) -> Profile:
    """Convert a callgrind.out file."""
    text = data.decode("utf-8", errors="replace")
    lines = text.splitlines()

    events: List[str] = []
    builder = ProfileBuilder(tool="callgrind")
    metric_columns: List[int] = []
    calls_metric: Optional[int] = None

    files = _NameTable()
    functions = _NameTable()
    objects = _NameTable()

    current_file = ""
    current_fn = ""
    current_obj = ""
    last_line = 0
    pending_call: Optional[Tuple[str, str, float]] = None  # (fn, file, count)
    cost_rows = 0

    def ensure_metrics() -> None:
        nonlocal calls_metric
        if metric_columns:
            return
        declared = events or ["Ir"]
        for event in declared:
            unit = "count"
            metric_columns.append(builder.metric(event, unit=unit))
        calls_metric = builder.metric("calls", unit="count")

    def module() -> str:
        return current_obj.rsplit("/", 1)[-1] if current_obj else ""

    for line_number, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lowered = line.lower()
        if lowered.startswith("events:"):
            events = line.split(":", 1)[1].split()
            continue
        if ":" in line and line.split(":", 1)[0].lower() in (
                "version", "creator", "cmd", "part", "pid", "thread",
                "desc", "positions", "summary", "totals"):
            continue
        if line.startswith("ob="):
            current_obj = objects.resolve(line[3:])
            continue
        if line.startswith("fl=") or line.startswith("fi=") \
                or line.startswith("fe="):
            current_file = files.resolve(line[3:])
            continue
        if line.startswith("fn="):
            current_fn = functions.resolve(line[3:])
            last_line = 0
            continue
        if line.startswith("cob="):
            objects.resolve(line[4:])
            continue
        if line.startswith("cfi=") or line.startswith("cfl="):
            call_file = files.resolve(line[4:])
            pending_call = (pending_call[0] if pending_call else "",
                            call_file,
                            pending_call[2] if pending_call else 0.0)
            continue
        if line.startswith("cfn="):
            name = functions.resolve(line[4:])
            call_file = pending_call[1] if pending_call else ""
            pending_call = (name, call_file, 0.0)
            continue
        if line.startswith("calls="):
            count = float(line.split("=", 1)[1].split()[0])
            if pending_call is None:
                raise FormatError("line %d: calls= without cfn="
                                  % line_number)
            pending_call = (pending_call[0], pending_call[1], count)
            continue
        if line.startswith("jump=") or line.startswith("jcnd="):
            continue
        # A cost line: subposition(s) followed by event counts.
        tokens = line.split()
        if not current_fn:
            raise FormatError("line %d: cost line before any fn="
                              % line_number)
        ensure_metrics()
        try:
            position = _parse_position(tokens[0], last_line)
            costs = [float(token) for token in tokens[1:]]
        except ValueError:
            raise FormatError("line %d: unparseable cost line %r"
                              % (line_number, raw)) from None
        last_line = position
        caller_frame = intern_frame(current_fn, file=current_file,
                                    module=module())
        if pending_call is not None:
            callee_name, callee_file, count = pending_call
            pending_call = None
            callee_frame = intern_frame(callee_name, file=callee_file)
            # The call line's event costs are the callee's *inclusive*
            # cost, which the callee's own section already reports as self
            # costs — recording them again would double-count, so the edge
            # carries only the call count (like the gprof converter).
            builder.sample([caller_frame, callee_frame],
                           {calls_metric: count})
        else:
            line_frame = intern_frame(
                "line %d" % position, file=current_file, line=position,
                module=module(), kind=FrameKind.INSTRUCTION)
            values = {}
            for column, cost in zip(metric_columns, costs):
                values[column] = cost
            builder.sample([caller_frame, line_frame], values)
        cost_rows += 1

    if not cost_rows:
        raise FormatError("no cost lines found in callgrind input")
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096]
    if head[:1] in (b"{", b"<", b"\x1f"):
        return False
    return (b"events:" in head
            and (b"fn=" in head or b"fl=" in head))


register(Converter(
    name="callgrind",
    parse=parse,
    sniff=_sniff,
    extensions=(".callgrind", ".out.callgrind"),
    description="Valgrind Callgrind output (KCachegrind input)"))
