"""Chrome DevTools CPU profiler (``.cpuprofile``) converter.

The V8 CPU profile JSON has a ``nodes`` array (each node: ``id``,
``callFrame`` with function/url/line, ``children`` ids), a ``samples``
array of node ids, and ``timeDeltas`` in microseconds.  The node tree *is*
a calling context tree already, so conversion rebuilds the paths and
attributes each sample's delta to the sampled node's path.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register


def parse(data: bytes) -> Profile:
    """Convert a Chrome/V8 ``.cpuprofile`` JSON payload."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("not valid cpuprofile JSON: %s" % exc) from exc
    if not isinstance(payload, dict) or "nodes" not in payload:
        raise FormatError("cpuprofile JSON must contain a 'nodes' array")

    nodes = payload["nodes"]
    if not isinstance(nodes, list):
        raise FormatError("cpuprofile 'nodes' must be an array")
    by_id: Dict[int, dict] = {}
    parents: Dict[int, int] = {}
    for node in nodes:
        if not isinstance(node, dict) or "id" not in node:
            raise FormatError("cpuprofile nodes must be objects with ids")
        by_id[node["id"]] = node
        for child in node.get("children", []):
            parents[child] = node["id"]

    frames: Dict[int, Frame] = {}
    for node in nodes:
        call_frame = node.get("callFrame", {})
        name = call_frame.get("functionName") or "(anonymous)"
        url = call_frame.get("url", "")
        # V8 line numbers are 0-based.
        line = int(call_frame.get("lineNumber", -1)) + 1
        frames[node["id"]] = intern_frame(name, file=url,
                                          line=max(line, 0),
                                          module=url.rsplit("/", 1)[-1])

    def path_of(node_id: int) -> List[Frame]:
        chain: List[Frame] = []
        current = node_id
        while current in by_id:
            frame = frames[current]
            # Skip V8's synthetic "(root)" frame; EasyView has its own root.
            if frame.name != "(root)":
                chain.append(frame)
            nxt = parents.get(current)
            if nxt is None:
                break
            current = nxt
        chain.reverse()
        return chain

    builder = ProfileBuilder(tool="chrome",
                             time_nanos=int(payload.get("startTime", 0))
                             * 1000)
    time_metric = builder.metric("cpu_time", unit="nanoseconds")
    hits_metric = builder.metric("samples", unit="count")

    paths = {node_id: path_of(node_id) for node_id in by_id}
    samples = payload.get("samples", [])
    deltas = payload.get("timeDeltas", [])
    if not isinstance(samples, list) or not isinstance(deltas, list):
        raise FormatError("'samples' and 'timeDeltas' must be arrays")
    if samples:
        for i, node_id in enumerate(samples):
            if node_id not in paths:
                raise FormatError("sample references unknown node %r"
                                  % (node_id,))
            delta_us = deltas[i] if i < len(deltas) else 0
            path = paths[node_id]
            if not path:
                continue
            builder.sample(path, {time_metric: float(delta_us) * 1000.0,
                                  hits_metric: 1.0})
    else:
        # Older captures carry only per-node hitCounts.
        interval_us = 1000.0
        for node in nodes:
            hits = node.get("hitCount", 0)
            path = paths[node["id"]]
            if hits and path:
                builder.sample(path, {
                    time_metric: hits * interval_us * 1000.0,
                    hits_metric: float(hits)})
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:2048].lstrip()
    if not head.startswith(b"{"):
        return False
    return b'"nodes"' in data[:8192] and b'"callFrame"' in data[:16384]


register(Converter(
    name="chrome",
    parse=parse,
    sniff=_sniff,
    extensions=(".cpuprofile",),
    description="Chrome DevTools / V8 CPU profiler JSON"))
