"""Austin sampler converter.

Austin (cited by the paper as one of the profilers with its own VSCode
extension) emits one line per collapsed sample with process/thread
prefixes::

    P123;T0x7f0a;module.main:main:12;module.work:work:40 642

The trailing number is the sampled wall time in microseconds (or memory
delta in ``-m`` mode).  Frames are ``filename:function:line`` triples;
process and thread prefixes become ``THREAD``-kind contexts so per-thread
views and cross-thread aggregation work out of the box.
"""

from __future__ import annotations

import re
from typing import List

from ..builder import ProfileBuilder
from ..core.frame import Frame, FrameKind, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register

_PROCESS_RE = re.compile(r"^P(?P<pid>\w+)$")
_THREAD_RE = re.compile(r"^T(?P<tid>\w+)(:\w+)?$")


def _parse_frame(token: str) -> Frame:
    # Austin frames are "filename:function:line"; the filename itself may
    # contain ':' on Windows, so split from the right.
    parts = token.rsplit(":", 2)
    if len(parts) == 3 and parts[2].lstrip("-").isdigit():
        filename, function, line = parts
        return intern_frame(function or "<unknown>", file=filename,
                            line=max(int(line), 0))
    return intern_frame(token or "<unknown>")


def parse(data: bytes) -> Profile:
    """Convert Austin collapsed output."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FormatError("Austin output must be UTF-8 text") from exc

    builder = ProfileBuilder(tool="austin")
    metric = builder.metric("wall_time", unit="microseconds")
    parsed = 0
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack_text, _, value_text = line.rpartition(" ")
        try:
            value = float(value_text)
        except ValueError:
            raise FormatError("line %d has non-numeric sample value %r"
                              % (line_number, value_text)) from None
        frames: List[Frame] = []
        for token in stack_text.split(";"):
            token = token.strip()
            if not token:
                continue
            if _PROCESS_RE.match(token):
                frames.append(intern_frame("process %s" % token[1:],
                                           kind=FrameKind.THREAD))
            elif _THREAD_RE.match(token):
                frames.append(intern_frame("thread %s" % token[1:],
                                           kind=FrameKind.THREAD))
            else:
                frames.append(_parse_frame(token))
        if not frames:
            raise FormatError("line %d has an empty stack" % line_number)
        builder.sample(frames, {metric: value})
        parsed += 1
    if not parsed:
        raise FormatError("no samples found in Austin output")
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096]
    if head[:1] in (b"{", b"<", b"\x1f"):
        return False
    try:
        text = head.decode("utf-8")
    except UnicodeDecodeError:
        return False
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # The P<pid>;T<tid>; prefix is Austin's signature.
        return bool(re.match(r"^P\w+;T\w+", line))
    return False


register(Converter(
    name="austin",
    parse=parse,
    sniff=_sniff,
    extensions=(".austin",),
    description="Austin frame-stack sampler output (P/T-prefixed stacks)"))
