"""gprof text output converter.

``gprof`` (Graham, Kessler & McKusick, 1982) prints a *flat profile* —
per-function self seconds and call counts — and a *call graph* of
parent/child attributions.  gprof never records full call paths, so the
conversion reconstructs what the data supports: the flat section becomes
single-frame contexts with self time, and the call-graph section adds
two-level ``parent → child`` paths carrying the child-attributed time, so
bottom-up views still answer "who calls the hot function?".
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..builder import ProfileBuilder
from ..core.frame import intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register

_FLAT_ROW_RE = re.compile(
    r"^\s*(?P<percent>[\d.]+)\s+(?P<cumulative>[\d.]+)\s+"
    r"(?P<self>[\d.]+)\s+(?:(?P<calls>\d+)\s+(?:[\d.]+)\s+(?:[\d.]+)\s+)?"
    r"(?P<name>\S.*?)\s*$")
# Call-graph child rows: "    0.02    0.01    7208/7208    child_name [5]"
_GRAPH_CHILD_RE = re.compile(
    r"^\s+(?P<self>[\d.]+)\s+(?P<children>[\d.]+)\s+"
    r"(?P<calls>\d+)(?:/\d+)?\s+(?P<name>\S.*?)\s*\[\d+\]\s*$")
_GRAPH_PRIMARY_RE = re.compile(
    r"^\[\d+\]\s+[\d.]+\s+(?P<self>[\d.]+)\s+(?P<children>[\d.]+)\s+"
    r"(?:\d+(?:\+\d+)?\s+)?(?P<name>\S.*?)\s*\[\d+\]\s*$")


def parse(data: bytes) -> Profile:
    """Convert gprof's textual report."""
    text = data.decode("utf-8", errors="replace")
    if "Flat profile" not in text and "flat profile" not in text:
        raise FormatError("no 'Flat profile' section found")

    builder = ProfileBuilder(tool="gprof")
    time_metric = builder.metric("self_time", unit="seconds")
    calls_metric = builder.metric("calls", unit="count")

    sections = _split_sections(text)

    # Call-graph entries first: the callers block (rows above the primary
    # line) re-attributes the primary's flat self time to two-level
    # caller→callee paths, so any function with caller rows must *not*
    # also emit its flat row (that would double-count).
    graph_samples = []
    attributed = set()
    for entry in sections.get("graph_entries", []):
        primary_index = None
        for i, line in enumerate(entry):
            if _GRAPH_PRIMARY_RE.match(line):
                primary_index = i
                break
        if primary_index is None:
            continue
        primary = _GRAPH_PRIMARY_RE.match(entry[primary_index])
        assert primary is not None
        primary_name = primary.group("name")
        for line in entry[:primary_index]:
            caller = _GRAPH_CHILD_RE.match(line)
            if caller is None:
                continue
            share = float(caller.group("self"))
            if share <= 0:
                continue
            attributed.add(primary_name)
            graph_samples.append((caller.group("name"), primary_name,
                                  share, float(caller.group("calls"))))

    flat_rows = 0
    for line in sections.get("flat", []):
        match = _FLAT_ROW_RE.match(line)
        if match is None or match.group("name") == "name":
            continue
        name = match.group("name")
        if name.startswith("%") or name.startswith("time"):
            continue
        flat_rows += 1
        if name in attributed:
            continue  # the call graph carries this function's self time
        values = {time_metric: float(match.group("self"))}
        if match.group("calls"):
            values[calls_metric] = float(match.group("calls"))
        builder.sample([intern_frame(name)], values)
    if not flat_rows:
        raise FormatError("flat profile section has no data rows")

    for caller_name, primary_name, share, calls in graph_samples:
        builder.sample([intern_frame(caller_name),
                        intern_frame(primary_name)],
                       {time_metric: share, calls_metric: calls})
    return builder.build()


def _split_sections(text: str) -> Dict[str, list]:
    """Split the report into the flat rows and call-graph entries."""
    lines = text.splitlines()
    sections: Dict[str, list] = {"flat": [], "graph_entries": []}
    mode = ""
    entry: List[str] = []
    for line in lines:
        lowered = line.lower()
        if "flat profile" in lowered:
            mode = "flat"
            continue
        if "call graph" in lowered:
            mode = "graph"
            continue
        if mode == "flat":
            if line.strip():
                sections["flat"].append(line)
        elif mode == "graph":
            if line.startswith("---"):
                if entry:
                    sections["graph_entries"].append(entry)
                entry = []
            elif line.strip():
                entry.append(line)
    if entry:
        sections["graph_entries"].append(entry)
    return sections


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096]
    return (b"Flat profile" in head
            and b"cumulative" in head)


register(Converter(
    name="gprof",
    parse=parse,
    sniff=_sniff,
    extensions=(".gprof",),
    description="gprof flat-profile + call-graph text report"))
