"""pyinstrument JSON converter.

``pyinstrument --renderer json`` emits a session object whose ``root_frame``
is a tree of frames, each with ``function``, ``file_path``, ``line_no``,
``time`` (inclusive seconds), and ``children``.  Conversion walks the tree,
attributing each frame's *self* time (inclusive minus children) as the
exclusive metric.
"""

from __future__ import annotations

import json
from typing import List

from ..builder import ProfileBuilder
from ..core.frame import Frame, intern_frame
from ..core.profile import Profile
from ..errors import FormatError
from .base import Converter, register


def _seconds(value: object, what: str) -> float:
    """Coerce a JSON time field to float, treating null as absent."""
    if value is None:
        return 0.0
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise FormatError(
            "pyinstrument %s must be numeric, got %r" % (what, value)
        ) from exc


def parse(data: bytes) -> Profile:
    """Convert pyinstrument's JSON session output."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("not valid pyinstrument JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise FormatError("pyinstrument JSON must be an object")
    root = payload.get("root_frame")
    if not isinstance(root, dict):
        raise FormatError("pyinstrument JSON must contain 'root_frame'")

    builder = ProfileBuilder(
        tool="pyinstrument",
        duration_nanos=int(_seconds(payload.get("duration"), "duration")
                           * 1e9))
    time_metric = builder.metric("wall_time", unit="nanoseconds")

    # Iterative walk carrying the path.
    stack: List[tuple] = [(root, [])]
    while stack:
        node, path = stack.pop()
        frame = intern_frame(
            name=node.get("function") or "<unknown>",
            file=node.get("file_path") or "",
            line=int(node.get("line_no", 0) or 0))
        full_path = path + [frame]
        children = node.get("children", [])
        if not isinstance(children, list) or not all(
                isinstance(c, dict) for c in children):
            raise FormatError("pyinstrument children must be objects")
        inclusive = _seconds(node.get("time"), "frame time")
        child_time = sum(_seconds(child.get("time"), "frame time")
                         for child in children)
        self_time = max(inclusive - child_time, 0.0)
        if self_time > 0:
            builder.sample(full_path, {time_metric: self_time * 1e9})
        for child in children:
            stack.append((child, full_path))
    return builder.build()


def _sniff(data: bytes, path: str) -> bool:
    head = data[:4096]
    return head.lstrip().startswith(b"{") and b'"root_frame"' in data[:8192]


register(Converter(
    name="pyinstrument",
    parse=parse,
    sniff=_sniff,
    extensions=(".pyisession", ".pyinstrument.json"),
    description="pyinstrument JSON renderer output"))
