"""The shared analysis engine: content-keyed memoization + worker pool.

See :mod:`repro.engine.engine` for the design discussion and
``docs/ENGINE.md`` for the cache-key and invalidation contract.
"""

from .cache import CacheStats, LRUCache
from .engine import AnalysisEngine, get_engine, invalidate_everywhere
from .parallel import WorkerPool, default_worker_count

__all__ = [
    "AnalysisEngine", "CacheStats", "LRUCache", "WorkerPool",
    "default_worker_count", "get_engine", "invalidate_everywhere",
]
