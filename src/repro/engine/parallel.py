"""The engine's worker pool for N-way fan-out work.

Multi-profile workloads — aggregating a 16-executor Spark fleet, building
code lenses for every visible document — decompose into independent
per-item computations.  :class:`WorkerPool` runs those through a shared
:class:`~concurrent.futures.ThreadPoolExecutor`, falling back to inline
execution for small batches where thread dispatch would cost more than it
saves.

The pool is created lazily (importing the engine never spawns threads) and
sized conservatively; ``max_workers=0`` or ``1`` disables threading
entirely, which tests use for determinism.
"""

from __future__ import annotations

import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items the pool runs inline: dispatch overhead dominates.
MIN_PARALLEL_ITEMS = 3

#: Target chunks per worker when fanning out large batches.  More than one
#: chunk per worker keeps the pool load-balanced when item costs vary;
#: bounding the chunk count keeps ``executor.map`` from queueing one future
#: (and one context copy) per item.
CHUNKS_PER_WORKER = 4


def default_worker_count() -> int:
    """A conservative pool size: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class WorkerPool:
    """A lazily-started thread pool with an inline fast path."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = (default_worker_count()
                            if max_workers is None else max_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        #: Number of batches that actually fanned out to threads.
        self.parallel_batches = 0
        #: Number of batches that ran inline.
        self.inline_batches = 0

    @property
    def enabled(self) -> bool:
        return self.max_workers > 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=max(1, self.max_workers),
                        thread_name_prefix="easyview-engine")
        return self._executor

    def executor(self) -> ThreadPoolExecutor:
        """The underlying executor (created on first use).

        The socket server schedules per-request dispatch onto this via
        ``loop.run_in_executor``; a disabled pool (``max_workers <= 1``)
        still yields a one-thread executor so CPU-bound work always
        leaves the event loop.
        """
        return self._ensure_executor()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving input order.

        Falls back to a plain loop when the pool is disabled or the batch
        is too small to amortize thread dispatch.  Exceptions propagate to
        the caller exactly as in the serial case.
        """
        if not self.enabled or len(items) < MIN_PARALLEL_ITEMS:
            with self._lock:
                self.inline_batches += 1
            return [fn(item) for item in items]
        with self._lock:
            self.parallel_batches += 1
        executor = self._ensure_executor()
        # Each task runs in a copy of the *submitting* context, so
        # context-local state — in particular the tracer's current span —
        # flows into the workers: a span opened inside a pooled task
        # attaches to the span that submitted the batch, not to whatever
        # the worker thread last ran.
        #
        # Items are grouped into chunks, one context copy per chunk: a
        # Context cannot be entered concurrently but *sequential* re-entry
        # is legal, so a chunk's items share its copy.  That replaces the
        # old per-item ``context.copy().run(...)`` (two copies per item —
        # one here, one of the already-copied snapshot) and stops
        # ``executor.map`` from queueing one future per item on large
        # batches.
        context = contextvars.copy_context()
        chunk_size = max(1, -(-len(items) //
                              (self.max_workers * CHUNKS_PER_WORKER)))
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]

        def run_chunk(chunk: Sequence[T]) -> List[R]:
            ctx = context.copy()
            return [ctx.run(fn, item) for item in chunk]

        results: List[R] = []
        for chunk_results in executor.map(run_chunk, chunks):
            results.extend(chunk_results)
        return results

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "maxWorkers": self.max_workers,
                "parallelBatches": self.parallel_batches,
                "inlineBatches": self.inline_batches,
            }
