"""The memoizing analysis engine (the interactive hot path).

Every hover, code lens, shape switch, and flame-graph request re-enters the
analysis pipeline; on a large profile recomputing a transform or a diff per
keystroke busts the paper's sub-second interaction budget (§VI).  The
:class:`AnalysisEngine` sits between the consumers (the PVP viewer session,
:class:`~repro.viz.flamegraph.FlameGraph`, the CLI) and the analysis
functions, memoizing results in an LRU cache keyed by *content digests*
(:mod:`repro.core.digest`) plus canonicalized options.

Keying by content rather than identity buys two properties:

* **Invalidation for free** — mutating a profile (new samples, new points)
  changes its digest, so the next request recomputes; no dirty bits, no
  explicit invalidation calls.
* **Cross-object sharing** — two equal profiles (the same file opened
  twice, a profile round-tripped through serialization) share one cached
  transform.

Options that cannot be canonicalized — a user callback customization, an
arbitrary zoom root — bypass the cache rather than risking a wrong hit;
bypasses are counted separately in the stats.

N-profile work (aggregation's per-profile transforms, per-file annotation
batches) fans out through a :class:`~repro.engine.parallel.WorkerPool`.
"""

from __future__ import annotations

import threading
import weakref
from typing import (Any, Callable, Dict, Hashable, List, Optional, Sequence,
                    Tuple)

from ..analysis import aggregate as aggregate_mod
from ..analysis import diff as diff_mod
from ..analysis.transform import transform as transform_fn
from ..analysis.viewtree import (ViewNode, ViewTree, default_merge_key,
                                 line_merge_key)
from ..core.digest import profile_digest, viewtree_digest
from ..core.metric import Aggregation
from ..core.profile import Profile
from ..obs import get_tracer
from ..viz.layout import FlameLayout, layout as layout_fn
from .cache import LRUCache
from .parallel import WorkerPool

#: The process-wide tracer: every memoized operation runs under a span
#: carrying its cache disposition (hit / miss / bypass), so a dogfooded
#: flame graph shows exactly where the interaction budget goes.
_tracer = get_tracer()

#: Merge-key functions the engine can name in a cache key.  Anything else
#: is treated as uncacheable and bypasses the cache.
_KEY_FN_NAMES = {
    id(default_merge_key): "default",
    id(line_merge_key): "line",
}


class _Uncacheable(Exception):
    """Raised internally when an option cannot enter a cache key."""


def _canonical(value: Any) -> Hashable:
    """A stable hashable form of an option value, or :class:`_Uncacheable`."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, Aggregation):
        return int(value)
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(item) for item in value)
    if callable(value):
        name = _KEY_FN_NAMES.get(id(value))
        if name is not None:
            return name
        raise _Uncacheable(repr(value))
    raise _Uncacheable(repr(value))


class AnalysisEngine:
    """Memoizing, invalidating front end to the analysis pipeline."""

    def __init__(self, capacity: int = 256,
                 max_workers: Optional[int] = None) -> None:
        self.cache = LRUCache(capacity)
        self.pool = WorkerPool(max_workers)
        #: id(tree) → (weakref, digest).  View trees are pinned by their
        #: consumers (the session's ``opened.views``) and only mutated
        #: through functions that call :func:`invalidate_everywhere`, so
        #: their digests can be memoized per object; profiles mutate freely
        #: (converters keep appending samples) and are digested fresh on
        #: every request.
        self._tree_digests: Dict[int, Tuple[Any, str]] = {}
        _live_engines.add(self)

    def _tree_digest(self, tree: ViewTree) -> str:
        key = id(tree)
        entry = self._tree_digests.get(key)
        if entry is not None and entry[0]() is tree:
            return entry[1]
        digest = viewtree_digest(tree)
        ref = weakref.ref(
            tree, lambda _, k=key: self._tree_digests.pop(k, None))
        self._tree_digests[key] = (ref, digest)
        return digest

    # -- cache plumbing ----------------------------------------------------

    def _memoize(self, operation: str, key_parts: Tuple,
                 compute: Callable[[], Any]) -> Any:
        key = (operation,) + key_parts
        with _tracer.span("engine." + operation) as span:
            found, value = self.cache.lookup(operation, key)
            if span is not None:
                span.set("hit", found)
            if found:
                return value
            value = compute()
            self.cache.store(key, value)
            return value

    def _bypass(self, operation: str, compute: Callable[[], Any]) -> Any:
        self.cache.stats.record_bypass()
        with _tracer.span("engine." + operation, bypass=True):
            return compute()

    # -- memoized operations -----------------------------------------------

    def transform(self, profile: Profile, shape: str,
                  **kwargs: Any) -> ViewTree:
        """Memoized :func:`repro.analysis.transform.transform`."""
        customization = kwargs.get("customization")
        compute = lambda: transform_fn(profile, shape, **kwargs)
        if customization is not None and not customization.is_passthrough():
            # User callbacks may close over arbitrary state; never cache.
            return self._bypass("transform", compute)
        try:
            options = _canonical(
                [(k, v) for k, v in sorted(kwargs.items())
                 if k != "customization"])
        except _Uncacheable:
            return self._bypass("transform", compute)
        return self._memoize("transform",
                             (profile_digest(profile), shape, options),
                             compute)

    def layout(self, tree: ViewTree, metric_index: int = 0,
               canvas_width: float = 1200.0, min_width: float = 0.5,
               root: Optional[ViewNode] = None,
               max_depth: Optional[int] = None) -> FlameLayout:
        """Memoized flame-graph layout (zoomed layouts bypass the cache:
        the zoom root is an object identity, not content)."""
        compute = lambda: layout_fn(tree, metric_index=metric_index,
                                    canvas_width=canvas_width,
                                    min_width=min_width, root=root,
                                    max_depth=max_depth)
        if root is not None:
            return self._bypass("layout", compute)
        return self._memoize(
            "layout",
            (self._tree_digest(tree), metric_index, canvas_width, min_width,
             max_depth),
            compute)

    def diff_trees(self, baseline: ViewTree, treatment: ViewTree,
                   metric_index: int = 0, tolerance: float = 0.0,
                   key_fn=default_merge_key) -> ViewTree:
        """Memoized :func:`repro.analysis.diff.diff_trees`."""
        compute = lambda: diff_mod.diff_trees(
            baseline, treatment, metric_index=metric_index,
            tolerance=tolerance, key_fn=key_fn)
        try:
            options = _canonical((metric_index, tolerance, key_fn))
        except _Uncacheable:
            return self._bypass("diff", compute)
        return self._memoize(
            "diff",
            (self._tree_digest(baseline), self._tree_digest(treatment),
             options),
            compute)

    def diff_profiles(self, baseline: Profile, treatment: Profile,
                      shape: str = "top_down",
                      metric: Optional[str] = None,
                      tolerance: float = 0.0) -> ViewTree:
        """Memoized :func:`repro.analysis.diff.diff_profiles`."""
        return self._memoize(
            "diff",
            (profile_digest(baseline), profile_digest(treatment), shape,
             metric, tolerance),
            lambda: diff_mod.diff_profiles(baseline, treatment, shape=shape,
                                           metric=metric,
                                           tolerance=tolerance))

    def merge_trees(self, trees: Sequence[ViewTree],
                    operators=aggregate_mod.DEFAULT_OPERATORS,
                    key_fn=default_merge_key) -> ViewTree:
        """Memoized :func:`repro.analysis.aggregate.merge_trees`."""
        compute = lambda: aggregate_mod.merge_trees(trees, operators, key_fn)
        try:
            options = _canonical((tuple(operators), key_fn))
        except _Uncacheable:
            return self._bypass("aggregate", compute)
        return self._memoize(
            "aggregate",
            (tuple(self._tree_digest(tree) for tree in trees), options),
            compute)

    def aggregate_profiles(self, profiles: Sequence[Profile],
                           shape: str = "top_down",
                           operators=aggregate_mod.DEFAULT_OPERATORS
                           ) -> ViewTree:
        """Memoized N-profile aggregation with parallel per-profile
        transforms.

        The per-profile transforms are independent, so they fan out through
        the worker pool (each one individually memoized); the final merge
        is sequential and memoized on the transformed trees.
        """
        try:
            options = _canonical((shape, tuple(operators)))
        except _Uncacheable:
            return self._bypass(
                "aggregate",
                lambda: aggregate_mod.aggregate_profiles(profiles, shape,
                                                         operators))

        def compute() -> ViewTree:
            trees = self.pool.map(lambda p: self.transform(p, shape),
                                  profiles)
            return aggregate_mod.merge_trees(trees, operators)

        return self._memoize(
            "aggregate",
            (tuple(profile_digest(p) for p in profiles), options),
            compute)

    def aggregate_window(self, window_key: str, loader: Callable[[], Any],
                         shape: str = "top_down",
                         operators=aggregate_mod.DEFAULT_OPERATORS
                         ) -> ViewTree:
        """Windowed aggregation memoized on a *precomputed* window digest.

        The regression-watch loop re-aggregates the same time window every
        tick.  Content-digest keying (:meth:`aggregate_profiles`) would be
        a cache hit too — but only after loading every member profile to
        digest it.  ``window_key`` is a digest the store derives from the
        window's record identities alone (seqs are append-only and a seq's
        content never changes), so a repeat query over an unchanged window
        returns the cached merged tree *without touching a single profile
        blob*: ``loader`` runs only on a miss, and the miss path still
        flows through :meth:`aggregate_profiles`, so windows sharing
        content share the inner cache entries as well.
        """
        try:
            options = _canonical((str(window_key), shape, tuple(operators)))
        except _Uncacheable:
            return self._bypass(
                "window",
                lambda: self.aggregate_profiles(loader(), shape=shape,
                                                operators=operators))
        return self._memoize(
            "window", (options,),
            lambda: self.aggregate_profiles(loader(), shape=shape,
                                            operators=operators))

    # -- memoized annotation support ---------------------------------------

    def line_attribution(self, tree: ViewTree) -> Dict:
        """Memoized per-(file, line) exclusive-value attribution."""
        from ..ide.annotations import line_attribution
        return self._memoize("annotation", (self._tree_digest(tree), "lines"),
                             lambda: line_attribution(tree))

    def assembly_attribution(self, tree: ViewTree) -> Dict:
        """Memoized per-line assembly annotations."""
        from ..ide.annotations import assembly_attribution
        return self._memoize("annotation",
                             (self._tree_digest(tree), "assembly"),
                             lambda: assembly_attribution(tree))

    def code_lenses(self, tree: ViewTree, file: Optional[str] = None,
                    **kwargs: Any) -> List:
        """Code lenses for one document (or all), off cached attribution."""
        from ..ide.annotations import build_code_lenses
        return build_code_lenses(tree, file=file,
                                 attribution=self.line_attribution(tree),
                                 assembly=self.assembly_attribution(tree),
                                 **kwargs)

    def code_lenses_batch(self, tree: ViewTree, files: Sequence[str],
                          **kwargs: Any) -> Dict[str, List]:
        """Per-file code-lens lists for a batch of documents.

        The attribution tables are computed (or fetched) once, then the
        per-file lens construction fans out through the worker pool — the
        path an IDE hits when a workspace of documents becomes visible.
        """
        from ..ide.annotations import build_code_lenses
        attribution = self.line_attribution(tree)
        assembly = self.assembly_attribution(tree)
        lens_lists = self.pool.map(
            lambda path: build_code_lenses(tree, file=path,
                                           attribution=attribution,
                                           assembly=assembly, **kwargs),
            list(files))
        return dict(zip(files, lens_lists))

    def annotated_files(self, tree: ViewTree) -> List[str]:
        """Sorted distinct files carrying any line attribution."""
        return sorted({path for path, _ in self.line_attribution(tree)})

    # -- maintenance -------------------------------------------------------

    def invalidate_value(self, value: Any) -> int:
        """Forget cache entries holding ``value`` (mutated-in-place results).

        Also drops the object's memoized digest, so the next request keys
        it by its post-mutation content.  Returns the number of cache
        entries dropped.
        """
        self._tree_digests.pop(id(value), None)
        return self.cache.forget_value(value)

    def clear(self) -> None:
        """Drop every cached result and digest memo (counters survive)."""
        self._tree_digests.clear()
        self.cache.clear()

    def reset_stats(self) -> None:
        self.cache.reset_stats()

    def stats(self) -> Dict[str, Any]:
        """Counters for the ``view/engineStats`` request and the CLI."""
        payload = self.cache.stats.to_dict()
        payload["size"] = len(self.cache)
        payload["capacity"] = self.cache.capacity
        payload["pool"] = self.pool.to_dict()
        return payload


#: Every engine alive in the process, for cross-engine invalidation when a
#: cached object is mutated in place (see :func:`invalidate_everywhere`).
_live_engines: "weakref.WeakSet[AnalysisEngine]" = weakref.WeakSet()

_default_engine: Optional[AnalysisEngine] = None
_default_lock = threading.Lock()


def invalidate_everywhere(value: Any) -> int:
    """Forget ``value`` in every live engine's cache.

    The in-place tree mutators (the formula engine's ``derive``, the diff
    module's ``add_delta_column``) call this so a mutated tree is never
    served under its pre-mutation content key, whichever engine cached it.
    Returns the total number of entries dropped.

    Columnar-backed view trees additionally drop their array backing here
    (after forcing the facade, so pending lazy reads keep pre-mutation
    values out of the picture): the mutators write through the ``ViewNode``
    objects, and a survivor columnar plane would keep serving — and
    digesting — the stale values.
    """
    mark = getattr(value, "mark_mutated", None)
    if mark is not None:
        mark()
    return sum(engine.invalidate_value(value) for engine in list(_live_engines))


def get_engine() -> AnalysisEngine:
    """The process-wide engine shared by the CLI, FlameGraph, and sessions."""
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = AnalysisEngine()
    return _default_engine
