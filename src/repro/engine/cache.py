"""The engine's LRU result cache with hit/miss/eviction accounting.

One cache instance backs one :class:`~repro.engine.AnalysisEngine`.  Keys
are ``(operation, *content digests, *canonicalized options)`` tuples built
by the engine; values are whatever the operation produced (view trees,
layouts, attribution tables).  The cache is thread-safe: the engine's
worker pool may populate it from several threads at once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple


class CacheStats:
    """Counters for one cache: global and per-operation.

    Backed by the atomic :class:`repro.obs.metrics.Counter` primitive:
    the engine's worker pool records hits and misses from several threads
    at once, and a bare ``self.hits += 1`` is an unsynchronized
    read-modify-write that loses increments under that load.  The public
    face is unchanged — ``stats.hits`` and friends still read as plain
    integers.
    """

    __slots__ = ("_hits", "_misses", "_evictions", "_bypasses",
                 "_per_operation", "_ops_lock")

    def __init__(self) -> None:
        from ..obs.metrics import Counter
        self._hits = Counter("engine.cache.hits")
        self._misses = Counter("engine.cache.misses")
        self._evictions = Counter("engine.cache.evictions")
        #: Requests that skipped the cache (uncacheable options such as a
        #: user callback or an arbitrary zoom root).
        self._bypasses = Counter("engine.cache.bypasses")
        self._per_operation: Dict[str, Dict[str, Any]] = {}
        self._ops_lock = threading.Lock()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def bypasses(self) -> int:
        return self._bypasses.value

    @property
    def per_operation(self) -> Dict[str, Dict[str, int]]:
        with self._ops_lock:
            return {op: {"hits": bucket["hits"].value,
                         "misses": bucket["misses"].value}
                    for op, bucket in self._per_operation.items()}

    def _bucket(self, operation: str) -> Dict[str, Any]:
        from ..obs.metrics import Counter
        with self._ops_lock:
            bucket = self._per_operation.get(operation)
            if bucket is None:
                bucket = {"hits": Counter(), "misses": Counter()}
                self._per_operation[operation] = bucket
            return bucket

    def record(self, operation: str, hit: bool) -> None:
        bucket = self._bucket(operation)
        if hit:
            self._hits.inc()
            bucket["hits"].inc()
        else:
            self._misses.inc()
            bucket["misses"].inc()

    def record_eviction(self) -> None:
        self._evictions.inc()

    def record_bypass(self) -> None:
        self._bypasses.inc()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "hitRate": round(self.hit_rate, 4),
            "operations": dict(sorted(self.per_operation.items())),
        }


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, operation: str, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(found, value)``, recording a hit or miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.record(operation, hit=False)
                return False, None
            self._entries.move_to_end(key)
            self.stats.record(operation, hit=True)
            return True, value

    def store(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.record_eviction()

    def forget_value(self, value: Any) -> int:
        """Drop every entry whose cached value *is* ``value``.

        Used when a consumer mutates a cached object in place (e.g. the
        formula engine deriving a new metric column onto a view tree): the
        stored result no longer matches its content key.
        """
        with self._lock:
            stale = [key for key, cached in self._entries.items()
                     if cached is value]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()
