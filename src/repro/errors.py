"""Exception hierarchy for the EasyView reproduction."""

from __future__ import annotations


class EasyViewError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(EasyViewError):
    """A profile payload does not conform to its declared format."""


class ConversionError(EasyViewError):
    """A converter could not map a foreign profile into EasyView's model."""


class SchemaError(EasyViewError):
    """A profile violates the EasyView data model (bad ids, metrics, ...)."""


class AnalysisError(EasyViewError):
    """An analysis was asked to do something unsupported or inconsistent."""


class FormulaError(AnalysisError):
    """A derived-metric formula failed to lex, parse, or evaluate."""


class ProtocolError(EasyViewError):
    """A Profile View Protocol message was malformed or out of order."""
