"""Exception hierarchy for the EasyView reproduction, plus :class:`Span`,
the character-range type shared by formula errors and lint diagnostics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class Span:
    """A half-open ``[start, end)`` character range into a source text.

    Formula tokens, formula AST nodes, :class:`FormulaError`, and every
    :class:`repro.lint.Diagnostic` locate themselves with the same type, so
    an IDE can turn any of them into a squiggle without translation.
    """

    start: int = 0
    end: int = 0

    def __len__(self) -> int:
        return max(0, self.end - self.start)

    def slice(self, source: str) -> str:
        """The spanned text."""
        return source[self.start:self.end]

    def to_dict(self) -> dict:
        return {"start": self.start, "end": self.end}

    @classmethod
    def point(cls, position: int) -> "Span":
        """A single-character span at ``position``."""
        return cls(position, position + 1)


class EasyViewError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(EasyViewError):
    """A profile payload does not conform to its declared format."""


class ConversionError(EasyViewError):
    """A converter could not map a foreign profile into EasyView's model."""


class SchemaError(EasyViewError):
    """A profile violates the EasyView data model (bad ids, metrics, ...)."""


class AnalysisError(EasyViewError):
    """An analysis was asked to do something unsupported or inconsistent."""


class FormulaError(AnalysisError):
    """A derived-metric formula failed to lex, parse, or evaluate.

    Always carries the :class:`Span` of the offending token or
    subexpression (when one is known), so editors can underline the exact
    characters instead of echoing the whole formula.
    """

    def __init__(self, message: str, span: Optional[Span] = None) -> None:
        super().__init__(message)
        self.span = span


class ProtocolError(EasyViewError):
    """A Profile View Protocol message was malformed or out of order."""


class StoreError(EasyViewError):
    """The profile store hit a structural problem: corrupt segment,
    unknown query field, manifest referencing a missing file."""


class QueryError(StoreError):
    """A store query string failed to parse or referenced unknown keys."""
