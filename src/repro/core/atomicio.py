"""Crash-safe file writes: tempfile + ``os.replace``.

Every place the system persists an artifact — binary profiles
(:mod:`repro.core.serialize`), JSON profiles (:mod:`repro.core.jsonio`),
CLI report output, the profile store's segments and manifest — writes
through these helpers.  The contract: a reader never observes a
half-written file.  Either the old content is intact or the new content is
complete, because the data lands in a temporary file in the *same
directory* (same filesystem, so the rename is atomic), is flushed and
fsynced, and only then renamed over the destination.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically.

    The temporary file is created next to the destination so
    ``os.replace`` cannot cross a filesystem boundary; on any failure the
    temporary is removed and the destination is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str,
                      encoding: str = "utf-8", fsync: bool = True) -> None:
    """Text-mode counterpart of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write(path: str, data: Union[bytes, str],
                 fsync: bool = True) -> None:
    """Dispatch on payload type: bytes or text."""
    if isinstance(data, str):
        atomic_write_text(path, data, fsync=fsync)
    else:
        atomic_write_bytes(path, data, fsync=fsync)
