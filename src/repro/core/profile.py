"""The :class:`Profile` container: one loaded profile in EasyView's model.

A profile bundles a calling context tree, a metric schema, any advanced
monitoring points (snapshot series, multi-context points), and provenance
metadata (producing tool, capture time, duration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import SchemaError
from .cct import CCT, CCTNode
from .frame import Frame
from .metric import Metric, MetricSchema
from .monitor import MonitoringPoint, POINT_ARITY, PointKind


@dataclass
class ProfileMeta:
    """Provenance metadata for a profile."""

    tool: str = ""
    time_nanos: int = 0
    duration_nanos: int = 0
    attributes: Dict[str, str] = field(default_factory=dict)


class Profile:
    """One profile: CCT + metric schema + monitoring points + metadata."""

    def __init__(self, schema: Optional[MetricSchema] = None,
                 meta: Optional[ProfileMeta] = None) -> None:
        self.cct = CCT()
        self.schema = schema if schema is not None else MetricSchema()
        self.points: List[MonitoringPoint] = []
        self.meta = meta if meta is not None else ProfileMeta()

    # -- construction ------------------------------------------------------

    def add_metric(self, metric: Metric) -> int:
        """Register a metric column; returns its index."""
        return self.schema.add(metric)

    def add_sample(self, frames: List[Frame],
                   values: Dict[int, float]) -> CCTNode:
        """Record a plain sample: merge the path, accumulate on the leaf."""
        self._check_columns(values)
        return self.cct.add_sample(frames, values)

    def add_point(self, point: MonitoringPoint) -> MonitoringPoint:
        """Record an advanced monitoring point.

        Snapshot points (``sequence > 0`` or kind ``ALLOCATION``) and
        multi-context points are kept as first-class objects in addition to
        any per-node accumulation the caller performed.
        """
        self._check_columns(point.values)
        if not point.arity_ok():
            raise SchemaError(
                "point of kind %s expects %d contexts, got %d"
                % (point.kind.name, POINT_ARITY[point.kind],
                   len(point.contexts)))
        self.points.append(point)
        return point

    def _check_columns(self, values: Dict[int, float]) -> None:
        limit = len(self.schema)
        for index in values:
            if not 0 <= index < limit:
                raise SchemaError(
                    "metric column %d out of range (schema has %d columns)"
                    % (index, limit))

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> CCTNode:
        """The CCT root node."""
        return self.cct.root

    def nodes(self) -> Iterator[CCTNode]:
        """Pre-order iteration over all CCT nodes."""
        return self.cct.nodes()

    def node_count(self) -> int:
        """Number of CCT nodes including the root."""
        return self.cct.node_count()

    def metric_index(self, name: str) -> int:
        """Column index for a metric name (raises SchemaError if missing)."""
        return self.schema.index_of(name)

    def total(self, metric_name: str) -> float:
        """Program-wide total of a metric (sum of exclusive values)."""
        index = self.schema.index_of(metric_name)
        return sum(node.exclusive(index) for node in self.nodes())

    def snapshot_sequences(self) -> List[int]:
        """Sorted distinct snapshot sequence numbers present in the points."""
        return sorted({p.sequence for p in self.points if p.sequence > 0})

    def points_of_kind(self, kind: PointKind) -> List[MonitoringPoint]:
        """All monitoring points of a given kind."""
        return [p for p in self.points if p.kind is kind]

    def find_by_name(self, name: str) -> List[CCTNode]:
        """All CCT nodes whose frame name equals ``name``."""
        return self.cct.find_by_name(name)

    def summary(self) -> Dict[str, object]:
        """A floating-window style summary of the whole profile (§VI-B)."""
        totals = {}
        for index, metric in enumerate(self.schema):
            total = sum(node.exclusive(index) for node in self.nodes())
            totals[metric.name] = metric.format_value(total)
        return {
            "tool": self.meta.tool,
            "contexts": self.node_count(),
            "max_depth": self.cct.max_depth(),
            "points": len(self.points),
            "metrics": totals,
        }

    def __repr__(self) -> str:
        return "<Profile tool=%r nodes=%d metrics=%s>" % (
            self.meta.tool, self.node_count(), self.schema.names())
