"""The :class:`Profile` container: one loaded profile in EasyView's model.

A profile bundles a calling context tree, a metric schema, any advanced
monitoring points (snapshot series, multi-context points), and provenance
metadata (producing tool, capture time, duration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import SchemaError
from .cct import CCT, CCTNode
from .frame import Frame
from .metric import Metric, MetricSchema
from .monitor import MonitoringPoint, POINT_ARITY, PointKind


@dataclass
class ProfileMeta:
    """Provenance metadata for a profile."""

    tool: str = ""
    time_nanos: int = 0
    duration_nanos: int = 0
    attributes: Dict[str, str] = field(default_factory=dict)


class Profile:
    """One profile: CCT + metric schema + monitoring points + metadata.

    The CCT has two representations: the per-node object tree
    (:class:`~repro.core.cct.CCT`) and a columnar struct-of-arrays
    snapshot (:class:`~repro.core.cct_columnar.ColumnarCCT`).  Converters
    for large formats attach the columnar form and leave the object tree
    *unmaterialized*; touching :attr:`cct` (or :attr:`root`) materializes
    it lazily, so facade consumers — callbacks, lint rules, the viewer —
    never notice.  Mutating the object tree bumps its version counter,
    which invalidates the columnar snapshot automatically.
    """

    def __init__(self, schema: Optional[MetricSchema] = None,
                 meta: Optional[ProfileMeta] = None) -> None:
        self._cct: Optional[CCT] = CCT()
        self._columnar = None
        self.schema = schema if schema is not None else MetricSchema()
        self.points: List[MonitoringPoint] = []
        self.meta = meta if meta is not None else ProfileMeta()

    # -- representations ---------------------------------------------------

    @property
    def cct(self) -> CCT:
        """The object CCT, materialized from the columnar form on demand."""
        cct = self._cct
        if cct is None:
            cct = self._cct = self._columnar.to_cct()
        return cct

    @cct.setter
    def cct(self, value: CCT) -> None:
        self._cct = value
        self._columnar = None

    def attach_columnar(self, columnar) -> None:
        """Adopt a columnar CCT as this profile's contents.

        The object tree is dropped and will rebuild lazily from the
        columnar arrays if anything asks for it.
        """
        self._cct = None
        self._columnar = columnar

    def columnar(self, build: bool = False):
        """The columnar snapshot, or ``None`` when absent or stale.

        A snapshot is stale once the object tree mutated past the version
        the snapshot was taken at.  With ``build=True`` a missing or stale
        snapshot is (re)built from the object tree — worth it only when
        several vectorized passes will reuse it.
        """
        col = self._columnar
        cct = self._cct
        if col is not None and (cct is None
                                or cct._version == col._synced_version):
            return col
        if not build:
            return None
        from .cct_columnar import from_cct, numpy_available
        if not numpy_available():
            return None
        col = from_cct(self.cct, len(self.schema))
        self._columnar = col
        return col

    # -- construction ------------------------------------------------------

    def add_metric(self, metric: Metric) -> int:
        """Register a metric column; returns its index."""
        return self.schema.add(metric)

    def add_sample(self, frames: List[Frame],
                   values: Dict[int, float]) -> CCTNode:
        """Record a plain sample: merge the path, accumulate on the leaf."""
        self._check_columns(values)
        return self.cct.add_sample(frames, values)

    def add_point(self, point: MonitoringPoint) -> MonitoringPoint:
        """Record an advanced monitoring point.

        Snapshot points (``sequence > 0`` or kind ``ALLOCATION``) and
        multi-context points are kept as first-class objects in addition to
        any per-node accumulation the caller performed.
        """
        self._check_columns(point.values)
        if not point.arity_ok():
            raise SchemaError(
                "point of kind %s expects %d contexts, got %d"
                % (point.kind.name, POINT_ARITY[point.kind],
                   len(point.contexts)))
        self.points.append(point)
        return point

    def _check_columns(self, values: Dict[int, float]) -> None:
        limit = len(self.schema)
        for index in values:
            if not 0 <= index < limit:
                raise SchemaError(
                    "metric column %d out of range (schema has %d columns)"
                    % (index, limit))

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> CCTNode:
        """The CCT root node."""
        return self.cct.root

    def nodes(self) -> Iterator[CCTNode]:
        """Pre-order iteration over all CCT nodes."""
        return self.cct.nodes()

    def node_count(self) -> int:
        """Number of CCT nodes including the root."""
        col = self.columnar()
        if col is not None:
            return col.node_count()
        return self.cct.node_count()

    def metric_index(self, name: str) -> int:
        """Column index for a metric name (raises SchemaError if missing)."""
        return self.schema.index_of(name)

    def total(self, metric_name: str) -> float:
        """Program-wide total of a metric (sum of exclusive values)."""
        index = self.schema.index_of(metric_name)
        col = self.columnar()
        if col is not None:
            return col.total(index)
        return sum(node.exclusive(index) for node in self.nodes())

    def snapshot_sequences(self) -> List[int]:
        """Sorted distinct snapshot sequence numbers present in the points."""
        return sorted({p.sequence for p in self.points if p.sequence > 0})

    def points_of_kind(self, kind: PointKind) -> List[MonitoringPoint]:
        """All monitoring points of a given kind."""
        return [p for p in self.points if p.kind is kind]

    def find_by_name(self, name: str) -> List[CCTNode]:
        """All CCT nodes whose frame name equals ``name``."""
        return self.cct.find_by_name(name)

    def summary(self) -> Dict[str, object]:
        """A floating-window style summary of the whole profile (§VI-B)."""
        totals = {}
        col = self.columnar()
        if col is not None:
            col_totals = col.totals()
            for index, metric in enumerate(self.schema):
                totals[metric.name] = metric.format_value(
                    float(col_totals[index]))
            max_depth = col.max_depth()
        else:
            for index, metric in enumerate(self.schema):
                total = sum(node.exclusive(index) for node in self.nodes())
                totals[metric.name] = metric.format_value(total)
            max_depth = self.cct.max_depth()
        return {
            "tool": self.meta.tool,
            "contexts": self.node_count(),
            "max_depth": max_depth,
            "points": len(self.points),
            "metrics": totals,
        }

    def __repr__(self) -> str:
        return "<Profile tool=%r nodes=%d metrics=%s>" % (
            self.meta.tool, self.node_count(), self.schema.names())
