"""Stable content digests for profiles and view trees.

The analysis engine (:mod:`repro.engine`) memoizes expensive operations —
transforms, diffs, aggregation, layout — keyed by the *content* of their
inputs rather than object identity, so equal profiles share cached results
and any mutation is picked up on the next request.  The digests here are
that key material: a short BLAKE2b hash over everything an analysis can
observe.

* :func:`profile_digest` covers the metric schema, the CCT structure (frame
  identities plus parent/child shape), every node's exclusive metric
  values, and the monitoring points.  Cached *inclusive* values are
  deliberately excluded: they are derived from the exclusives, so a profile
  digests the same whether or not ``compute_inclusive`` has run.
* :func:`viewtree_digest` covers the schema, the shape string, and every
  node's frame, inclusive/exclusive values, differential tag, baseline
  values, and histogram series.

Digests are *stable*: children are visited in a canonical sort order, so
two profiles built from the same samples in a different insertion order
digest identically.  Digesting is a single O(nodes) walk with no
allocation per node beyond the hash state — far cheaper than any of the
operations it guards.
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.viewtree import ViewTree
    from .metric import MetricSchema
    from .profile import Profile

#: Digest size in bytes; 16 gives a 32-hex-char key with negligible
#: collision probability at cache scale.
_DIGEST_SIZE = 16

_PACK_DOUBLE = struct.Struct("<d").pack
_PACK_INT = struct.Struct("<q").pack

#: Structure markers keeping the encoding prefix-free: without explicit
#: enter/exit bytes, a chain of three nodes and a node with two children
#: could hash the same field stream.
_ENTER = b"\x01"
_EXIT = b"\x02"
_SEP = b"\x00"


def _new_hash():
    return hashlib.blake2b(digest_size=_DIGEST_SIZE)


def _update_str(h, text: str) -> None:
    data = text.encode("utf-8", "surrogatepass")
    h.update(_PACK_INT(len(data)))
    h.update(data)


def _update_values(h, values) -> None:
    """Hash a metric-index → float mapping in index order."""
    for index in sorted(values):
        h.update(_PACK_INT(index))
        h.update(_PACK_DOUBLE(values[index]))
    h.update(_SEP)


def _update_frame(h, frame) -> None:
    _update_str(h, frame.name)
    _update_str(h, frame.file)
    h.update(_PACK_INT(frame.line))
    _update_str(h, frame.module)
    h.update(_PACK_INT(frame.address))
    h.update(_PACK_INT(int(frame.kind)))


def _update_schema(h, schema: "MetricSchema") -> None:
    h.update(_PACK_INT(len(schema)))
    for metric in schema:
        _update_str(h, metric.name)
        _update_str(h, metric.unit)
        h.update(_PACK_INT(int(metric.aggregation)))
    h.update(_SEP)


def schema_digest(schema: "MetricSchema") -> str:
    """Hex digest of a metric schema (names, units, aggregations, order)."""
    h = _new_hash()
    _update_schema(h, schema)
    return h.hexdigest()


def _frame_bytes(frame) -> bytes:
    """The exact byte stream :func:`_update_frame` feeds the hash."""
    name = frame.name.encode("utf-8", "surrogatepass")
    file = frame.file.encode("utf-8", "surrogatepass")
    module = frame.module.encode("utf-8", "surrogatepass")
    return b"".join((
        _PACK_INT(len(name)), name,
        _PACK_INT(len(file)), file,
        _PACK_INT(frame.line),
        _PACK_INT(len(module)), module,
        _PACK_INT(frame.address),
        _PACK_INT(int(frame.kind))))


def _update_cct_columnar(h, col) -> None:
    """Feed the hash the enter/exit walk straight from columnar arrays.

    Byte-identical to the object walk in :func:`profile_digest`: the
    pre-order comes from the vectorized frame-sorted traversal, per-node
    value bytes are one structured-array encode over every written cell
    (rows ascend with node id, columns ascend within a row — exactly the
    sorted-index order the object walk emits), and EXIT markers fall out
    of :meth:`~repro.core.cct_columnar.ColumnarCCT.walk_events`.
    """
    import numpy as np

    frame_chunks = [_ENTER + _frame_bytes(frame) for frame in col.frames]
    rows, cols = np.nonzero(col.present)
    cells = np.empty(rows.size, dtype=[("i", "<i8"), ("v", "<f8")])
    cells["i"] = cols
    cells["v"] = col.values[rows, cols]
    cell_stream = memoryview(cells.tobytes())
    n = col.n_nodes
    cell_start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n) * 16, out=cell_start[1:])
    starts = cell_start.tolist()

    pre_ids, exits = col.walk_events()
    fid_l = col.frame_id.tolist()
    out = bytearray()
    for node, exit_count in zip(pre_ids.tolist(), exits.tolist()):
        out += frame_chunks[fid_l[node]]
        out += cell_stream[starts[node]:starts[node + 1]]
        out += _SEP
        if exit_count:
            out += _EXIT * exit_count
        if len(out) >= 1 << 20:
            h.update(out)
            del out[:]
    h.update(out)


def profile_digest(profile: "Profile") -> str:
    """Hex digest of a profile's schema, CCT, values, and points."""
    h = _new_hash()
    _update_schema(h, profile.schema)

    columnar = profile.columnar()
    if columnar is not None:
        # Digest straight off the arrays — same bytes, no facade
        # materialization.  Points still hash below (they reference object
        # contexts, but a profile carrying points materialized already).
        _update_cct_columnar(h, columnar)
        _update_points(h, profile)
        return h.hexdigest()

    # Iterative enter/exit walk; children sorted by frame identity so the
    # digest does not depend on sample insertion order.
    stack = [(profile.root, False)]
    while stack:
        node, exiting = stack.pop()
        if exiting:
            h.update(_EXIT)
            continue
        h.update(_ENTER)
        _update_frame(h, node.frame)
        _update_values(h, node.metrics)
        stack.append((node, True))
        children = sorted(node.children.values(),
                          key=lambda n: n.frame.key())
        stack.extend((child, False) for child in reversed(children))

    _update_points(h, profile)
    return h.hexdigest()


def _update_points(h, profile: "Profile") -> None:
    h.update(_PACK_INT(len(profile.points)))
    # Points are hashed in recorded order: the order of a snapshot series
    # is part of its meaning.
    for point in profile.points:
        h.update(_PACK_INT(int(point.kind)))
        h.update(_PACK_INT(point.sequence))
        _update_values(h, point.values)
        h.update(_PACK_INT(len(point.contexts)))
        for context in point.contexts:
            _update_frame(h, context.frame)
            h.update(_PACK_INT(context.depth()))


def _update_viewtree_columnar(h, cvt) -> None:
    """Feed the hash a view tree's walk straight from columnar arrays.

    Byte-identical to the object walk in :func:`viewtree_digest`: the
    pre-order visits children ranked by ``repr(merge_key)`` (the object
    walk's sort key), and each value plane — inclusive, exclusive,
    baseline, histogram — becomes one structured-array encode over its
    written cells, sliced per row by a cumulative byte offset.
    """
    import numpy as np

    n = cvt.n_rows
    frame_chunks = [_ENTER + _frame_bytes(frame) for frame in cvt.frames]

    def cell_parts(matrix, presence):
        rows, cols = np.nonzero(presence)
        cells = np.empty(rows.size, dtype=[("i", "<i8"), ("v", "<f8")])
        cells["i"] = cols
        cells["v"] = matrix[rows, cols]
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n) * 16, out=starts[1:])
        return memoryview(cells.tobytes()), starts.tolist()

    incl_stream, incl_starts = cell_parts(cvt.inclusive, cvt.incl_present)
    excl_stream, excl_starts = cell_parts(cvt.exclusive, cvt.excl_present)
    base_stream = base_starts = None
    if cvt.baseline is not None:
        base_stream, base_starts = cell_parts(cvt.baseline, cvt.base_present)
    hist_stream = hist_starts = None
    if cvt.hist is not None:
        length = cvt.n_series
        dtype = np.dtype([("i", "<i8"), ("l", "<i8"),
                          ("v", "<f8", (length,))])
        rows, cols = np.nonzero(cvt.hist_present)
        cells = np.empty(rows.size, dtype=dtype)
        cells["i"] = cols
        cells["l"] = length
        cells["v"] = cvt.hist[rows, cols]
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n) * dtype.itemsize,
                  out=starts[1:])
        hist_stream, hist_starts = memoryview(cells.tobytes()), starts.tolist()
    empty_tag = _PACK_INT(0)
    tag_chunks = None
    if cvt.tag_codes is not None:
        from ..analysis.viewtree_columnar import _TAGS
        variants = []
        for tag in _TAGS:
            data = (tag or "").encode("utf-8", "surrogatepass")
            variants.append(_PACK_INT(len(data)) + data)
        tag_chunks = [variants[code] for code in cvt.tag_codes.tolist()]

    ranking = sorted(range(len(cvt.merge_keys)),
                     key=lambda t: repr(cvt.merge_keys[t]))
    rank = np.empty(len(cvt.merge_keys), dtype=np.int64)
    rank[ranking] = np.arange(len(ranking), dtype=np.int64)
    pre = cvt.visit_positions((rank[cvt.token],))
    exits = np.bincount(pre + cvt.subtree_sizes() - 1, minlength=n)
    seq = np.empty(n, dtype=np.int64)
    seq[pre] = np.arange(n, dtype=np.int64)
    fid = cvt.frame_id.tolist()
    out = bytearray()
    # Both seq and exits are indexed by pre-order position.
    for node, exit_count in zip(seq.tolist(), exits.tolist()):
        out += frame_chunks[fid[node]]
        out += incl_stream[incl_starts[node]:incl_starts[node + 1]]
        out += _SEP
        out += excl_stream[excl_starts[node]:excl_starts[node + 1]]
        out += _SEP
        out += tag_chunks[node] if tag_chunks is not None else empty_tag
        if base_stream is not None:
            out += base_stream[base_starts[node]:base_starts[node + 1]]
        out += _SEP
        if hist_stream is not None:
            out += hist_stream[hist_starts[node]:hist_starts[node + 1]]
        out += _SEP
        if exit_count:
            out += _EXIT * exit_count
        if len(out) >= 1 << 20:
            h.update(out)
            del out[:]
    h.update(out)


def viewtree_digest(tree: "ViewTree") -> str:
    """Hex digest of a view tree's schema, shape, structure, and values."""
    h = _new_hash()
    _update_str(h, tree.shape)
    _update_schema(h, tree.schema)

    columnar = getattr(tree, "columnar", None)
    cvt = columnar() if columnar is not None else None
    if cvt is not None:
        # Digest straight off the arrays — same bytes, no ViewNode
        # materialization.
        _update_viewtree_columnar(h, cvt)
        return h.hexdigest()

    stack = [(tree.root, False)]
    while stack:
        node, exiting = stack.pop()
        if exiting:
            h.update(_EXIT)
            continue
        h.update(_ENTER)
        _update_frame(h, node.frame)
        _update_values(h, node.inclusive)
        _update_values(h, node.exclusive)
        _update_str(h, node.tag or "")
        _update_values(h, node.baseline)
        for index in sorted(node.histogram):
            h.update(_PACK_INT(index))
            series = node.histogram[index]
            h.update(_PACK_INT(len(series)))
            for value in series:
                h.update(_PACK_DOUBLE(value))
        h.update(_SEP)
        stack.append((node, True))
        children = sorted(node.children.items(), key=lambda kv: repr(kv[0]))
        stack.extend((child, False) for _, child in reversed(children))
    return h.hexdigest()
