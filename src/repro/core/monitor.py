"""Monitoring points beyond simple per-node metrics.

Plain single-context measurements are folded directly into CCT node metrics.
Two advanced cases from the paper (§IV-A) need first-class point objects:

* *Snapshot series* — profilers such as PProf's heap profiler capture the
  same contexts repeatedly over time; each capture is a point tagged with a
  ``sequence`` number so the aggregate view can draw per-context histograms
  (Fig. 4) and the leak detector can inspect trends (§VII-C1).

* *Multi-context points* — inefficiencies that inherently involve several
  contexts: data reuse (use + reuse), computation redundancy (redundant +
  killing), data races and false sharing (two racing accesses).  These power
  the correlated flame graphs of Fig. 7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from .cct import CCTNode


class PointKind(enum.IntEnum):
    """The semantic role of a monitoring point's context list."""

    PLAIN = 0
    ALLOCATION = 1      # contexts: [allocation]
    USE_REUSE = 2       # contexts: [allocation, use, reuse]
    REDUNDANCY = 3      # contexts: [redundant, killing]
    DATA_RACE = 4       # contexts: [access A, access B]
    FALSE_SHARING = 5   # contexts: [access A, access B]


#: Expected context-list arity per point kind (0 = any).
POINT_ARITY = {
    PointKind.PLAIN: 1,
    PointKind.ALLOCATION: 1,
    PointKind.USE_REUSE: 3,
    PointKind.REDUNDANCY: 2,
    PointKind.DATA_RACE: 2,
    PointKind.FALSE_SHARING: 2,
}


@dataclass
class MonitoringPoint:
    """A measurement referencing one or more CCT contexts.

    Attributes:
        kind: semantic role of the context list.
        contexts: the referenced CCT nodes, in kind-specific order.
        values: metric column index → value.
        sequence: snapshot index for time-series captures (0 otherwise).
    """

    kind: PointKind = PointKind.PLAIN
    contexts: List[CCTNode] = field(default_factory=list)
    values: Dict[int, float] = field(default_factory=dict)
    sequence: int = 0

    def value(self, metric_index: int) -> float:
        """This point's value for a metric column (0 when absent)."""
        return self.values.get(metric_index, 0.0)

    def primary(self) -> CCTNode:
        """The point's primary context (first in the list)."""
        if not self.contexts:
            raise ValueError("monitoring point has no contexts")
        return self.contexts[0]

    def arity_ok(self) -> bool:
        """Whether the context list matches the kind's expected arity."""
        expected = POINT_ARITY.get(self.kind, 0)
        return expected == 0 or len(self.contexts) == expected
