"""Columnar (struct-of-arrays) calling context tree core.

Opening a large profile used to mean materializing one Python
:class:`~repro.core.cct.CCTNode` per calling context — hundreds of
thousands of objects whose construction dominates the cold-open latency
the paper's §V-C optimizations target.  This module keeps the same tree in
five parallel numpy arrays instead:

``parent``
    int64[n]; ``parent[0] == -1`` for the root, and ``parent[i] < i`` for
    every other node (ids are assigned at creation, so the array is
    topologically ordered — parents always precede children).
``frame_id``
    int64[n] indices into ``frames``, the per-tree frame table (interned
    :class:`~repro.core.frame.Frame` objects; entry 0 is the root frame).
``depth``
    int64[n]; the root has depth 0.
``values``
    float64[n, m] exclusive metric matrix (m = schema columns).
``present``
    bool[n, m]; which (node, column) cells were explicitly written.  The
    object representation distinguishes "no value" from "explicit 0.0"
    (both occur in real pprof inputs), so the columnar form must too or
    digests and materialized trees would drift.

Everything else — child ranges in CSR form, per-node depth grouping,
inclusive values, traversal orders, subtree sizes — is derived lazily and
vectorized.  The object API stays available: :meth:`ColumnarCCT.to_cct`
materializes a real ``CCTNode`` tree on demand (the facade consumers like
lint rules and the viewer see exactly what they always saw), and
:func:`from_cct` folds an object tree back into arrays, which is what the
differential-oracle tests round-trip through.

A columnar snapshot is valid for a profile only while the object tree is
unmaterialized or unmutated; validity is tracked with the CCT version
counter (see :class:`~repro.core.cct.CCT`), never by hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

from .cct import CCT, CCTNode
from .frame import Frame, ROOT_FRAME


def numpy_available() -> bool:
    """True when the vectorized kernels can run."""
    return _np is not None


class ColumnarCCT:
    """A calling context tree as parallel arrays (see module docstring)."""

    __slots__ = ("parent", "frame_id", "depth", "values", "present",
                 "frames", "_synced_version", "node_objects",
                 "_inclusive", "_csr", "_csr_sorted", "_depth_groups",
                 "_pre", "_size")

    def __init__(self, parent, frame_id, depth, values, present,
                 frames: List[Frame]) -> None:
        self.parent = parent
        self.frame_id = frame_id
        self.depth = depth
        self.values = values
        self.present = present
        self.frames = frames
        #: CCT version this snapshot mirrors (set when attached/materialized).
        self._synced_version: Optional[int] = None
        #: After :meth:`to_cct`: the materialized node per columnar id.
        self.node_objects: Optional[List[CCTNode]] = None
        self._inclusive = None
        self._csr = None
        self._csr_sorted = None
        self._depth_groups = None
        self._pre = None
        self._size = None

    # -- basic shape -----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.parent.shape[0])

    @property
    def n_metrics(self) -> int:
        return int(self.values.shape[1])

    def node_count(self) -> int:
        """Total number of nodes including the root."""
        return self.n_nodes

    def max_depth(self) -> int:
        """Depth of the deepest context."""
        return int(self.depth.max()) if self.n_nodes else 0

    def total(self, metric_index: int) -> float:
        """Program-wide total of one metric (sum of exclusive values)."""
        return float(self.values[:, metric_index].sum())

    def totals(self):
        """Per-column program-wide totals as a float64 vector."""
        return self.values.sum(axis=0)

    # -- derived structure -----------------------------------------------

    def children_csr(self, sort_by_frame: bool = False):
        """Child ranges in CSR form: ``(order, start)``.

        ``order[start[p]:start[p + 1]]`` lists node ``p``'s children — in
        creation (insertion) order by default, or sorted by frame identity
        (the digest/walk order) with ``sort_by_frame``.
        """
        cached = self._csr_sorted if sort_by_frame else self._csr
        if cached is not None:
            return cached
        n = self.n_nodes
        if sort_by_frame:
            rank = self._frame_ranks()
            order = _np.lexsort((rank[self.frame_id], self.parent))
        else:
            order = _np.argsort(self.parent, kind="stable")
        # The root's parent is -1 and sorts first; drop it from the ranges.
        order = order[1:]
        counts = _np.bincount(self.parent[1:] if n > 1
                              else _np.empty(0, dtype=_np.int64),
                              minlength=n)
        start = _np.empty(n + 1, dtype=_np.int64)
        start[0] = 0
        _np.cumsum(counts, out=start[1:])
        result = (order, start)
        if sort_by_frame:
            self._csr_sorted = result
        else:
            self._csr = result
        return result

    def _frame_ranks(self):
        """Rank of each frame-table entry under ``Frame.key()`` ordering."""
        keys = [frame.key() for frame in self.frames]
        ranking = sorted(range(len(keys)), key=keys.__getitem__)
        ranks = _np.empty(len(keys), dtype=_np.int64)
        ranks[ranking] = _np.arange(len(keys), dtype=_np.int64)
        return ranks

    def _by_depth(self):
        """Node ids grouped by depth: ``(ids, level_start)`` with
        ``ids[level_start[d]:level_start[d + 1]]`` the nodes at depth d."""
        if self._depth_groups is None:
            ids = _np.argsort(self.depth, kind="stable")
            levels = self.max_depth() + 1
            counts = _np.bincount(self.depth, minlength=levels)
            start = _np.empty(levels + 1, dtype=_np.int64)
            start[0] = 0
            _np.cumsum(counts, out=start[1:])
            self._depth_groups = (ids, start)
        return self._depth_groups

    # -- vectorized kernels ------------------------------------------------

    def inclusive(self):
        """The float64[n, m] inclusive matrix, computed lazily.

        One bottom-up pass per depth level: every level's rows are
        scatter-added into their parents' rows with ``np.add.at``, which
        handles sibling collisions.  O(n · m) work, no Python per node.
        """
        if self._inclusive is None:
            inc = self.values.copy()
            ids, start = self._by_depth()
            for level in range(len(start) - 2, 0, -1):
                rows = ids[start[level]:start[level + 1]]
                _np.add.at(inc, self.parent[rows], inc[rows])
            self._inclusive = inc
        return self._inclusive

    def subtree_sizes(self):
        """int64[n] subtree node counts (every node counts itself)."""
        if self._size is None:
            sizes = _np.ones(self.n_nodes, dtype=_np.int64)
            ids, start = self._by_depth()
            for level in range(len(start) - 2, 0, -1):
                rows = ids[start[level]:start[level + 1]]
                _np.add.at(sizes, self.parent[rows], sizes[rows])
            self._size = sizes
        return self._size

    def preorder_positions(self):
        """int64[n] pre-order position per node (frame-sorted siblings).

        Computed without visiting nodes one at a time: each child's offset
        among its siblings is a grouped exclusive cumulative sum of
        subtree sizes, and positions then propagate level by level
        (``pre[child] = pre[parent] + 1 + offset``).
        """
        if self._pre is not None:
            return self._pre
        n = self.n_nodes
        pre = _np.zeros(n, dtype=_np.int64)
        if n > 1:
            sizes = self.subtree_sizes()
            order, start = self.children_csr(sort_by_frame=True)
            # Exclusive cumsum of sibling subtree sizes within each parent
            # group: global cumsum minus each group's starting prefix.
            sized = sizes[order]
            cum = _np.cumsum(sized)
            parents = self.parent[order]
            group_base = _np.empty_like(cum)
            group_start = start[parents]
            nonzero = group_start > 0
            group_base[:] = 0
            group_base[nonzero] = cum[group_start[nonzero] - 1]
            offset = cum - sized - group_base
            ids, lstart = self._by_depth()
            child_offset = _np.empty(n, dtype=_np.int64)
            child_offset[order] = offset
            for level in range(1, len(lstart) - 1):
                rows = ids[lstart[level]:lstart[level + 1]]
                pre[rows] = pre[self.parent[rows]] + 1 + child_offset[rows]
        self._pre = pre
        return pre

    def preorder_ids(self):
        """Node ids in deterministic (frame-sorted) pre-order."""
        seq = _np.empty(self.n_nodes, dtype=_np.int64)
        seq[self.preorder_positions()] = _np.arange(self.n_nodes,
                                                    dtype=_np.int64)
        return seq

    def postorder_ids(self):
        """Node ids in deterministic post-order.

        A node's post-order position is ``pre + size - 1 - depth`` (its
        subtree's last pre-order slot minus the still-open ancestors), so
        the order falls out of the pre-order pass for free.
        """
        post = (self.preorder_positions() + self.subtree_sizes() - 1
                - self.depth)
        seq = _np.empty(self.n_nodes, dtype=_np.int64)
        seq[post] = _np.arange(self.n_nodes, dtype=_np.int64)
        return seq

    def bfs_ids(self):
        """Node ids level by level, siblings in pre-order within a level."""
        return _np.lexsort((self.preorder_positions(), self.depth))

    def walk_events(self):
        """The digest walk as arrays: ``(preorder_ids, exits_after)``.

        ``exits_after[k]`` is how many subtrees end right after the node
        at pre-order position ``k`` — i.e. how many EXIT markers the
        enter/exit digest stream emits there.  Total exits equal n.
        """
        pre = self.preorder_positions()
        last = pre + self.subtree_sizes() - 1
        exits = _np.bincount(last, minlength=self.n_nodes)
        return self.preorder_ids(), exits

    def filter_mask(self, keep_mask):
        """Close a node mask under ancestry and return the new tree.

        The vectorized analogue of pruning: any kept node keeps its whole
        ancestor chain (propagated level by level, top down so chains
        resolve in one pass per level), ids are compacted preserving
        creation order, and metric rows are copied through.
        """
        keep = keep_mask.copy()
        keep[0] = True
        ids, start = self._by_depth()
        # Propagate upward: a parent survives if any child does.  Deepest
        # levels first so long chains resolve in one sweep.
        for level in range(len(start) - 2, 0, -1):
            rows = ids[start[level]:start[level + 1]]
            kept = rows[keep[rows]]
            keep[self.parent[kept]] = True
        new_ids = _np.flatnonzero(keep)
        remap = _np.empty(self.n_nodes, dtype=_np.int64)
        remap[new_ids] = _np.arange(new_ids.size, dtype=_np.int64)
        parent = self.parent[new_ids].copy()
        parent[1:] = remap[parent[1:]]
        return ColumnarCCT(parent=parent,
                           frame_id=self.frame_id[new_ids].copy(),
                           depth=self.depth[new_ids].copy(),
                           values=self.values[new_ids].copy(),
                           present=self.present[new_ids].copy(),
                           frames=self.frames)

    # -- conversion ---------------------------------------------------------

    def to_cct(self) -> CCT:
        """Materialize the full object tree (the lazy facade).

        Children are inserted in creation order, so the materialized tree
        is indistinguishable — dict orders included — from one built by
        replaying the original samples through the object API.
        """
        cct = CCT()
        n = self.n_nodes
        nodes: List[Optional[CCTNode]] = [None] * n
        nodes[0] = root = cct.root
        root.frame = self.frames[int(self.frame_id[0])]
        parent_l = self.parent.tolist()
        frame_l = self.frame_id.tolist()
        frames = self.frames
        new = CCTNode.__new__
        for i in range(1, n):
            node = new(CCTNode)
            frame = frames[frame_l[i]]
            parent = nodes[parent_l[i]]
            node.frame = frame
            node.parent = parent
            node.children = {}
            node.metrics = {}
            node.inclusive = {}
            node._tree = cct
            parent.children[frame] = node
            nodes[i] = node
        rows, cols = _np.nonzero(self.present)
        vals = self.values[rows, cols]
        for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            nodes[r].metrics[c] = v
        self.node_objects = nodes
        cct._version = n  # any nonzero marker; snapshots sync to it
        cct._inclusive_stamp = cct._version
        self._synced_version = cct._version
        return cct

    def resolve_nodes(self, ids) -> List[CCTNode]:
        """Materialized :class:`CCTNode` objects for columnar ids."""
        nodes = self.node_objects
        if nodes is None:
            raise RuntimeError(
                "columnar ids resolve only after to_cct() materialized "
                "the object tree")
        return [nodes[i] for i in ids]


def from_cct(cct: CCT, n_metrics: int) -> ColumnarCCT:
    """Fold an object CCT into columnar arrays.

    Ids are assigned in insertion-order pre-order (the object walk a
    sample replay would produce), so ``to_cct`` of the result rebuilds an
    identical tree.
    """
    if _np is None:
        raise RuntimeError("columnar CCTs require numpy")
    parents: List[int] = []
    frame_ids: List[int] = []
    depths: List[int] = []
    frame_table: List[Frame] = [ROOT_FRAME]
    frame_index: Dict[Frame, int] = {ROOT_FRAME: 0}
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    # (node, columnar parent id, depth); reversed children keep insertion
    # order under stack popping.
    stack: List[Tuple[CCTNode, int, int]] = [(cct.root, -1, 0)]
    while stack:
        node, parent_id, depth = stack.pop()
        node_id = len(parents)
        frame = node.frame
        fid = frame_index.get(frame)
        if fid is None:
            fid = len(frame_table)
            frame_index[frame] = fid
            frame_table.append(frame)
        parents.append(parent_id)
        frame_ids.append(fid)
        depths.append(depth)
        for column, value in node.metrics.items():
            rows.append(node_id)
            cols.append(column)
            vals.append(value)
        children = list(node.children.values())
        for child in reversed(children):
            stack.append((child, node_id, depth + 1))
    n = len(parents)
    values = _np.zeros((n, n_metrics), dtype=_np.float64)
    present = _np.zeros((n, n_metrics), dtype=bool)
    if rows:
        row_a = _np.asarray(rows, dtype=_np.int64)
        col_a = _np.asarray(cols, dtype=_np.int64)
        values[row_a, col_a] = _np.asarray(vals, dtype=_np.float64)
        present[row_a, col_a] = True
    col = ColumnarCCT(parent=_np.asarray(parents, dtype=_np.int64),
                      frame_id=_np.asarray(frame_ids, dtype=_np.int64),
                      depth=_np.asarray(depths, dtype=_np.int64),
                      values=values, present=present, frames=frame_table)
    col._synced_version = cct._version
    return col


class ColumnarBuilder:
    """Incremental trie builder for columnar CCTs.

    Drives the same prefix-merge a ``CCTNode.child`` walk performs, but on
    integer ids: the child map is one flat dict keyed
    ``(parent_id << shift) | frame_table_id``, so descending a path costs
    an int shift and a dict probe instead of a dataclass hash.  Values are
    accumulated separately (vectorized by the callers), keeping this class
    pure tree construction.
    """

    __slots__ = ("parents", "frame_ids", "depths", "frames", "_frame_index",
                 "_trie", "_shift")

    def __init__(self) -> None:
        self.parents: List[int] = [-1]
        self.frame_ids: List[int] = [0]
        self.depths: List[int] = [0]
        self.frames: List[Frame] = [ROOT_FRAME]
        self._frame_index: Dict[Frame, int] = {ROOT_FRAME: 0}
        self._trie: Dict[int, int] = {}
        # 2**21 distinct frames is far beyond any observed profile; the
        # shift grows on demand if an input proves otherwise.
        self._shift = 21

    def frame_token(self, frame: Frame) -> int:
        """Intern a frame into the table; returns its id."""
        fid = self._frame_index.get(frame)
        if fid is None:
            fid = len(self.frames)
            self._frame_index[frame] = fid
            self.frames.append(frame)
            if fid >> self._shift:
                self._rekey(self._shift + 8)
        return fid

    def _rekey(self, shift: int) -> None:
        mask = (1 << self._shift) - 1
        self._trie = {((key >> self._shift) << shift) | (key & mask): node
                      for key, node in self._trie.items()}
        self._shift = shift

    def descend(self, node_id: int, fid: int) -> int:
        """One prefix-merge step: the child of ``node_id`` for frame id
        ``fid``, created if absent."""
        key = (node_id << self._shift) | fid
        child = self._trie.get(key)
        if child is None:
            child = len(self.parents)
            self._trie[key] = child
            self.parents.append(node_id)
            self.frame_ids.append(fid)
            self.depths.append(self.depths[node_id] + 1)
        return child

    def add_path_ids(self, fids) -> int:
        """Descend a root-first frame-id path; returns the leaf id."""
        node = 0
        descend = self.descend
        for fid in fids:
            node = descend(node, fid)
        return node

    @property
    def n_nodes(self) -> int:
        return len(self.parents)

    def finish(self, values, present, frames_override=None) -> ColumnarCCT:
        """Freeze the trie into a :class:`ColumnarCCT`."""
        return ColumnarCCT(
            parent=_np.asarray(self.parents, dtype=_np.int64),
            frame_id=_np.asarray(self.frame_ids, dtype=_np.int64),
            depth=_np.asarray(self.depths, dtype=_np.int64),
            values=values, present=present,
            frames=frames_override if frames_override is not None
            else self.frames)
