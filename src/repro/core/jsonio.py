"""Human-readable JSON (de)serialization of profiles.

The binary format (:mod:`repro.core.serialize`) is the interchange format;
this JSON form exists for debugging, diffing in code review, and feeding
web front-ends.  The layout mirrors the Protocol Buffer schema: a string
table, metric descriptors, a flattened node array with parent links, and
monitoring points.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import FormatError
from .cct import CCTNode
from .frame import FrameKind, intern_frame
from .metric import Aggregation, Metric, MetricSchema
from .monitor import MonitoringPoint, PointKind
from .profile import Profile, ProfileMeta

FORMAT_NAME = "easyview-json"
FORMAT_VERSION = 1


def to_dict(profile: Profile) -> Dict[str, Any]:
    """Lower a profile to JSON-ready plain data."""
    nodes: List[Dict[str, Any]] = []
    points: List[Dict[str, Any]] = []
    ids: Dict[int, int] = {}
    stack: List[CCTNode] = [profile.root]
    while stack:
        node = stack.pop()
        node_id = len(nodes)
        ids[id(node)] = node_id
        frame = node.frame
        entry: Dict[str, Any] = {
            "id": node_id,
            "parent": ids[id(node.parent)] if node.parent else None,
            "kind": frame.kind.name.lower(),
            "name": frame.name,
        }
        if frame.file:
            entry["file"] = frame.file
        if frame.line:
            entry["line"] = frame.line
        if frame.module:
            entry["module"] = frame.module
        if frame.address:
            entry["address"] = frame.address
        if node.metrics:
            entry["metrics"] = {str(k): v
                                for k, v in sorted(node.metrics.items())}
        nodes.append(entry)
        stack.extend(node.sorted_children())

    for point in profile.points:
        points.append({
            "kind": point.kind.name.lower(),
            "contexts": [ids[id(ctx)] for ctx in point.contexts],
            "values": {str(k): v for k, v in sorted(point.values.items())},
            "sequence": point.sequence,
        })

    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "tool": profile.meta.tool,
        "timeNanos": profile.meta.time_nanos,
        "durationNanos": profile.meta.duration_nanos,
        "attributes": dict(profile.meta.attributes),
        "metrics": [{
            "name": metric.name,
            "unit": metric.unit,
            "description": metric.description,
            "aggregation": metric.aggregation.name.lower(),
        } for metric in profile.schema],
        "nodes": nodes,
        "points": points,
    }


def from_dict(payload: Dict[str, Any]) -> Profile:
    """Raise JSON-ready data back into a :class:`Profile`."""
    if payload.get("format") != FORMAT_NAME:
        raise FormatError("not an %s document" % FORMAT_NAME)
    if payload.get("version") != FORMAT_VERSION:
        raise FormatError("unsupported %s version %r"
                          % (FORMAT_NAME, payload.get("version")))

    schema = MetricSchema()
    for spec in payload.get("metrics", []):
        schema.add(Metric(
            name=spec["name"], unit=spec.get("unit", ""),
            description=spec.get("description", ""),
            aggregation=Aggregation[spec.get("aggregation",
                                             "sum").upper()]))
    profile = Profile(schema=schema, meta=ProfileMeta(
        tool=payload.get("tool", ""),
        time_nanos=int(payload.get("timeNanos", 0)),
        duration_nanos=int(payload.get("durationNanos", 0)),
        attributes=dict(payload.get("attributes", {}))))

    by_id: Dict[int, CCTNode] = {}
    for entry in payload.get("nodes", []):
        kind = FrameKind[entry.get("kind", "function").upper()]
        if kind is FrameKind.ROOT:
            by_id[entry["id"]] = profile.root
            continue
        parent = by_id.get(entry.get("parent"))
        if parent is None:
            raise FormatError("node %r references undefined parent %r"
                              % (entry.get("id"), entry.get("parent")))
        frame = intern_frame(entry.get("name", ""),
                             file=entry.get("file", ""),
                             line=int(entry.get("line", 0)),
                             module=entry.get("module", ""),
                             address=int(entry.get("address", 0)),
                             kind=kind)
        node = parent.child(frame)
        for key, value in entry.get("metrics", {}).items():
            node.add_value(int(key), float(value))
        by_id[entry["id"]] = node

    for spec in payload.get("points", []):
        contexts = []
        for context_id in spec.get("contexts", []):
            node = by_id.get(context_id)
            if node is None:
                raise FormatError("point references undefined node %r"
                                  % context_id)
            contexts.append(node)
        profile.points.append(MonitoringPoint(
            kind=PointKind[spec.get("kind", "plain").upper()],
            contexts=contexts,
            values={int(k): float(v)
                    for k, v in spec.get("values", {}).items()},
            sequence=int(spec.get("sequence", 0))))
    return profile


def dumps(profile: Profile, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(profile), indent=indent, sort_keys=False)


def dumps_data(payload: Any, indent: int = 2) -> str:
    """Serialize an arbitrary JSON-ready payload (not a profile).

    The one formatting used by every machine-readable CLI snapshot
    (``lint --json``, ``store stats --json``, ``engine-stats --json``,
    ``obs metrics --json``): sorted keys, two-space indent, trailing
    newline-free.
    """
    return json.dumps(payload, indent=indent, sort_keys=True)


def loads(text: str) -> Profile:
    """Parse from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError("invalid JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise FormatError("document must be a JSON object")
    return from_dict(payload)


def dump(profile: Profile, path: str, indent: int = 2) -> None:
    """Write a profile to ``path`` as JSON, atomically."""
    from .atomicio import atomic_write_text
    atomic_write_text(path, dumps(profile, indent=indent))


def load(path: str) -> Profile:
    """Read a JSON profile from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
