"""Frames: the source-code attribution attached to every CCT node.

A frame captures the paper's "code mapping" feature set (§IV-A): function
name, source file and line, load module, and instruction address.  Frames of
kind ``DATA_OBJECT`` name heap or static data objects instead of code,
enabling data-centric memory profilers (ScaAnalyzer, DrCCTProf, MemProf) to
live in the same representation.

Frames are immutable and interned: constructing the same attribution twice
yields the same object, so CCT prefix-merging compares identities.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class FrameKind(enum.IntEnum):
    """What program entity a frame attributes to."""

    ROOT = 0
    FUNCTION = 1
    LOOP = 2
    BASIC_BLOCK = 3
    INSTRUCTION = 4
    DATA_OBJECT = 5
    THREAD = 6


@dataclass(frozen=True)
class SourceLocation:
    """A (file, line) pair; ``line`` 0 means the line is unknown."""

    file: str = ""
    line: int = 0

    def is_known(self) -> bool:
        """True when the profile carried usable line-mapping information."""
        return bool(self.file) and self.line > 0

    def __str__(self) -> str:
        if not self.file:
            return "<unknown>"
        if self.line > 0:
            return "%s:%d" % (self.file, self.line)
        return self.file


@dataclass(frozen=True)
class Frame:
    """One immutable frame of attribution."""

    name: str
    file: str = ""
    line: int = 0
    module: str = ""
    address: int = 0
    kind: FrameKind = FrameKind.FUNCTION

    def __post_init__(self) -> None:
        # Frames are immutable and heavily compared during view merging, so
        # the merge identity is computed once at construction.
        object.__setattr__(self, "_merge_key",
                           (self.name, self.file, self.module))

    @property
    def location(self) -> SourceLocation:
        """The frame's source location."""
        return SourceLocation(self.file, self.line)

    def key(self) -> Tuple[str, str, int, str, int, int]:
        """A hashable identity tuple used for interning and merging."""
        return (self.name, self.file, self.line, self.module,
                self.address, int(self.kind))

    def merge_key(self) -> Tuple[str, str, str]:
        """Identity used when merging CCT prefixes across profiles.

        Line numbers and addresses shift between builds, so cross-profile
        operations (aggregation, differencing) match frames on name, file,
        and module only — the same rule pprof's ``-diff_base`` uses.
        """
        return self._merge_key  # type: ignore[attr-defined]

    def label(self) -> str:
        """Human-readable ``module!function`` label used in flame graphs."""
        if self.module:
            return "%s!%s" % (self.module, self.name)
        return self.name

    def with_line(self, line: int) -> "Frame":
        """Return an interned copy of this frame at a different line."""
        return intern_frame(self.name, self.file, line, self.module,
                            self.address, self.kind)

    def __str__(self) -> str:
        loc = self.location
        if loc.is_known():
            return "%s (%s)" % (self.label(), loc)
        return self.label()


ROOT_FRAME = Frame(name="<root>", kind=FrameKind.ROOT)

_INTERN_LOCK = threading.Lock()
_INTERN_POOL: Dict[Tuple[str, str, int, str, int, int], Frame] = {
    ROOT_FRAME.key(): ROOT_FRAME,
}


def intern_frame(name: str,
                 file: str = "",
                 line: int = 0,
                 module: str = "",
                 address: int = 0,
                 kind: FrameKind = FrameKind.FUNCTION) -> Frame:
    """Return the canonical :class:`Frame` for this attribution.

    Interning makes frame equality an identity check and deduplicates the
    attribution strings across every loaded profile, which is what keeps
    EasyView responsive on large inputs.
    """
    key = (name, file, line, module, address, int(kind))
    frame = _INTERN_POOL.get(key)
    if frame is None:
        with _INTERN_LOCK:
            frame = _INTERN_POOL.get(key)
            if frame is None:
                frame = Frame(name=name, file=file, line=line, module=module,
                              address=address, kind=kind)
                _INTERN_POOL[key] = frame
    return frame


def intern_pool_size() -> int:
    """Number of distinct frames currently interned (for diagnostics)."""
    with _INTERN_LOCK:
        return len(_INTERN_POOL)


def data_object_frame(name: str, file: str = "", line: int = 0,
                      module: str = "") -> Frame:
    """Intern a frame naming a data object (heap or static allocation)."""
    return intern_frame(name, file, line, module, kind=FrameKind.DATA_OBJECT)
