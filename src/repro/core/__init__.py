"""EasyView's core profile representation: interned frames, calling context
trees, metric schemas, monitoring points, and binary (de)serialization."""

from .cct import CCT, CCTNode
from .digest import profile_digest, schema_digest, viewtree_digest
from .frame import (Frame, FrameKind, ROOT_FRAME, SourceLocation,
                    data_object_frame, intern_frame)
from .metric import Aggregation, Metric, MetricSchema
from .monitor import MonitoringPoint, PointKind
from .profile import Profile, ProfileMeta
from .strings import StringTable
from . import jsonio, serialize

__all__ = [
    "CCT", "CCTNode", "Frame", "FrameKind", "ROOT_FRAME", "SourceLocation",
    "data_object_frame", "intern_frame", "Aggregation", "Metric",
    "MetricSchema", "MonitoringPoint", "PointKind", "Profile", "ProfileMeta",
    "StringTable", "serialize", "jsonio",
    "profile_digest", "schema_digest", "viewtree_digest",
]
