"""Metric descriptors and the per-profile metric schema.

Profilers attach one or more metrics (time, cycles, bytes, misses, lock
waits, ...) to every monitoring point.  A :class:`MetricSchema` is the
ordered list of descriptors for one profile; metric *values* are stored on
CCT nodes and monitoring points as dense mappings from descriptor index to
float.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

from ..errors import SchemaError


class Aggregation(enum.IntEnum):
    """How a metric combines when profiles or nodes merge."""

    SUM = 0
    MIN = 1
    MAX = 2
    MEAN = 3
    LAST = 4

    def combine(self, values: List[float]) -> float:
        """Fold a list of values with this rule (empty list → 0)."""
        if not values:
            return 0.0
        if self is Aggregation.SUM:
            return float(sum(values))
        if self is Aggregation.MIN:
            return float(min(values))
        if self is Aggregation.MAX:
            return float(max(values))
        if self is Aggregation.MEAN:
            return float(sum(values)) / len(values)
        return float(values[-1])


@dataclass(frozen=True)
class Metric:
    """Descriptor for one metric column."""

    name: str
    unit: str = ""
    description: str = ""
    aggregation: Aggregation = Aggregation.SUM

    def format_value(self, value: float) -> str:
        """Render a value with its unit, using human-scale suffixes."""
        if self.unit == "bytes":
            return _format_bytes(value)
        if self.unit in ("nanoseconds", "ns"):
            return _format_time(value)
        if value == int(value):
            text = "{:,}".format(int(value))
        else:
            text = "%.2f" % value
        return "%s %s" % (text, self.unit) if self.unit else text


class MetricSchema:
    """An ordered, name-indexed collection of metric descriptors."""

    def __init__(self, metrics: Optional[List[Metric]] = None) -> None:
        self._metrics: List[Metric] = []
        self._by_name: Dict[str, int] = {}
        for metric in metrics or []:
            self.add(metric)

    def add(self, metric: Metric) -> int:
        """Register a metric and return its column index.

        Re-adding a metric with the same name returns the existing index;
        conflicting descriptors under one name are a schema error.
        """
        existing = self._by_name.get(metric.name)
        if existing is not None:
            if self._metrics[existing] != metric:
                raise SchemaError(
                    "metric %r already registered with a different "
                    "descriptor" % metric.name)
            return existing
        index = len(self._metrics)
        self._metrics.append(metric)
        self._by_name[metric.name] = index
        return index

    def derive(self, name: str, unit: str = "", description: str = "",
               aggregation: Aggregation = Aggregation.SUM) -> int:
        """Add a derived-metric column (used by the formula engine)."""
        return self.add(Metric(name=name, unit=unit, description=description,
                               aggregation=aggregation))

    def index_of(self, name: str) -> int:
        """Column index for a metric name; raises SchemaError if missing."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError("unknown metric %r (have: %s)" % (
                name, ", ".join(sorted(self._by_name)))) from None

    def get(self, name: str) -> Optional[int]:
        """Column index for a metric name, or None."""
        return self._by_name.get(name)

    def __getitem__(self, index: int) -> Metric:
        return self._metrics[index]

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        """Metric names in column order."""
        return [m.name for m in self._metrics]

    def copy(self) -> "MetricSchema":
        """An independent copy of this schema."""
        return MetricSchema(list(self._metrics))

    def union(self, other: "MetricSchema") -> "MetricSchema":
        """Schema containing this schema's columns then ``other``'s new ones.

        Descriptors that share a name must agree; the merged column keeps the
        left-hand descriptor.  Used by multi-profile aggregation.
        """
        merged = self.copy()
        for metric in other:
            existing = merged.get(metric.name)
            if existing is None:
                merged.add(metric)
            elif merged[existing].unit != metric.unit:
                raise SchemaError(
                    "metric %r has conflicting units %r vs %r"
                    % (metric.name, merged[existing].unit, metric.unit))
        return merged


def _format_bytes(value: float) -> str:
    magnitude = abs(value)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if magnitude < 1024 or suffix == "TiB":
            if suffix == "B":
                return "%d B" % int(value)
            return "%.2f %s" % (value, suffix)
        value /= 1024.0
        magnitude /= 1024.0
    return "%.2f TiB" % value


def _format_time(nanos: float) -> str:
    magnitude = abs(nanos)
    if magnitude < 1e3:
        return "%d ns" % int(nanos)
    if magnitude < 1e6:
        return "%.2f us" % (nanos / 1e3)
    if magnitude < 1e9:
        return "%.2f ms" % (nanos / 1e6)
    return "%.2f s" % (nanos / 1e9)
