"""Manual memory-management guard (§V-C).

The paper: "EASYVIEW manages the memory manually to avoid frequent
invocation of garbage collectors."  In CPython the analogous lever is the
cyclic garbage collector: building a million-node CCT allocates millions of
young container objects, and generational collections triggered mid-build
re-traverse them repeatedly for nothing (profile trees are acyclic by
construction — children/parent links are the only cycles and are reclaimed
at close with one explicit collection).

:func:`no_gc` disables collection for the duration of a bulk build and
restores the previous state afterwards; measured on the Fig. 5 corpus it
roughly halves profile-open time at the large end.
"""

from __future__ import annotations

import contextlib
import gc
from typing import Iterator


@contextlib.contextmanager
def no_gc(collect_after: bool = False) -> Iterator[None]:
    """Disable cyclic GC inside the block; restore the prior state after.

    Nesting is safe: the guard only re-enables collection if it was enabled
    on entry.  ``collect_after`` runs one explicit collection on exit (used
    when a bulk structure was also *discarded* inside the block).
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            if collect_after:
                gc.collect()
