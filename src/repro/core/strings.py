"""String interning table shared by a profile's frames and metrics.

Index 0 is always the empty string, mirroring pprof's convention, so that
proto3's "default values are absent" rule cannot corrupt references.
Interning is one of EasyView's core efficiency levers (§V-C): frames keep
small integer references instead of repeated path strings, and equality
checks during CCT prefix-merging become integer compares.
"""

from __future__ import annotations

from typing import Dict, Iterator, List


class StringTable:
    """An append-only intern pool mapping strings to stable indices."""

    def __init__(self) -> None:
        self._strings: List[str] = [""]
        self._index: Dict[str, int] = {"": 0}

    def intern(self, value: str) -> int:
        """Return the index for ``value``, adding it if unseen."""
        idx = self._index.get(value)
        if idx is None:
            idx = len(self._strings)
            self._strings.append(value)
            self._index[value] = idx
        return idx

    def lookup(self, index: int) -> str:
        """Resolve an index back to its string.

        Out-of-range indices resolve to the empty string rather than raising,
        because foreign profiles occasionally contain dangling references and
        a viewer must stay usable.
        """
        if 0 <= index < len(self._strings):
            return self._strings[index]
        return ""

    def __contains__(self, value: str) -> bool:
        return value in self._index

    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)

    def as_list(self) -> List[str]:
        """Return a copy of the table in index order."""
        return list(self._strings)

    @classmethod
    def from_list(cls, strings: List[str]) -> "StringTable":
        """Rebuild a table from a serialized list (index 0 forced to "")."""
        table = cls()
        for i, s in enumerate(strings):
            if i == 0:
                continue  # slot 0 is always ""
            table._strings.append(s)
            table._index.setdefault(s, len(table._strings) - 1)
        return table
