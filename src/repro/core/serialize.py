"""(De)serialization between :class:`~repro.core.profile.Profile` and the
EasyView Protocol Buffer schema (:mod:`repro.proto.easyview_pb`).

On the wire, every CCT node becomes a ``ContextNode`` (parent links encode
the tree), node-resident exclusive metrics become sequence-0 ``PLAIN``
monitoring points, and advanced points (snapshots, multi-context pairs)
serialize with their full context lists.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import FormatError
from ..proto import easyview_pb as pb
from .cct import CCTNode
from .frame import Frame, FrameKind, intern_frame
from .metric import Aggregation, Metric, MetricSchema
from .monitor import MonitoringPoint, PointKind
from .profile import Profile, ProfileMeta
from .strings import StringTable

_FRAME_KIND_TO_PB = {
    FrameKind.ROOT: pb.CONTEXT_ROOT,
    FrameKind.FUNCTION: pb.CONTEXT_FUNCTION,
    FrameKind.LOOP: pb.CONTEXT_LOOP,
    FrameKind.BASIC_BLOCK: pb.CONTEXT_BASIC_BLOCK,
    FrameKind.INSTRUCTION: pb.CONTEXT_INSTRUCTION,
    FrameKind.DATA_OBJECT: pb.CONTEXT_DATA_OBJECT,
    FrameKind.THREAD: pb.CONTEXT_THREAD,
}
_PB_TO_FRAME_KIND = {v: k for k, v in _FRAME_KIND_TO_PB.items()}


def to_message(profile: Profile) -> pb.ProfileMessage:
    """Lower a profile into its Protocol Buffer message form."""
    strings = StringTable()
    message = pb.ProfileMessage(string_table=[])
    message.tool = strings.intern(profile.meta.tool)
    message.time_nanos = profile.meta.time_nanos
    message.duration_nanos = profile.meta.duration_nanos

    for metric in profile.schema:
        message.metrics.append(pb.MetricDescriptor(
            name=strings.intern(metric.name),
            unit=strings.intern(metric.unit),
            description=strings.intern(metric.description),
            aggregation=int(metric.aggregation)))

    node_ids: Dict[int, int] = {}  # id(CCTNode) -> wire id
    next_id = 0
    # Pre-order walk so every parent is assigned before its children.
    stack: List[CCTNode] = [profile.root]
    while stack:
        node = stack.pop()
        node_ids[id(node)] = next_id
        parent_id = node_ids[id(node.parent)] if node.parent is not None else 0
        frame = node.frame
        message.nodes.append(pb.ContextNode(
            id=next_id,
            parent_id=parent_id,
            kind=_FRAME_KIND_TO_PB[frame.kind],
            name=strings.intern(frame.name),
            file=strings.intern(frame.file),
            line=frame.line,
            module=strings.intern(frame.module),
            address=frame.address))
        if node.metrics:
            message.points.append(pb.MonitoringPoint(
                context_id=[next_id],
                values=[pb.MetricValue(metric_id=i, value=v)
                        for i, v in sorted(node.metrics.items())],
                kind=pb.POINT_PLAIN,
                sequence=0))
        next_id += 1
        stack.extend(node.sorted_children())

    for point in profile.points:
        context_ids = []
        for ctx in point.contexts:
            wire_id = node_ids.get(id(ctx))
            if wire_id is None:
                raise FormatError(
                    "monitoring point references a context outside the CCT")
            context_ids.append(wire_id)
        message.points.append(pb.MonitoringPoint(
            context_id=context_ids,
            values=[pb.MetricValue(metric_id=i, value=v)
                    for i, v in sorted(point.values.items())],
            kind=int(point.kind),
            sequence=point.sequence))

    message.string_table = strings.as_list()
    return message


def from_message(message: pb.ProfileMessage) -> Profile:
    """Raise a Protocol Buffer message back into a :class:`Profile`."""
    strings = message.string_table or [""]

    def lookup(index: int) -> str:
        return strings[index] if 0 <= index < len(strings) else ""

    schema = MetricSchema()
    for descriptor in message.metrics:
        schema.add(Metric(
            name=lookup(descriptor.name),
            unit=lookup(descriptor.unit),
            description=lookup(descriptor.description),
            aggregation=Aggregation(descriptor.aggregation)))

    meta = ProfileMeta(tool=lookup(message.tool),
                       time_nanos=message.time_nanos,
                       duration_nanos=message.duration_nanos)
    profile = Profile(schema=schema, meta=meta)

    from .cct_columnar import numpy_available
    if numpy_available():
        columnar = _columnar_from_message(message, lookup, len(schema))
        if columnar is not None:
            profile.attach_columnar(columnar)
            return profile

    nodes_by_id: Dict[int, CCTNode] = {}
    for wire_node in message.nodes:
        kind = _PB_TO_FRAME_KIND.get(wire_node.kind, FrameKind.FUNCTION)
        if kind is FrameKind.ROOT:
            nodes_by_id[wire_node.id] = profile.root
            continue
        parent = nodes_by_id.get(wire_node.parent_id)
        if parent is None:
            raise FormatError(
                "context %d references undefined parent %d"
                % (wire_node.id, wire_node.parent_id))
        frame = intern_frame(name=lookup(wire_node.name),
                             file=lookup(wire_node.file),
                             line=wire_node.line,
                             module=lookup(wire_node.module),
                             address=wire_node.address,
                             kind=kind)
        nodes_by_id[wire_node.id] = parent.child(frame)

    for wire_point in message.points:
        contexts = []
        for context_id in wire_point.context_id:
            node = nodes_by_id.get(context_id)
            if node is None:
                raise FormatError(
                    "monitoring point references undefined context %d"
                    % context_id)
            contexts.append(node)
        values = {mv.metric_id: mv.value for mv in wire_point.values}
        if wire_point.kind == pb.POINT_PLAIN and wire_point.sequence == 0:
            if len(contexts) != 1:
                raise FormatError("plain point must reference one context")
            for metric_index, value in values.items():
                contexts[0].add_value(metric_index, value)
        else:
            profile.points.append(MonitoringPoint(
                kind=PointKind(wire_point.kind),
                contexts=contexts,
                values=values,
                sequence=wire_point.sequence))
    return profile


def _columnar_from_message(message: pb.ProfileMessage, lookup,
                           n_metrics: int):
    """Raise a wire message straight into a columnar CCT, or ``None``.

    Handles the common shape — every point a sequence-0 PLAIN point with
    in-range metric ids — without constructing a single
    :class:`CCTNode`.  Advanced points (snapshots, multi-context pairs)
    and out-of-schema metric ids return ``None`` so the object path keeps
    its exact semantics, including error ordering.
    """
    from .cct_columnar import ColumnarBuilder, _np

    for wire_point in message.points:
        if wire_point.kind != pb.POINT_PLAIN or wire_point.sequence != 0:
            return None
        for metric_value in wire_point.values:
            if not 0 <= metric_value.metric_id < n_metrics:
                return None

    builder = ColumnarBuilder()
    descend = builder.descend
    frame_token = builder.frame_token
    col_of: Dict[int, int] = {}
    for wire_node in message.nodes:
        kind = _PB_TO_FRAME_KIND.get(wire_node.kind, FrameKind.FUNCTION)
        if kind is FrameKind.ROOT:
            col_of[wire_node.id] = 0
            continue
        parent = col_of.get(wire_node.parent_id)
        if parent is None:
            raise FormatError(
                "context %d references undefined parent %d"
                % (wire_node.id, wire_node.parent_id))
        frame = intern_frame(name=lookup(wire_node.name),
                             file=lookup(wire_node.file),
                             line=wire_node.line,
                             module=lookup(wire_node.module),
                             address=wire_node.address,
                             kind=kind)
        col_of[wire_node.id] = descend(parent, frame_token(frame))

    values = _np.zeros((builder.n_nodes, n_metrics), dtype=_np.float64)
    present = _np.zeros((builder.n_nodes, n_metrics), dtype=bool)
    for wire_point in message.points:
        contexts = []
        for context_id in wire_point.context_id:
            node = col_of.get(context_id)
            if node is None:
                raise FormatError(
                    "monitoring point references undefined context %d"
                    % context_id)
            contexts.append(node)
        if len(contexts) != 1:
            raise FormatError("plain point must reference one context")
        node = contexts[0]
        # Duplicate metric ids within one point collapse last-wins before
        # accumulating, matching the object path's value-dict semantics.
        merged = {mv.metric_id: mv.value for mv in wire_point.values}
        for metric_index, value in merged.items():
            values[node, metric_index] += value
            present[node, metric_index] = True
    return builder.finish(values, present)


def dumps(profile: Profile) -> bytes:
    """Serialize a profile to EasyView's binary file format."""
    return pb.dumps(to_message(profile))


def loads(data: bytes) -> Profile:
    """Parse a profile from EasyView's binary file format.

    Wire-level corruption surfaces as :class:`FormatError`, like every
    other malformed-profile condition.
    """
    from ..proto.wire import WireError
    try:
        return from_message(pb.loads(data))
    except WireError as exc:
        raise FormatError("corrupt EasyView profile: %s" % exc) from exc


def dump(profile: Profile, path: str) -> None:
    """Write a profile to ``path`` atomically (tempfile + rename), so a
    crash mid-write never leaves a torn profile behind."""
    from .atomicio import atomic_write_bytes
    atomic_write_bytes(path, dumps(profile))


def load(path: str) -> Profile:
    """Read a profile from ``path``."""
    with open(path, "rb") as handle:
        return loads(handle.read())
