"""The calling context tree (CCT): EasyView's central data structure.

All monitoring points are organized into a compact CCT by merging the common
prefixes of their call paths (§IV-A), which minimizes both memory and disk
footprint.  Each node holds one :class:`~repro.core.frame.Frame` of
attribution plus the *exclusive* metric values measured at that exact
context; inclusive values are computed by the analysis engine
(:mod:`repro.analysis.metrics`) and cached on the node.

Every mutation — creating a node, accumulating or overwriting a value —
bumps the owning tree's *version counter*.  Derived state (the per-node
inclusive caches, a profile's columnar snapshot in
:mod:`repro.core.cct_columnar`) records the version it was computed at and
is considered stale the moment the versions disagree, so callers never have
to remember to invalidate anything by hand.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .frame import Frame, FrameKind, ROOT_FRAME


def _child_order(node: "CCTNode") -> Tuple[str, str, int, str, int, int]:
    """Deterministic sibling sort key: the frame's full identity tuple.

    Siblings are distinct interned frames, so the key never ties and the
    resulting order is total — independent of sample arrival order.  It is
    the same key :mod:`repro.core.digest` sorts by, so walk order and
    digest order agree.
    """
    return node.frame.key()


class CCTNode:
    """One node of a calling context tree.

    Attributes:
        frame: the attribution (function/loop/object) of this context.
        parent: the calling context, or ``None`` for the root.
        children: child contexts keyed by their interned frame.
        metrics: exclusive metric values, metric column index → value.
        inclusive: cached inclusive values (filled by the analysis engine).
    """

    __slots__ = ("frame", "parent", "children", "metrics", "inclusive",
                 "_tree")

    def __init__(self, frame: Frame,
                 parent: Optional["CCTNode"] = None) -> None:
        self.frame = frame
        self.parent = parent
        self.children: Dict[Frame, CCTNode] = {}
        self.metrics: Dict[int, float] = {}
        self.inclusive: Dict[int, float] = {}
        # Back-pointer to the owning CCT (None for detached nodes) so
        # mutations can bump the tree version in O(1).
        self._tree = parent._tree if parent is not None else None

    # -- construction ----------------------------------------------------

    def child(self, frame: Frame) -> "CCTNode":
        """Return the child for ``frame``, creating it if absent.

        This is the prefix-merge operation: two call paths that share a
        prefix share the corresponding chain of nodes.
        """
        node = self.children.get(frame)
        if node is None:
            node = CCTNode(frame, parent=self)
            self.children[frame] = node
            tree = self._tree
            if tree is not None:
                tree._version += 1
        return node

    def add_value(self, metric_index: int, value: float) -> None:
        """Accumulate an exclusive metric value on this node."""
        self.metrics[metric_index] = self.metrics.get(metric_index, 0.0) + value
        tree = self._tree
        if tree is not None:
            tree._version += 1

    def set_value(self, metric_index: int, value: float) -> None:
        """Overwrite an exclusive metric value on this node."""
        self.metrics[metric_index] = value
        tree = self._tree
        if tree is not None:
            tree._version += 1

    # -- queries ----------------------------------------------------------

    def exclusive(self, metric_index: int) -> float:
        """Exclusive value of a metric at this node (0 when absent)."""
        return self.metrics.get(metric_index, 0.0)

    def inclusive_value(self, metric_index: int) -> float:
        """Cached inclusive value; falls back to exclusive when uncomputed."""
        if metric_index in self.inclusive:
            return self.inclusive[metric_index]
        return self.metrics.get(metric_index, 0.0)

    def call_path(self) -> List[Frame]:
        """Frames from the root (exclusive) down to this node."""
        frames: List[Frame] = []
        node: Optional[CCTNode] = self
        while node is not None and node.frame.kind is not FrameKind.ROOT:
            frames.append(node.frame)
            node = node.parent
        frames.reverse()
        return frames

    def depth(self) -> int:
        """Distance from the root (root itself has depth 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def is_leaf(self) -> bool:
        """True when this context has no callees."""
        return not self.children

    def sorted_children(self) -> List["CCTNode"]:
        """Children in deterministic frame-identity order.

        The key is the frame's full identity tuple — (name, file, line,
        module, address, kind) — so the order is total and matches both
        :meth:`walk` and the digest walk in :mod:`repro.core.digest`.
        """
        return sorted(self.children.values(), key=_child_order)

    def walk(self) -> Iterator["CCTNode"]:
        """Depth-first pre-order iteration over this subtree.

        Siblings are visited in :meth:`sorted_children` order, so the
        sequence is deterministic regardless of sample arrival order.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            children = node.children
            if children:
                if len(children) > 1:
                    stack.extend(sorted(children.values(), key=_child_order,
                                        reverse=True))
                else:
                    stack.extend(children.values())

    def __repr__(self) -> str:
        return "<CCTNode %s children=%d>" % (self.frame.label(),
                                             len(self.children))


class CCT:
    """A calling context tree with a synthetic root.

    ``_version`` counts mutations (node creation, value accumulation);
    ``_inclusive_stamp`` records the version the nodes' inclusive caches
    were computed at.  The two agreeing is the validity condition checked
    by :func:`repro.analysis.metrics.compute_inclusive`, which makes the
    caches self-invalidating: mutate, and the next inclusive query simply
    recomputes.
    """

    def __init__(self) -> None:
        self._version = 0
        self._inclusive_stamp = 0
        self.root = CCTNode(ROOT_FRAME)
        self.root._tree = self

    def add_path(self, frames: Iterable[Frame]) -> CCTNode:
        """Merge a root-first call path into the tree; returns the leaf node."""
        node = self.root
        for frame in frames:
            node = node.child(frame)
        return node

    def add_sample(self, frames: Iterable[Frame],
                   values: Dict[int, float]) -> CCTNode:
        """Merge a call path and accumulate its metric values on the leaf."""
        node = self.add_path(frames)
        for metric_index, value in values.items():
            node.add_value(metric_index, value)
        return node

    def node_count(self) -> int:
        """Total number of nodes including the root."""
        return sum(1 for _ in self.root.walk())

    def max_depth(self) -> int:
        """Depth of the deepest context."""
        best = 0
        stack: List[Tuple[CCTNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            stack.extend((child, depth + 1) for child in node.children.values())
        return best

    def nodes(self) -> Iterator[CCTNode]:
        """Pre-order iteration over all nodes."""
        return self.root.walk()

    def find(self, predicate: Callable[[CCTNode], bool]) -> List[CCTNode]:
        """All nodes satisfying ``predicate``, in pre-order."""
        return [node for node in self.nodes() if predicate(node)]

    def find_by_name(self, name: str) -> List[CCTNode]:
        """All nodes whose frame name equals ``name``."""
        return self.find(lambda node: node.frame.name == name)

    def leaf_nodes(self) -> Iterator[CCTNode]:
        """All leaves (contexts with no callees)."""
        return (node for node in self.nodes() if node.is_leaf())

    def clear_inclusive_cache(self) -> None:
        """Drop cached inclusive values.

        Mutation through the node API invalidates automatically (the
        version stamp no longer matches), so calling this by hand is only
        needed after writing ``node.metrics`` dictionaries directly.
        """
        for node in self.nodes():
            node.inclusive.clear()
        self._inclusive_stamp = self._version
