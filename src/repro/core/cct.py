"""The calling context tree (CCT): EasyView's central data structure.

All monitoring points are organized into a compact CCT by merging the common
prefixes of their call paths (§IV-A), which minimizes both memory and disk
footprint.  Each node holds one :class:`~repro.core.frame.Frame` of
attribution plus the *exclusive* metric values measured at that exact
context; inclusive values are computed by the analysis engine
(:mod:`repro.analysis.metrics`) and cached on the node.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .frame import Frame, FrameKind, ROOT_FRAME


class CCTNode:
    """One node of a calling context tree.

    Attributes:
        frame: the attribution (function/loop/object) of this context.
        parent: the calling context, or ``None`` for the root.
        children: child contexts keyed by their interned frame.
        metrics: exclusive metric values, metric column index → value.
        inclusive: cached inclusive values (filled by the analysis engine).
    """

    __slots__ = ("frame", "parent", "children", "metrics", "inclusive")

    def __init__(self, frame: Frame,
                 parent: Optional["CCTNode"] = None) -> None:
        self.frame = frame
        self.parent = parent
        self.children: Dict[Frame, CCTNode] = {}
        self.metrics: Dict[int, float] = {}
        self.inclusive: Dict[int, float] = {}

    # -- construction ----------------------------------------------------

    def child(self, frame: Frame) -> "CCTNode":
        """Return the child for ``frame``, creating it if absent.

        This is the prefix-merge operation: two call paths that share a
        prefix share the corresponding chain of nodes.
        """
        node = self.children.get(frame)
        if node is None:
            node = CCTNode(frame, parent=self)
            self.children[frame] = node
        return node

    def add_value(self, metric_index: int, value: float) -> None:
        """Accumulate an exclusive metric value on this node."""
        self.metrics[metric_index] = self.metrics.get(metric_index, 0.0) + value

    def set_value(self, metric_index: int, value: float) -> None:
        """Overwrite an exclusive metric value on this node."""
        self.metrics[metric_index] = value

    # -- queries ----------------------------------------------------------

    def exclusive(self, metric_index: int) -> float:
        """Exclusive value of a metric at this node (0 when absent)."""
        return self.metrics.get(metric_index, 0.0)

    def inclusive_value(self, metric_index: int) -> float:
        """Cached inclusive value; falls back to exclusive when uncomputed."""
        if metric_index in self.inclusive:
            return self.inclusive[metric_index]
        return self.metrics.get(metric_index, 0.0)

    def call_path(self) -> List[Frame]:
        """Frames from the root (exclusive) down to this node."""
        frames: List[Frame] = []
        node: Optional[CCTNode] = self
        while node is not None and node.frame.kind is not FrameKind.ROOT:
            frames.append(node.frame)
            node = node.parent
        frames.reverse()
        return frames

    def depth(self) -> int:
        """Distance from the root (root itself has depth 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def is_leaf(self) -> bool:
        """True when this context has no callees."""
        return not self.children

    def sorted_children(self) -> List["CCTNode"]:
        """Children in deterministic (frame label, file, line) order."""
        return sorted(self.children.values(),
                      key=lambda n: (n.frame.name, n.frame.file,
                                     n.frame.line, n.frame.module))

    def walk(self) -> Iterator["CCTNode"]:
        """Depth-first pre-order iteration over this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:
        return "<CCTNode %s children=%d>" % (self.frame.label(),
                                             len(self.children))


class CCT:
    """A calling context tree with a synthetic root."""

    def __init__(self) -> None:
        self.root = CCTNode(ROOT_FRAME)

    def add_path(self, frames: Iterable[Frame]) -> CCTNode:
        """Merge a root-first call path into the tree; returns the leaf node."""
        node = self.root
        for frame in frames:
            node = node.child(frame)
        return node

    def add_sample(self, frames: Iterable[Frame],
                   values: Dict[int, float]) -> CCTNode:
        """Merge a call path and accumulate its metric values on the leaf."""
        node = self.add_path(frames)
        for metric_index, value in values.items():
            node.add_value(metric_index, value)
        return node

    def node_count(self) -> int:
        """Total number of nodes including the root."""
        return sum(1 for _ in self.root.walk())

    def max_depth(self) -> int:
        """Depth of the deepest context."""
        best = 0
        stack: List[Tuple[CCTNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            stack.extend((child, depth + 1) for child in node.children.values())
        return best

    def nodes(self) -> Iterator[CCTNode]:
        """Pre-order iteration over all nodes."""
        return self.root.walk()

    def find(self, predicate: Callable[[CCTNode], bool]) -> List[CCTNode]:
        """All nodes satisfying ``predicate``, in pre-order."""
        return [node for node in self.nodes() if predicate(node)]

    def find_by_name(self, name: str) -> List[CCTNode]:
        """All nodes whose frame name equals ``name``."""
        return self.find(lambda node: node.frame.name == name)

    def leaf_nodes(self) -> Iterator[CCTNode]:
        """All leaves (contexts with no callees)."""
        return (node for node in self.nodes() if node.is_leaf())

    def clear_inclusive_cache(self) -> None:
        """Drop cached inclusive values (call after mutating the tree)."""
        for node in self.nodes():
            node.inclusive.clear()
