"""Exporters: the span ring as JSONL, Chrome trace, or an EasyView profile.

Three ways out of the ring, in increasing order of dogfooding:

* :func:`to_jsonl` — one JSON object per finished span; the archival and
  log-shipping format, and what ``obs/trace`` returns over the PVP.
* :func:`to_chrome_trace` — Trace Event Format ``B``/``E`` pairs that
  ``about:tracing``/Perfetto open directly *and* that round-trip through
  this repo's own :mod:`repro.converters.chrome_trace` converter back
  into a profile.
* :func:`to_profile` — the direct path: fold the span tree into an
  EasyView CCT via :class:`~repro.builder.ProfileBuilder`, with each
  span's *self* time (duration minus its children's) attributed to its
  calling context.  The resulting profile opens in every EasyView view —
  ``easyview obs export --format easyview`` piped back into the viewer
  shows a flame graph of EasyView's own execution, and ``store ingest``
  archives it like any other profile.

Span trees are reconstructed from ``parent_id`` links.  A span whose
parent is no longer in the ring (evicted, or still in flight) is treated
as a root — exports degrade gracefully under ring pressure instead of
failing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..core.profile import Profile
from .tracer import Span


def _subsystem(name: str) -> str:
    """The subsystem prefix of a span name (``store.wal.append`` → store)."""
    return name.split(".", 1)[0] if "." in name else name


def to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per span, oldest first, newline-delimited."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in spans)


def to_chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Trace Event Format: ``B``/``E`` pairs on per-thread tracks.

    ``B``/``E`` (rather than ``X``) events are emitted so nesting
    round-trips through :mod:`repro.converters.chrome_trace`, which folds
    open-slice stacks into calling contexts.  Timestamps are microseconds
    of wall-clock time, as the format specifies.
    """
    events: List[Dict[str, Any]] = []
    threads = sorted({span.thread_name for span in spans})
    tids = {name: i + 1 for i, name in enumerate(threads)}
    for name in threads:
        events.append({"ph": "M", "name": "thread_name", "pid": 1,
                       "tid": tids[name], "args": {"name": name}})
    timed: List[Dict[str, Any]] = []
    for span in spans:
        start_us = span.start_wall_ns / 1e3
        end_us = (span.start_wall_ns + span.duration_ns) / 1e3
        args = {str(k): v for k, v in span.attributes.items()}
        args["traceId"] = span.trace_id
        timed.append({"ph": "B", "name": span.name, "pid": 1,
                      "tid": tids[span.thread_name], "ts": start_us,
                      "cat": _subsystem(span.name), "args": args})
        timed.append({"ph": "E", "name": span.name, "pid": 1,
                      "tid": tids[span.thread_name], "ts": end_us})
    # The converter sorts by (ts, B-before-E); pre-sorting keeps the
    # emitted JSON readable and deterministic.
    timed.sort(key=lambda e: (e["ts"], 0 if e["ph"] != "E" else 1))
    events.extend(timed)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_profile(spans: Sequence[Span],
               tool: str = "easyview-obs") -> Profile:
    """Fold the span ring into an EasyView CCT profile.

    Each span becomes one calling context rooted at its subsystem
    (``engine``/``store``/``server``/...), carrying its self time in
    nanoseconds plus a span count; ``compute_inclusive`` then rolls the
    tree up like any other profile.  Time metadata (EV312) is set from
    the spans' wall-clock envelope, so the result ingests into a
    ProfileStore without remediation.
    """
    from ..builder import ProfileBuilder
    if not spans:
        raise ValueError("no spans recorded; enable tracing "
                         "(EASYVIEW_OBS=1 or tracer.configure(enabled=True)) "
                         "and run a workload first")
    by_id: Dict[str, Span] = {span.span_id: span for span in spans}
    child_time: Dict[str, int] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_time[span.parent_id] = (child_time.get(span.parent_id, 0)
                                          + span.duration_ns)

    start = min(span.start_wall_ns for span in spans)
    end = max(span.start_wall_ns + span.duration_ns for span in spans)
    builder = ProfileBuilder(tool=tool, time_nanos=start,
                             duration_nanos=max(0, end - start))
    builder.attribute("spanCount", str(len(spans)))
    wall = builder.metric("wall_time", unit="nanoseconds",
                          description="span self time (monotonic clock)")
    count = builder.metric("spans", unit="count",
                           description="finished spans at this context")

    def chain(span: Span) -> List[Span]:
        """Root-first ancestry of one span, robust to evicted parents."""
        path: List[Span] = []
        seen = set()
        node: Optional[Span] = span
        while node is not None and node.span_id not in seen:
            seen.add(node.span_id)
            path.append(node)
            node = by_id.get(node.parent_id) \
                if node.parent_id is not None else None
        path.reverse()
        return path

    for span in spans:
        ancestry = chain(span)
        root = ancestry[0]
        frames: List[tuple] = [(_subsystem(root.name), "", 0, "obs")]
        frames.extend((node.name, "", 0, _subsystem(node.name))
                      for node in ancestry)
        self_ns = max(0, span.duration_ns
                      - child_time.get(span.span_id, 0))
        builder.sample(frames, {wall: float(self_ns), count: 1.0})
    return builder.build()


def by_name(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Aggregate spans per name: count, total/self nanoseconds, errors.

    The summary table behind ``easyview obs metrics`` and ``obs watch``.
    Sorted by total time, descending.
    """
    by_id = {span.span_id: span for span in spans}
    child_time: Dict[str, int] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_time[span.parent_id] = (child_time.get(span.parent_id, 0)
                                          + span.duration_ns)
    rows: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        row = rows.setdefault(span.name, {
            "name": span.name, "count": 0, "totalNanos": 0,
            "selfNanos": 0, "maxNanos": 0, "errors": 0})
        row["count"] += 1
        row["totalNanos"] += span.duration_ns
        row["selfNanos"] += max(0, span.duration_ns
                                - child_time.get(span.span_id, 0))
        row["maxNanos"] = max(row["maxNanos"], span.duration_ns)
        if span.error:
            row["errors"] += 1
    return sorted(rows.values(),
                  key=lambda row: (-row["totalNanos"], row["name"]))
