"""The tracing half of ``repro.obs``: nested spans over ``contextvars``.

A *span* is one timed operation — an engine transform, a WAL append, a
PVP request — with a name, attributes, a monotonic-clock duration, and a
position in a tree: spans opened while another span is active become its
children, and the root of each tree names a *trace*.  The current span
lives in a :class:`contextvars.ContextVar`, so nesting follows the
logical flow of control rather than the call stack of any one thread;
the engine's :class:`~repro.engine.parallel.WorkerPool` copies the
submitting context into its workers, so a span opened inside a pooled
task attaches to the span that submitted the batch.

Finished spans land in a bounded ring buffer.  When the ring is full the
*oldest* span is dropped and the ``obs.spans_dropped`` counter
increments — tracing never grows without bound and never blocks the
traced code.  Sampling is decided at the *root*: an unsampled root turns
its whole subtree into no-ops, keeping the decision consistent across a
trace.

When the tracer is disabled (the default), :meth:`Tracer.span` returns a
shared null context manager after a single attribute check — the hot
paths stay instrumented at all times and the overhead budget
(< 5 % on the engine benchmark, asserted in
``benchmarks/test_obs_overhead.py``) is paid only when tracing is on.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, TypeVar

from .metrics import MetricsRegistry

F = TypeVar("F", bound=Callable[..., Any])

#: Default ring capacity: generous enough for a full store smoke run,
#: small enough that an always-on tracer stays a few MB.
DEFAULT_CAPACITY = 4096

_ids = itertools.count(1)


def _next_id() -> str:
    return "%x" % next(_ids)


class Span:
    """One finished (or in-flight) timed operation."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attributes",
                 "start_wall_ns", "start_mono_ns", "duration_ns",
                 "thread_name", "error")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str],
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = attributes or {}
        self.start_wall_ns = 0
        self.start_mono_ns = 0
        self.duration_ns = 0
        self.thread_name = ""
        #: The exception type name when the span body raised, else "".
        self.error = ""

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "traceId": self.trace_id,
            "spanId": self.span_id,
            "parentId": self.parent_id,
            "startWallNanos": self.start_wall_ns,
            "durationNanos": self.duration_ns,
            "thread": self.thread_name,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.error:
            payload["error"] = self.error
        return payload

    def __repr__(self) -> str:
        return "Span(%r, %.3f ms)" % (self.name, self.duration_ns / 1e6)


class _NullSpanContext:
    """The shared do-nothing context manager for a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_CONTEXT = _NullSpanContext()

#: Sentinel stored as the "current span" under an unsampled root, so the
#: whole subtree skips recording without re-rolling the sampling decision.
_UNSAMPLED = object()


class _SpanContext:
    """The live context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token: Optional[contextvars.Token] = None

    def set(self, key: str, value: Any) -> None:
        self.span.set(key, value)

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self.span)
        self.span.start_wall_ns = time.time_ns()
        self.span.start_mono_ns = time.monotonic_ns()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.duration_ns = (time.monotonic_ns()
                                 - self.span.start_mono_ns)
        if exc_type is not None:
            self.span.error = exc_type.__name__
        self.span.thread_name = threading.current_thread().name
        if self._token is not None:
            self._tracer._current.reset(self._token)
        self._tracer._record(self.span)
        return False


class _UnsampledContext:
    """Marks the subtree unsampled, then restores the previous current."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> None:
        self._token = self._tracer._current.set(_UNSAMPLED)
        return None

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is not None:
            self._tracer._current.reset(self._token)
        return False


class Tracer:
    """Nested-span tracer with a bounded ring of finished spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = 1, enabled: bool = False,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        #: Keep every Nth trace (1 = all).  The decision is made when a
        #: *root* span opens and inherited by its descendants, so traces
        #: are always complete or absent, never ragged.
        self.sample_every = sample_every
        self._current: "contextvars.ContextVar[Any]" = \
            contextvars.ContextVar("easyview-obs-span", default=None)
        self._ring: Deque[Span] = deque()
        self._lock = threading.Lock()
        self._roots_seen = 0
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._dropped = self.registry.counter(
            "obs.spans_dropped", "spans evicted from the full ring")
        self._recorded = self.registry.counter(
            "obs.spans_recorded", "spans appended to the ring")

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A context manager timing one operation.

        Usage::

            with tracer.span("store.ingest", service=service) as span:
                ...
                span.set("seq", record.seq)

        Disabled tracer: returns a shared null context after one attribute
        check.  Unsampled trace: returns a null-like context that keeps
        the subtree unsampled.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        parent = self._current.get()
        if parent is _UNSAMPLED:
            return _NULL_CONTEXT
        if parent is None:
            # Root span: roll the sampling decision for the whole trace.
            with self._lock:
                self._roots_seen += 1
                sampled = (self._roots_seen - 1) % self.sample_every == 0
            if not sampled:
                return _UnsampledContext(self)
            trace_id = _next_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(name, trace_id=trace_id, span_id=_next_id(),
                    parent_id=parent_id, attributes=attributes or None)
        return _SpanContext(self, span)

    def trace(self, name: Optional[str] = None) -> Callable[[F], F]:
        """Decorator form: ``@tracer.trace("engine.transform")``."""
        def decorate(fn: F) -> F:
            span_name = name or fn.__qualname__
            import functools

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name):
                    return fn(*args, **kwargs)
            return wrapper  # type: ignore[return-value]
        return decorate

    # -- context introspection --------------------------------------------

    def current_span(self) -> Optional[Span]:
        """The innermost live span on this logical context, if any."""
        current = self._current.get()
        return current if isinstance(current, Span) else None

    def current_trace_id(self) -> Optional[str]:
        span = self.current_span()
        return span.trace_id if span is not None else None

    # -- the ring ----------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._ring) >= self.capacity:
                self._ring.popleft()
                self._dropped.inc()
            self._ring.append(span)
        self._recorded.inc()

    def spans(self) -> List[Span]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        """Empty the ring (counters survive)."""
        with self._lock:
            self._ring.clear()

    # -- configuration -----------------------------------------------------

    def configure(self, enabled: Optional[bool] = None,
                  capacity: Optional[int] = None,
                  sample_every: Optional[int] = None) -> "Tracer":
        """Adjust settings in place; shrinking the capacity drops oldest."""
        if enabled is not None:
            self.enabled = enabled
        if sample_every is not None:
            if sample_every < 1:
                raise ValueError("sample_every must be >= 1")
            # span() reads this under the lock when rolling a root's
            # sampling decision; write it under the same lock.
            with self._lock:
                self.sample_every = sample_every
        if capacity is not None:
            if capacity < 1:
                raise ValueError("ring capacity must be positive")
            with self._lock:
                self.capacity = capacity
                while len(self._ring) > capacity:
                    self._ring.popleft()
                    self._dropped.inc()
        return self


def env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``EASYVIEW_OBS`` asks for tracing (``1``/``true``/``on``)."""
    env = os.environ if environ is None else environ
    return env.get("EASYVIEW_OBS", "").strip().lower() in (
        "1", "true", "on", "yes")
