"""The metrics half of ``repro.obs``: counters, gauges, and histograms.

Three primitive types cover everything the subsystems count:

* :class:`Counter` — a monotonically increasing total (requests served,
  cache hits, spans dropped).  Increments are lock-protected: a bare
  ``self.value += n`` is a read-modify-write that loses updates under the
  engine's worker pool, which is exactly the race this class exists to
  close (the old ``engine.CacheStats`` counters had it).
* :class:`Gauge` — a value that goes up *and* down (in-flight requests,
  WAL occupancy).
* :class:`Histogram` — fixed-bucket latency/size distributions with a
  cumulative-count snapshot (the Prometheus bucket convention: each
  bucket counts observations ``<= upper_bound``, plus ``+Inf``).

A :class:`MetricsRegistry` names and owns instruments; ``snapshot()``
returns plain JSON-ready data for ``easyview obs metrics``, the PVP
``obs/metrics`` request, and tests.  Instruments are cheap enough to sit
on hot paths — one lock acquisition per update — and creation is
idempotent per name, so callers just ask the registry every time or keep
a reference, whichever reads better.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Default histogram boundaries, in seconds: tuned for request latencies
#: from "cache hit" (tens of microseconds) to "cold multi-profile merge"
#: (seconds).  Callers measuring other units pass their own boundaries.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Counter:
    """A thread-safe, monotonically increasing counter."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str = "", description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> int:
        """Atomically add ``amount`` (must be >= 0); returns the new total."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return "Counter(%r, %d)" % (self.name, self.value)


class Gauge:
    """A thread-safe value that moves both directions."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str = "", description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> float:
        with self._lock:
            self._value += amount
            return self._value

    def dec(self, amount: float = 1.0) -> float:
        return self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)

    def __repr__(self) -> str:
        return "Gauge(%r, %g)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket distribution (cumulative bucket counts + sum)."""

    __slots__ = ("name", "description", "buckets", "_counts", "_sum",
                 "_count", "_min", "_max", "_lock")

    def __init__(self, name: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 description: str = "") -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.description = description
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        # One acquisition: sum and count must come from the same moment.
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = None
            self._max = None

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            cumulative = 0
            buckets: List[Dict[str, Any]] = []
            for bound, count in zip(self.buckets, self._counts):
                cumulative += count
                buckets.append({"le": bound, "count": cumulative})
            buckets.append({"le": "+Inf", "count": cumulative
                            + self._counts[-1]})
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }

    def __repr__(self) -> str:
        return "Histogram(%r, n=%d)" % (self.name, self.count)


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments plus a JSON-ready snapshot of all of them.

    Creation is get-or-create by name; asking for an existing name with a
    different instrument type is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind: type,
                       factory) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    "metric %r is a %s, not a %s"
                    % (name, type(instrument).__name__, kind.__name__))
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, description))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  description: str = "") -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, description))

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument.reset()

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as plain data, grouped by type, names sorted."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.to_dict()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
