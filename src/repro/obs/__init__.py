"""``repro.obs``: EasyView's self-profiling telemetry layer.

The paper's pitch is that profiles should live where developers already
work; this package closes the loop by instrumenting EasyView *itself* —
the analysis engine, the ProfStore, the converters, and the PVP server —
and rendering the resulting traces as EasyView flame graphs in the tool
itself (the same dogfooding hpctoolkit and pprof practice on their own
infrastructures).

Two process-wide singletons, lazily created:

* :func:`get_registry` — the :class:`~repro.obs.metrics.MetricsRegistry`
  holding every named counter/gauge/histogram (the PVP server's request
  metrics, the tracer's drop counter, ...).
* :func:`get_tracer` — the :class:`~repro.obs.tracer.Tracer` whose span
  ring the exporters drain.  Disabled by default; enabled by
  ``EASYVIEW_OBS=1`` in the environment, :func:`configure`, or the
  ``easyview obs`` subcommands.

The instrumented subsystems call :func:`get_tracer` once at import (or
first use) and wrap their hot paths in ``tracer.span(...)``; with the
tracer disabled that is a single attribute check per call, which is what
keeps the disabled overhead under the 5 % budget asserted in
``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import threading
from typing import Optional

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_BUCKETS)
from .prom import registry_prometheus, to_prometheus
from .tracer import Span, Tracer, env_enabled

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "Span", "Tracer", "configure", "get_registry", "get_tracer",
    "trace_span", "env_enabled", "registry_prometheus", "to_prometheus",
]

_lock = threading.Lock()
_registry: Optional[MetricsRegistry] = None
_tracer: Optional[Tracer] = None


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    global _registry
    if _registry is None:
        with _lock:
            if _registry is None:
                _registry = MetricsRegistry()
    return _registry


def get_tracer() -> Tracer:
    """The process-wide tracer (enabled iff ``EASYVIEW_OBS`` asks)."""
    global _tracer
    if _tracer is None:
        registry = get_registry()
        with _lock:
            if _tracer is None:
                _tracer = Tracer(enabled=env_enabled(), registry=registry)
    return _tracer


def configure(enabled: Optional[bool] = None,
              capacity: Optional[int] = None,
              sample_every: Optional[int] = None) -> Tracer:
    """Adjust the process-wide tracer; returns it for chaining."""
    return get_tracer().configure(enabled=enabled, capacity=capacity,
                                  sample_every=sample_every)


def trace_span(name: str, **attributes):
    """Shorthand for ``get_tracer().span(name, **attributes)``."""
    return get_tracer().span(name, **attributes)
