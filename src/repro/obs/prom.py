"""Prometheus text exposition for the metrics registry.

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` in the
`text-based exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ version
``0.0.4`` — the format every Prometheus-compatible scraper (Prometheus
itself, the Grafana agent, VictoriaMetrics, ...) accepts.  Two surfaces
serve it:

* ``easyview obs metrics --format prom`` — ad-hoc scrapes of any
  EasyView process;
* the continuous-profiling collector's ``GET /metrics`` endpoint — so
  the ingest loop's health (uploads, dedups, rejections, queue depth,
  ingest latency) is monitored with standard tooling, no custom glue.

Dotted instrument names become underscore-separated metric names
(``serve.queue_seconds`` → ``serve_queue_seconds``); counters get the
conventional ``_total`` suffix; histograms expand to cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count``, which is exactly
the layout :class:`~repro.obs.metrics.Histogram` already keeps.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHAR = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A registry instrument name as a legal Prometheus metric name."""
    cleaned = _INVALID_CHAR.sub("_", name.replace(".", "_"))
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: Any) -> str:
    """A sample value in exposition syntax (integers stay integral)."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _le_label(bound: Any) -> str:
    if bound == "+Inf":
        return "+Inf"
    return _format_value(float(bound))


def to_prometheus(snapshot: Dict[str, Any],
                  help_text: Optional[Dict[str, str]] = None) -> str:
    """Render one registry snapshot as Prometheus exposition text.

    Output is deterministic: metric families appear in sorted-name order
    (counters, then gauges, then histograms — each internally sorted),
    which makes the format golden-testable and diff-friendly.
    """
    help_text = help_text or {}
    lines: List[str] = []

    def emit_help(name: str, kind: str, source: str) -> None:
        text = help_text.get(source, "")
        if text:
            lines.append("# HELP %s %s"
                         % (name, text.replace("\\", "\\\\")
                            .replace("\n", "\\n")))
        lines.append("# TYPE %s %s" % (name, kind))

    for source in sorted(snapshot.get("counters", {})):
        name = metric_name(source) + "_total"
        emit_help(name, "counter", source)
        lines.append("%s %s"
                     % (name, _format_value(snapshot["counters"][source])))

    for source in sorted(snapshot.get("gauges", {})):
        name = metric_name(source)
        emit_help(name, "gauge", source)
        lines.append("%s %s"
                     % (name, _format_value(snapshot["gauges"][source])))

    for source in sorted(snapshot.get("histograms", {})):
        name = metric_name(source)
        emit_help(name, "histogram", source)
        hist = snapshot["histograms"][source]
        for bucket in hist.get("buckets", []):
            lines.append('%s_bucket{le="%s"} %d'
                         % (name, _le_label(bucket["le"]), bucket["count"]))
        lines.append("%s_sum %s" % (name, _format_value(hist.get("sum", 0))))
        lines.append("%s_count %d" % (name, hist.get("count", 0)))

    return "\n".join(lines) + ("\n" if lines else "")


def registry_prometheus() -> str:
    """The process-wide registry, rendered with instrument descriptions."""
    from . import get_registry

    registry = get_registry()
    descriptions: Dict[str, str] = {}
    for name in registry.names():
        instrument = registry.get(name)
        if instrument is not None and instrument.description:
            descriptions[name] = instrument.description
    return to_prometheus(registry.snapshot(), help_text=descriptions)
