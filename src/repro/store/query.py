"""The store's query language.

A query is a whitespace-separated list of ``key=value`` terms::

    service=api type=cpu since=2024-01-01T00:00:00 label.region=us limit=5

Supported keys:

* ``service`` — exact service-name match (omit to match all services);
* ``type``    — profile type (``cpu``, ``heap``, ...);
* ``since`` / ``until`` — wall-clock bounds on the capture time.  Values
  are either raw integer nanoseconds, an ISO-8601 timestamp
  (``2024-01-01`` or ``2024-01-01T06:30:00``), or a relative age such as
  ``30s`` / ``15m`` / ``6h`` / ``7d`` meaning "that long before *now*"
  (resolved against the store's clock at query time);
* ``label.<name>`` — exact match on one ingest label;
* ``limit``  — keep only the N most recent matching records;
* ``seq``    — exact ingest sequence number (debugging).

Terms are ANDed.  Unknown keys raise :class:`~repro.errors.QueryError`
rather than silently matching nothing.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import RecordEntry

_AGE_UNITS = {"s": 10 ** 9, "m": 60 * 10 ** 9, "h": 3600 * 10 ** 9,
              "d": 86400 * 10 ** 9, "w": 7 * 86400 * 10 ** 9}


@dataclass
class Query:
    """A parsed store query (all constraints ANDed)."""

    service: Optional[str] = None
    ptype: Optional[str] = None
    since_nanos: Optional[int] = None
    until_nanos: Optional[int] = None
    labels: Dict[str, str] = field(default_factory=dict)
    limit: Optional[int] = None
    seq: Optional[int] = None

    def matches(self, entry: "RecordEntry") -> bool:
        """Does one index entry satisfy every constraint (except limit)?"""
        if self.service is not None and entry.service != self.service:
            return False
        if self.ptype is not None and entry.ptype != self.ptype:
            return False
        if self.since_nanos is not None and entry.time_nanos < self.since_nanos:
            return False
        if self.until_nanos is not None and entry.time_nanos > self.until_nanos:
            return False
        if self.seq is not None and entry.seq != self.seq:
            return False
        for key, value in self.labels.items():
            if entry.labels.get(key) != value:
                return False
        return True

    def to_text(self) -> str:
        """Canonical text form (stable across equal queries: cache key
        material for the serve path)."""
        terms: List[str] = []
        if self.service is not None:
            terms.append("service=%s" % self.service)
        if self.ptype is not None:
            terms.append("type=%s" % self.ptype)
        if self.since_nanos is not None:
            terms.append("since=%d" % self.since_nanos)
        if self.until_nanos is not None:
            terms.append("until=%d" % self.until_nanos)
        for key in sorted(self.labels):
            terms.append("label.%s=%s" % (key, self.labels[key]))
        if self.seq is not None:
            terms.append("seq=%d" % self.seq)
        if self.limit is not None:
            terms.append("limit=%d" % self.limit)
        return " ".join(terms)


def parse_time(text: str, now_nanos: Optional[int] = None) -> int:
    """One time bound: raw nanos, ISO-8601, or a relative age like ``6h``."""
    text = text.strip()
    if not text:
        raise QueryError("empty time value")
    try:
        return int(text)
    except ValueError:
        pass
    unit = _AGE_UNITS.get(text[-1])
    if unit is not None:
        try:
            count = float(text[:-1])
        except ValueError:
            count = None
        if count is not None:
            if now_nanos is None:
                raise QueryError(
                    "relative time %r needs a reference clock" % text)
            return now_nanos - int(count * unit)
    try:
        stamp = _dt.datetime.fromisoformat(text)
    except ValueError:
        raise QueryError(
            "cannot parse time %r (want nanoseconds, ISO-8601, or an age "
            "like 15m/6h/7d)" % text) from None
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=_dt.timezone.utc)
    return int(stamp.timestamp() * 10 ** 9)


def parse_age(text: str) -> int:
    """A duration in nanoseconds: raw nanos or ``30s``/``15m``/``6h``/``7d``."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    if text:
        unit = _AGE_UNITS.get(text[-1])
        if unit is not None:
            try:
                return int(float(text[:-1]) * unit)
            except ValueError:
                pass
    raise QueryError("cannot parse age %r (want nanoseconds or 30s/15m/"
                     "6h/7d)" % text)


def parse_query(text: str, now_nanos: Optional[int] = None) -> Query:
    """Parse query text; raises :class:`QueryError` on malformed input."""
    query = Query()
    for term in text.split():
        key, sep, value = term.partition("=")
        if not sep or not key:
            raise QueryError("malformed query term %r (want key=value)"
                             % term)
        if key == "service":
            query.service = value
        elif key == "type":
            query.ptype = value
        elif key == "since":
            query.since_nanos = parse_time(value, now_nanos)
        elif key == "until":
            query.until_nanos = parse_time(value, now_nanos)
        elif key.startswith("label."):
            name = key[len("label."):]
            if not name:
                raise QueryError("label term %r names no label" % term)
            query.labels[name] = value
        elif key == "limit":
            try:
                query.limit = int(value)
            except ValueError:
                raise QueryError("limit must be an integer, got %r"
                                 % value) from None
            if query.limit < 1:
                raise QueryError("limit must be positive")
        elif key == "seq":
            try:
                query.seq = int(value)
            except ValueError:
                raise QueryError("seq must be an integer, got %r"
                                 % value) from None
        else:
            raise QueryError(
                "unknown query key %r (service, type, since, until, "
                "label.<name>, limit, seq)" % key)
    return query
