"""Content-addressed immutable segments: the store's at-rest format.

A segment is a batch of profiles flushed from the write-ahead log.  On
disk::

    FILE   := MAGIC(8, b"EZSEG001") | BODY | FOOTER | FOOTER_LEN(8, LE) | END(8, b"EZSEGEND")
    BODY   := profile blob *             (offsets in the footer)
    FOOTER := wire message               (string table + per-record metadata)

Each profile blob is the EasyView :class:`~repro.proto.easyview_pb.ProfileMessage`
with its *private string table stripped*: all string indices are remapped
into one segment-wide table carried by the footer, so a segment of 100
profiles from the same service stores each function name, file path, and
metric name once (per-segment string dedup).  The wire codec is the same
:mod:`repro.proto.wire` the profile format uses.

Footer message fields::

    1 (repeated bytes)    string-table entries, UTF-8, index order
    2 (repeated message)  RecordMeta
    3 (varint)            segment creation time, nanoseconds

RecordMeta fields::

    1 string  service        5 varint  duration_nanos
    2 string  profile type   6 varint  body offset of the blob
    3 string  labels (JSON)  7 varint  blob length
    4 varint  time_nanos     8 varint  ingest sequence number

The **content address** is a 32-hex-char BLAKE2b digest over ``BODY +
FOOTER`` and doubles as the file name (``<address>.seg``).  Addresses make
segments immutable (any edit changes the name), flushes idempotent (re-
flushing the same WAL bytes produces the same file), and integrity checks
trivial (`easyview store stats` re-hashes and compares).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.atomicio import atomic_write_bytes
from ..core.profile import Profile
from ..core.strings import StringTable
from ..core import serialize
from ..errors import StoreError
from ..obs import get_registry, get_tracer
from ..proto import easyview_pb as pb
from ..proto import wire
from ..proto.fastwire import (Writer, decode_string, intern_string,
                              scan_fields)
from .wal import WalRecord

_tracer = get_tracer()
_registry = get_registry()
_segments_built = _registry.counter(
    "codec.segment.built", "segments composed via fastwire")
_footers_parsed = _registry.counter(
    "codec.segment.footers_parsed", "segment footers decoded via fastwire")

SEGMENT_MAGIC = b"EZSEG001"
SEGMENT_END = b"EZSEGEND"
SEGMENT_SUFFIX = ".seg"
_FOOTER_LEN = struct.Struct("<Q")

_ADDRESS_BYTES = 16  # 32 hex chars, matching repro.core.digest


@dataclass
class RecordMeta:
    """Footer metadata for one profile blob inside a segment."""

    service: str = ""
    ptype: str = "cpu"
    labels: Dict[str, str] = field(default_factory=dict)
    time_nanos: int = 0
    duration_nanos: int = 0
    offset: int = 0
    length: int = 0
    seq: int = 0

    def _fields(self, writer: Writer) -> None:
        writer.string(1, self.service)
        writer.string(2, self.ptype)
        writer.string(3, json.dumps(self.labels, sort_keys=True)
                      if self.labels else "")
        writer.varint(4, self.time_nanos)
        writer.varint(5, self.duration_nanos)
        writer.varint(6, self.offset)
        writer.varint(7, self.length)
        writer.varint(8, self.seq)

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: "bytes | memoryview") -> "RecordMeta":
        meta = cls()
        for num, _, value in scan_fields(data):
            if num == 1:
                meta.service = intern_string(value)
            elif num == 2:
                meta.ptype = intern_string(value)
            elif num == 3:
                text = decode_string(value)
                meta.labels = json.loads(text) if text else {}
            elif num == 4:
                meta.time_nanos = int(value)
            elif num == 5:
                meta.duration_nanos = int(value)
            elif num == 6:
                meta.offset = int(value)
            elif num == 7:
                meta.length = int(value)
            elif num == 8:
                meta.seq = int(value)
        return meta


@dataclass
class Segment:
    """One immutable segment: its address, strings, and record metadata."""

    address: str
    path: str
    strings: List[str]
    records: List[RecordMeta]
    created_nanos: int = 0
    size_bytes: int = 0


def _remap_strings(message: pb.ProfileMessage, shared: StringTable) -> None:
    """Re-point every string index into the segment-wide table."""
    table = message.string_table or [""]

    def remap(index: int) -> int:
        text = table[index] if 0 <= index < len(table) else ""
        return shared.intern(text)

    message.tool = remap(message.tool)
    for descriptor in message.metrics:
        descriptor.name = remap(descriptor.name)
        descriptor.unit = remap(descriptor.unit)
        descriptor.description = remap(descriptor.description)
    for node in message.nodes:
        node.name = remap(node.name)
        node.file = remap(node.file)
        node.module = remap(node.module)
    message.string_table = []


def _footer_bytes(strings: List[str], records: List[RecordMeta],
                  created_nanos: int) -> bytes:
    writer = Writer()
    for text in strings:
        writer.message(1, text.encode("utf-8"))
    for meta in records:
        mark = writer.begin_message(2)
        meta._fields(writer)
        writer.end_message(mark)
    writer.varint(3, created_nanos)
    return writer.getvalue()


def _parse_footer(data: "bytes | memoryview") -> "Segment":
    strings: List[str] = []
    records: List[RecordMeta] = []
    created = 0
    for num, _, value in scan_fields(data):
        if num == 1:
            # Segment string tables are exactly what the shared intern pool
            # is for: every segment from a service repeats the same names.
            strings.append(intern_string(value))
        elif num == 2:
            records.append(RecordMeta.parse(value))
        elif num == 3:
            created = int(value)
    if not strings:
        strings = [""]
    _footers_parsed.inc()
    return Segment(address="", path="", strings=strings, records=records,
                   created_nanos=created)


def segment_address(body: bytes, footer: bytes) -> str:
    """The content address: BLAKE2b over body + footer."""
    h = hashlib.blake2b(digest_size=_ADDRESS_BYTES)
    h.update(body)
    h.update(footer)
    return h.hexdigest()


def build_segment(wal_records: List[WalRecord],
                  created_nanos: int = 0) -> "tuple[bytes, Segment]":
    """Compose segment file bytes (and metadata) from WAL records.

    The same WAL records always produce the same bytes — record order, the
    shared string table's intern order, and the footer encoding are all
    deterministic — so the content address is reproducible and a re-flush
    after a crash lands on the identical file.
    """
    if not wal_records:
        raise StoreError("cannot build a segment from zero records")
    _segments_built.inc()
    shared = StringTable()
    body_parts: List[bytes] = []
    metas: List[RecordMeta] = []
    offset = 0
    for record in wal_records:
        try:
            message = pb.loads(record.blob)
        except wire.WireError as exc:
            raise StoreError("WAL record #%d does not parse: %s"
                             % (record.seq, exc)) from exc
        _remap_strings(message, shared)
        blob = message.serialize()
        body_parts.append(blob)
        metas.append(RecordMeta(service=record.service, ptype=record.ptype,
                                labels=dict(record.labels),
                                time_nanos=record.time_nanos,
                                duration_nanos=record.duration_nanos,
                                offset=offset, length=len(blob),
                                seq=record.seq))
        offset += len(blob)
    body = b"".join(body_parts)
    with _tracer.span("store.segment.encode_footer",
                      records=len(metas), strings=len(shared)):
        footer = _footer_bytes(shared.as_list(), metas, created_nanos)
    address = segment_address(body, footer)
    data = (SEGMENT_MAGIC + body + footer +
            _FOOTER_LEN.pack(len(footer)) + SEGMENT_END)
    segment = Segment(address=address, path="", strings=shared.as_list(),
                      records=metas, created_nanos=created_nanos,
                      size_bytes=len(data))
    return data, segment


def write_segment(directory: str, wal_records: List[WalRecord],
                  created_nanos: int = 0) -> Segment:
    """Flush WAL records to ``<directory>/<address>.seg`` atomically."""
    data, segment = build_segment(wal_records, created_nanos)
    segment.path = os.path.join(directory, segment.address + SEGMENT_SUFFIX)
    atomic_write_bytes(segment.path, data)
    return segment


def read_segment(path: str, verify: bool = False) -> Segment:
    """Open a segment file and parse its footer (body left on disk)."""
    with open(path, "rb") as handle:
        data = handle.read()
    return parse_segment(data, path, verify=verify)


def parse_segment(data: bytes, path: str = "",
                  verify: bool = False) -> Segment:
    """Parse segment bytes; with ``verify`` re-hash the content address."""
    if data[:len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise StoreError("%s is not a segment (bad magic)" % (path or "<data>"))
    trailer_at = len(data) - len(SEGMENT_END)
    if trailer_at < 0 or data[trailer_at:] != SEGMENT_END:
        raise StoreError("segment %s is truncated (missing end marker)"
                         % (path or "<data>"))
    len_at = trailer_at - _FOOTER_LEN.size
    (footer_len,) = _FOOTER_LEN.unpack_from(data, len_at)
    footer_at = len_at - footer_len
    if footer_at < len(SEGMENT_MAGIC):
        raise StoreError("segment %s has an impossible footer length %d"
                         % (path or "<data>", footer_len))
    view = memoryview(data)  # footer/body stay zero-copy through parsing
    footer = view[footer_at:len_at]
    body = view[len(SEGMENT_MAGIC):footer_at]
    try:
        segment = _parse_footer(footer)
    except (wire.WireError, UnicodeDecodeError, ValueError) as exc:
        raise StoreError("segment %s has a corrupt footer: %s"
                         % (path or "<data>", exc)) from exc
    segment.path = path
    segment.size_bytes = len(data)
    segment.address = segment_address(body, footer)
    if path:
        named = os.path.basename(path)
        if named.endswith(SEGMENT_SUFFIX):
            named = named[:-len(SEGMENT_SUFFIX)]
        if verify and named != segment.address:
            raise StoreError(
                "segment %s fails its integrity check: content hashes to "
                "%s" % (path, segment.address))
    for meta in segment.records:
        if meta.offset < 0 or meta.offset + meta.length > len(body):
            raise StoreError("segment %s record #%d overruns the body"
                             % (path or "<data>", meta.seq))
    return segment


def load_profile(segment: Segment, meta: RecordMeta) -> Profile:
    """Materialize one profile from a segment record.

    Reads only the record's byte range, reattaches the segment string
    table, and raises the message into a :class:`Profile`.
    """
    with open(segment.path, "rb") as handle:
        handle.seek(len(SEGMENT_MAGIC) + meta.offset)
        blob = handle.read(meta.length)
    if len(blob) != meta.length:
        raise StoreError("segment %s record #%d is truncated"
                         % (segment.path, meta.seq))
    try:
        message = pb.ProfileMessage.parse(blob)
    except wire.WireError as exc:
        raise StoreError("segment %s record #%d does not parse: %s"
                         % (segment.path, meta.seq, exc)) from exc
    message.string_table = list(segment.strings)
    profile = serialize.from_message(message)
    profile.meta.time_nanos = meta.time_nanos
    profile.meta.duration_nanos = meta.duration_nanos
    return profile


def to_wal_record(segment: Segment, meta: RecordMeta) -> WalRecord:
    """Re-log one segment record (used by compaction to rebuild batches)."""
    profile = load_profile(segment, meta)
    return WalRecord(service=meta.service, ptype=meta.ptype,
                     labels=dict(meta.labels), time_nanos=meta.time_nanos,
                     duration_nanos=meta.duration_nanos,
                     blob=serialize.dumps(profile), seq=meta.seq)
