"""ProfStore: a persistent, queryable profile repository.

The continuous-profiling layer under the viewer: profiles are *ingested*
(any supported format), logged durably in a CRC-checked write-ahead log,
flushed into content-addressed immutable segments with per-segment string
dedup, indexed by service/type/labels/time, and *served* by query — a
merge-on-read aggregation routed through the analysis engine's
digest-keyed cache.

Entry points: :class:`ProfileStore` (the API), ``easyview store ...`` (the
CLI), and the ``store/ingest`` / ``store/query`` / ``view/openQuery``
requests of the Profile View Protocol.  On-disk layout and the crash
contract are documented in ``docs/STORE.md``.
"""

from .index import LabelTimeIndex, Manifest, RecordEntry, SegmentInfo
from .query import Query, parse_age, parse_query, parse_time
from .segment import (RecordMeta, Segment, build_segment, load_profile,
                      parse_segment, read_segment, segment_address,
                      write_segment)
from .store import (DEFAULT_FLUSH_RECORDS, DEFAULT_SMALL_SEGMENT_RECORDS,
                    IngestResult, ProfileStore, QueryResult)
from .wal import WalRecord, WriteAheadLog, scan

__all__ = [
    "ProfileStore", "IngestResult", "QueryResult",
    "DEFAULT_FLUSH_RECORDS", "DEFAULT_SMALL_SEGMENT_RECORDS",
    "Query", "parse_age", "parse_query", "parse_time",
    "RecordEntry", "SegmentInfo", "Manifest", "LabelTimeIndex",
    "Segment", "RecordMeta", "build_segment", "parse_segment",
    "read_segment", "write_segment", "segment_address", "load_profile",
    "WalRecord", "WriteAheadLog", "scan",
]
