"""ProfStore: the persistent, queryable profile repository.

One :class:`ProfileStore` owns a directory::

    store/
      MANIFEST.json      root pointer: live segments + ingest cursor
      wal.log            write-ahead log (records since the last flush)
      <address>.seg      content-addressed immutable segments

**Ingest** accepts anything the converters understand (a path, raw bytes,
or a built :class:`~repro.core.profile.Profile`), normalizes to the
EasyView CCT representation, lints the time metadata (rule ``EV312`` —
records with no wall-clock stamp get the ingest clock, never epoch zero),
and appends to the WAL.  The record is durable the moment ``ingest``
returns.

**Flush** drains the WAL into one immutable segment.  The crash ordering
is: segment written (atomic rename) → manifest updated (atomic rename) →
WAL truncated.  A crash between any two steps is safe: the WAL still
holds the records, and because segments are content-addressed the re-flush
reproduces the *same* file name, so nothing is duplicated.

**Query** runs merge-on-read: the label/time index selects records, their
profiles load (fanning out through the engine's worker pool), and the
merge routes through :class:`~repro.engine.AnalysisEngine`, so a repeated
query is a digest-keyed cache hit rather than a recomputation.

**Compaction** merges small segments into one (same merge-on-read
contract before and after — the CI smoke test asserts the merged tree is
byte-identical across a compact).  **GC** applies retention and removes
orphan segment files left by crashes.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..analysis.viewtree import ViewTree
from ..core import serialize
from ..core.digest import viewtree_digest
from ..core.profile import Profile
from ..engine import AnalysisEngine, get_engine
from ..errors import StoreError
from ..obs import get_tracer
from .index import LabelTimeIndex, Manifest, RecordEntry, SegmentInfo
from .query import Query, parse_query
from .segment import (Segment, load_profile, read_segment, to_wal_record,
                      write_segment, SEGMENT_SUFFIX)
from .wal import WalRecord, WriteAheadLog

WAL_NAME = "wal.log"

#: Spans cover the durability pipeline end to end — ingest, WAL append,
#: segment write, query planning, merge-on-read — so a dogfooded profile
#: answers "where does a slow ``store query`` spend its time?".
_tracer = get_tracer()

#: Flush automatically once this many records accumulate in the WAL.
DEFAULT_FLUSH_RECORDS = 64

#: A segment with fewer records than this is "small" — compaction bait.
DEFAULT_SMALL_SEGMENT_RECORDS = 32


@dataclass
class IngestResult:
    """What one ingest produced: the index entry plus any diagnostics."""

    entry: RecordEntry
    diagnostics: List[Any] = field(default_factory=list)
    #: True when the profile carried no wall-clock stamp and the store
    #: assigned its ingest time instead (EV312's remediation).
    assigned_time: bool = False


@dataclass
class QueryResult:
    """A merge-on-read answer: matched records and their merged view."""

    query: Query
    entries: List[RecordEntry]
    tree: Optional[ViewTree]
    shape: str

    @property
    def count(self) -> int:
        return len(self.entries)

    def digest(self) -> str:
        """Content digest of the merged tree (empty string when no match);
        equal digests mean byte-identical merged results."""
        return viewtree_digest(self.tree) if self.tree is not None else ""


class ProfileStore:
    """A durable, queryable repository of profiles under one directory."""

    def __init__(self, root: str,
                 engine: Optional[AnalysisEngine] = None,
                 flush_records: int = DEFAULT_FLUSH_RECORDS,
                 fsync: bool = True,
                 clock=time.time_ns) -> None:
        self.root = root
        self.engine = engine if engine is not None else get_engine()
        self.flush_records = flush_records
        self.clock = clock
        self._lock = threading.RLock()
        self._segments: Dict[str, Segment] = {}  # address -> parsed segment
        os.makedirs(root, exist_ok=True)

        self.manifest = Manifest(root)
        self.manifest.load()
        self.index = LabelTimeIndex()
        for info in self.manifest.segments:
            path = self._segment_path(info.address)
            if not os.path.exists(path):
                raise StoreError(
                    "manifest names segment %s but %s is missing"
                    % (info.address, path))
            for entry in info.records:
                self.index.add(entry)

        # Replay-on-open: whatever the WAL holds was ingested but never
        # flushed (or flushed without the manifest update — handled by the
        # content-address dedup at the next flush).
        self.wal = WriteAheadLog(os.path.join(root, WAL_NAME), fsync=fsync)
        for record in self.wal.records:
            self.index.add(self._wal_entry(record))
            if record.seq >= self.manifest.next_seq:
                self.manifest.next_seq = record.seq + 1

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self.wal.close()

    def __enter__(self) -> "ProfileStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _segment_path(self, address: str) -> str:
        return os.path.join(self.root, address + SEGMENT_SUFFIX)

    @staticmethod
    def _wal_entry(record: WalRecord) -> RecordEntry:
        return RecordEntry(service=record.service, ptype=record.ptype,
                           labels=dict(record.labels),
                           time_nanos=record.time_nanos,
                           duration_nanos=record.duration_nanos,
                           seq=record.seq, segment=None)

    # -- ingest ------------------------------------------------------------

    def ingest(self, source: Union[str, bytes, Profile],
               service: str, ptype: str = "cpu",
               labels: Optional[Dict[str, str]] = None,
               format: Optional[str] = None) -> IngestResult:
        """Normalize, lint, and durably log one profile.

        ``source`` may be a file path, raw profile bytes in any supported
        format, or an already-built :class:`Profile`.  Returns once the
        record is fsynced into the WAL.  Auto-flushes to a segment when
        the WAL reaches ``flush_records``.
        """
        from ..lint import lint_profile
        with _tracer.span("store.ingest", service=service,
                          type=ptype) as span:
            if isinstance(source, Profile):
                profile = source
            else:
                from ..converters import open_profile, parse_bytes
                if isinstance(source, bytes):
                    profile = parse_bytes(source, format=format)
                else:
                    profile = open_profile(source, format=format)

            with _tracer.span("store.ingest.lint"):
                diagnostics = lint_profile(profile, require_time=True,
                                           subject=service or "<ingest>")
            assigned = False
            time_nanos = profile.meta.time_nanos
            if time_nanos <= 0:
                # EV312's contract: the time index never gets epoch-zero
                # entries — a stampless profile is indexed at its ingest
                # time.
                time_nanos = self.clock()
                assigned = True

            with self._lock:
                record = WalRecord(service=service, ptype=ptype,
                                   labels=dict(labels or {}),
                                   time_nanos=time_nanos,
                                   duration_nanos=max(
                                       0, profile.meta.duration_nanos),
                                   blob=serialize.dumps(profile),
                                   seq=self.manifest.next_seq)
                self.manifest.next_seq += 1
                self.wal.append(record)
                entry = self._wal_entry(record)
                self.index.add(entry)
                if span is not None:
                    span.set("seq", record.seq)
                if len(self.wal) >= self.flush_records:
                    self.flush()
            return IngestResult(entry=entry, diagnostics=diagnostics,
                                assigned_time=assigned)

    # -- flush -------------------------------------------------------------

    def flush(self) -> Optional[str]:
        """Drain the WAL into one immutable segment.

        Returns the new segment's content address, or None when the WAL is
        empty.  Ordering (segment → manifest → WAL truncate) plus content
        addressing makes every prefix of this sequence crash-safe.
        """
        with self._lock:
            if not len(self.wal):
                return None
            with _tracer.span("store.flush",
                              records=len(self.wal)) as span:
                with _tracer.span("store.segment.write"):
                    segment = write_segment(self.root, self.wal.records,
                                            created_nanos=self.clock())
                if span is not None:
                    span.set("segment", segment.address)
                return self._finish_flush(segment)

    def _finish_flush(self, segment: Segment) -> str:
        """Post-segment-write bookkeeping (manifest, WAL, index).

        Takes the store lock itself (reentrant under :meth:`flush`) so
        the manifest/WAL/index transition is atomic however it is
        reached.
        """
        with self._lock:
            self._segments[segment.address] = segment
            self.manifest.add_segment(SegmentInfo.from_segment(segment))
            self.manifest.save()
            self.wal.reset()
            self.index.remove_wal_entries()
            for meta in segment.records:
                self.index.add(RecordEntry.from_meta(meta, segment.address))
            return segment.address

    # -- read path ---------------------------------------------------------

    def _segment(self, address: str) -> Segment:
        """The parsed segment for ``address``, reading it on first use.

        ``query`` fans :meth:`load` out across the worker pool, so this
        cache is hit from several threads at once.  The disk read happens
        *outside* the lock — two threads may both parse a cold segment,
        but segments are immutable so either result is correct, and
        ``setdefault`` keeps exactly one.  Holding the lock across
        ``read_segment`` would serialize every cold load in a batch.
        """
        with self._lock:
            segment = self._segments.get(address)
        if segment is None:
            loaded = read_segment(self._segment_path(address))
            with self._lock:
                segment = self._segments.setdefault(address, loaded)
        return segment

    def load(self, entry: RecordEntry) -> Profile:
        """Materialize the profile behind one index entry."""
        if entry.segment is None:
            with self._lock:
                records = list(self.wal.records)
            for record in records:
                if record.seq == entry.seq:
                    profile = serialize.loads(record.blob)
                    profile.meta.time_nanos = record.time_nanos
                    profile.meta.duration_nanos = record.duration_nanos
                    return profile
            # A concurrent flush may have drained the WAL between the
            # query plan and this load; the index already knows which
            # segment the record moved to.
            with self._lock:
                entry = next((current for current in self.index.entries()
                              if current.seq == entry.seq
                              and current.segment is not None), entry)
            if entry.segment is None:
                raise StoreError("record #%d is gone from the WAL"
                                 % entry.seq)
        segment = self._segment(entry.segment)
        for meta in segment.records:
            if meta.seq == entry.seq:
                return load_profile(segment, meta)
        raise StoreError("segment %s does not hold record #%d"
                         % (entry.segment, entry.seq))

    def select(self, query: Union[str, Query]) -> List[RecordEntry]:
        """Index-only query: matching records, newest first."""
        with _tracer.span("store.query.plan"):
            if isinstance(query, str):
                query = parse_query(query, now_nanos=self.clock())
            with self._lock:
                return self.index.match(query)

    def query(self, query: Union[str, Query],
              shape: str = "top_down") -> QueryResult:
        """Merge-on-read: select, load, and aggregate matching profiles.

        Profile loads fan out through the engine's worker pool; the merge
        itself is the engine's memoized ``aggregate_profiles``, keyed by
        the profiles' content digests — so re-running a query over
        unchanged data is a cache hit, whichever segments the records
        live in (compaction does not change the answer *or* the key).
        """
        with _tracer.span("store.query") as span:
            if isinstance(query, str):
                query = parse_query(query, now_nanos=self.clock())
            with _tracer.span("store.query.plan"):
                # Only the planning section holds the lock: the load
                # fan-out below must run lock-free (each pooled load
                # re-acquires it briefly for its WAL/segment lookup).
                with self._lock:
                    entries = self.index.match(query)
            if span is not None:
                span.set("matches", len(entries))
            if not entries:
                return QueryResult(query=query, entries=[], tree=None,
                                   shape=shape)
            with _tracer.span("store.query.load", records=len(entries)):
                profiles = self.engine.pool.map(self.load, entries)
            tree = self.engine.aggregate_profiles(profiles, shape=shape)
            return QueryResult(query=query, entries=entries, tree=tree,
                               shape=shape)

    def window_key(self, entries: Sequence[RecordEntry]) -> str:
        """A digest identifying a window's membership *and* content.

        Sequence numbers are append-only and the blob behind a seq never
        changes (flush and compaction move records between WAL and
        segments but preserve bytes), so ``(store root, sorted seqs)``
        pins both which records are in the window and what they contain —
        without loading or hashing any profile data.  Used to key the
        engine's windowed-aggregate cache.
        """
        h = hashlib.blake2b(self.root.encode("utf-8"), digest_size=16)
        for seq in sorted(entry.seq for entry in entries):
            h.update(b"%d," % seq)
        return h.hexdigest()

    def query_window(self, query: Union[str, Query],
                     shape: str = "top_down") -> QueryResult:
        """Merge-on-read keyed by window identity instead of content.

        Same answer as :meth:`query`, but a repeat over an unchanged
        window (the regression-watch cadence) is a cache hit keyed by
        :meth:`window_key` — no profile loads, no content re-digesting.
        A changed window misses here and falls through to the ordinary
        content-keyed aggregation, so correctness never depends on this
        cache.
        """
        with _tracer.span("store.query.window") as span:
            if isinstance(query, str):
                query = parse_query(query, now_nanos=self.clock())
            with self._lock:
                entries = self.index.match(query)
            if span is not None:
                span.set("matches", len(entries))
            if not entries:
                return QueryResult(query=query, entries=[], tree=None,
                                   shape=shape)
            tree = self.engine.aggregate_window(
                self.window_key(entries),
                lambda: self.engine.pool.map(self.load, entries),
                shape=shape)
            return QueryResult(query=query, entries=entries, tree=tree,
                               shape=shape)

    # -- maintenance -------------------------------------------------------

    def compact(self,
                small_records: int = DEFAULT_SMALL_SEGMENT_RECORDS
                ) -> Optional[str]:
        """Merge small segments into one larger segment.

        Segments holding fewer than ``small_records`` records are
        candidates; two or more are rewritten (record loads fan out
        through the engine's worker pool) into a single segment, the
        manifest flips atomically, and only then are the old files
        removed.  Returns the new segment's address, or None when there
        was nothing to merge.
        """
        with self._lock, _tracer.span("store.compact") as span:
            small = [info for info in self.manifest.segments
                     if len(info.records) < small_records]
            if span is not None:
                span.set("candidates", len(small))
            if len(small) < 2:
                return None
            jobs = []
            for info in small:
                segment = self._segment(info.address)
                jobs.extend((segment, meta) for meta in segment.records)
            records = self.engine.pool.map(
                lambda job: to_wal_record(job[0], job[1]), jobs)
            records.sort(key=lambda record: record.seq)
            merged = write_segment(self.root, records,
                                   created_nanos=self.clock())
            old = [info.address for info in small
                   if info.address != merged.address]
            self.manifest.remove_segments([info.address for info in small])
            self.manifest.add_segment(SegmentInfo.from_segment(merged))
            self.manifest.save()
            self._segments[merged.address] = merged
            for address in old:
                self.index.remove_segment(address)
                self._segments.pop(address, None)
                try:
                    os.unlink(self._segment_path(address))
                except OSError:
                    pass  # already gone; gc sweeps strays
            for meta in merged.records:
                self.index.add(RecordEntry.from_meta(meta, merged.address))
            return merged.address

    def gc(self, max_age_nanos: Optional[int] = None,
           max_total_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Apply retention and sweep orphan segment files.

        A segment is dropped when *every* record in it ended before the
        retention cutoff, or (oldest first) while the store exceeds
        ``max_total_bytes``.  Orphans — ``.seg`` files the manifest does
        not name, left by a crash between segment write and manifest
        update whose WAL records were since re-flushed — are deleted too.
        """
        with self._lock, _tracer.span("store.gc"):
            removed: List[str] = []
            if max_age_nanos is not None:
                cutoff = self.clock() - max_age_nanos
                removed.extend(
                    info.address for info in self.manifest.segments
                    if info.records and all(e.end_nanos < cutoff
                                            for e in info.records))
            if max_total_bytes is not None:
                live = [info for info in self.manifest.segments
                        if info.address not in set(removed)]
                total = sum(info.size_bytes for info in live)
                for info in sorted(live, key=lambda i: i.created_nanos):
                    if total <= max_total_bytes:
                        break
                    removed.append(info.address)
                    total -= info.size_bytes
            self.manifest.remove_segments(removed)
            if removed:
                self.manifest.save()
            for address in removed:
                self.index.remove_segment(address)
                self._segments.pop(address, None)
                try:
                    os.unlink(self._segment_path(address))
                except OSError:
                    pass
            orphans = []
            live_names = {address + SEGMENT_SUFFIX
                          for address in self.manifest.addresses()}
            for name in os.listdir(self.root):
                if name.endswith(SEGMENT_SUFFIX) and name not in live_names:
                    orphans.append(name[:-len(SEGMENT_SUFFIX)])
                    try:
                        os.unlink(os.path.join(self.root, name))
                    except OSError:
                        pass
            return {"removedSegments": removed, "orphansSwept": orphans}

    def verify(self) -> List[str]:
        """Integrity check: re-hash every live segment's content address.

        Returns a list of problems (empty = everything checks out).  A
        half-written or bit-flipped segment cannot masquerade as healthy:
        its re-hashed address no longer matches its name.
        """
        problems: List[str] = []
        with self._lock:
            infos = list(self.manifest.segments)
        # Re-hashing reads whole segment files; do it outside the lock.
        for info in infos:
            path = self._segment_path(info.address)
            try:
                read_segment(path, verify=True)
            except (StoreError, OSError) as exc:
                problems.append(str(exc))
        return problems

    def stats(self, verify: bool = False) -> Dict[str, Any]:
        """Occupancy, per-service counts, time range, engine counters."""
        with self._lock:
            entries = self.index.entries()
            segments = list(self.manifest.segments)
            wal_records = len(self.wal)
            torn_bytes = self.wal.recovered_torn_bytes
            next_seq = self.manifest.next_seq
            start, end = self.index.time_range()
        per_service: Dict[str, int] = {}
        for entry in entries:
            per_service[entry.service] = per_service.get(entry.service, 0) + 1
        payload: Dict[str, Any] = {
            "root": self.root,
            "segments": len(segments),
            "segmentBytes": sum(info.size_bytes for info in segments),
            "records": len(entries),
            "walRecords": wal_records,
            "walRecoveredTornBytes": torn_bytes,
            "services": per_service,
            "timeRange": {"startNanos": start, "endNanos": end},
            "nextSeq": next_seq,
        }
        if verify:
            problems = self.verify()
            payload["integrity"] = {"ok": not problems, "problems": problems}
        return payload
