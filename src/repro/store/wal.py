"""The store's write-ahead log: durability between segment flushes.

Every ingested profile is appended here *before* it is acknowledged, so a
crash between ingest and segment flush loses nothing.  The format is a
flat sequence of self-delimiting records::

    RECORD := MAGIC(2, b"WR") | LENGTH(4, LE u32) | CRC32(4, LE u32) | PAYLOAD

``CRC32`` covers the payload only; ``LENGTH`` is the payload length.  The
payload itself is a small protobuf-style message (via the in-repo wire
codec) carrying the ingest metadata plus the profile serialized with
:mod:`repro.core.serialize`:

====== ========= ==============================================
field  type      meaning
====== ========= ==============================================
1      string    service name
2      string    profile type (``cpu``, ``heap``, ...)
3      string    labels as canonical JSON (sorted keys)
4      varint    wall-clock capture time (nanoseconds)
5      varint    capture duration (nanoseconds)
6      bytes     the profile, in EasyView binary format
7      varint    store-wide ingest sequence number
====== ========= ==============================================

**Crash recovery** (replay-on-open): records are scanned front to back;
the first record whose magic, length, or CRC does not check out marks the
torn tail, and the file is truncated back to the last fully-committed
record.  A record is *committed* iff every one of its bytes — trailing
CRC-checked payload included — made it to disk; the byte-level truncation
test in ``tests/test_store_wal.py`` exercises every prefix length.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import StoreError
from ..obs import get_registry, get_tracer
from ..proto import wire
from ..proto.fastwire import decode_string, intern_string, scan_fields

_tracer = get_tracer()
_registry = get_registry()
_records_decoded = _registry.counter(
    "codec.wal.records_decoded", "WAL records decoded via fastwire")
_records_encoded = _registry.counter(
    "codec.wal.records_encoded", "WAL records encoded via fastwire")

RECORD_MAGIC = b"WR"
_HEADER = struct.Struct("<2sII")  # magic, payload length, payload crc32

#: Refuse absurd lengths up front so a corrupt header cannot trigger a
#: multi-gigabyte allocation before the CRC check gets a chance to fail.
MAX_RECORD_BYTES = 1 << 31


@dataclass
class WalRecord:
    """One ingested profile, as logged."""

    service: str = ""
    ptype: str = "cpu"
    labels: Dict[str, str] = field(default_factory=dict)
    time_nanos: int = 0
    duration_nanos: int = 0
    blob: bytes = b""
    seq: int = 0

    def payload(self) -> bytes:
        writer = wire.Writer()
        writer.string(1, self.service)
        writer.string(2, self.ptype)
        writer.string(3, json.dumps(self.labels, sort_keys=True)
                      if self.labels else "")
        writer.varint(4, self.time_nanos)
        writer.varint(5, self.duration_nanos)
        writer.bytes(6, self.blob)
        writer.varint(7, self.seq)
        _records_encoded.inc()
        return writer.getvalue()

    @classmethod
    def from_payload(cls, payload: "bytes | memoryview") -> "WalRecord":
        record = cls()
        for num, _, value in scan_fields(payload):
            if num == 1:
                # Service/type names repeat across every record a service
                # logs; the shared intern pool makes each one ``str`` once.
                record.service = intern_string(value)
            elif num == 2:
                record.ptype = intern_string(value)
            elif num == 3:
                text = decode_string(value)
                record.labels = json.loads(text) if text else {}
            elif num == 4:
                record.time_nanos = int(value)
            elif num == 5:
                record.duration_nanos = int(value)
            elif num == 6:
                # The blob outlives the scan buffer, so this copy is real.
                record.blob = bytes(value)
            elif num == 7:
                record.seq = int(value)
        _records_decoded.inc()
        return record

    def encode(self) -> bytes:
        payload = self.payload()
        return _HEADER.pack(RECORD_MAGIC, len(payload),
                            zlib.crc32(payload)) + payload


def scan(data: bytes) -> Tuple[List[WalRecord], int]:
    """Decode every fully-committed record in ``data``.

    Returns ``(records, valid_length)`` where ``valid_length`` is the byte
    offset just past the last good record — everything after it is a torn
    tail (or garbage) to be truncated.  Never raises on corrupt input.
    """
    records: List[WalRecord] = []
    view = memoryview(data)  # one view; per-record payloads are subviews
    pos = 0
    size = len(data)
    while pos + _HEADER.size <= size:
        magic, length, crc = _HEADER.unpack_from(data, pos)
        if magic != RECORD_MAGIC or length > MAX_RECORD_BYTES:
            break
        start = pos + _HEADER.size
        end = start + length
        if end > size:
            break  # torn tail: payload not fully on disk
        payload = view[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(WalRecord.from_payload(payload))
        except (wire.WireError, UnicodeDecodeError, ValueError):
            break
        pos = end
    return records, pos


class WriteAheadLog:
    """An append-only, CRC-checked log with replay-on-open recovery."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self.records: List[WalRecord] = []
        #: Bytes discarded from the tail during recovery (0 = clean open).
        self.recovered_torn_bytes = 0
        self._open()

    def _open(self) -> None:
        if os.path.exists(self.path):
            with open(self.path, "rb") as handle:
                data = handle.read()
            self.records, valid = scan(data)
            if valid != len(data):
                self.recovered_torn_bytes = len(data) - valid
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid)
        self._handle = open(self.path, "ab")

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: WalRecord) -> WalRecord:
        """Durably append one record (flushed and fsynced before return)."""
        if self._handle.closed:
            raise StoreError("write-ahead log %s is closed" % self.path)
        with _tracer.span("store.wal.append", seq=record.seq,
                          bytes=len(record.blob), fsync=self.fsync):
            self._handle.write(record.encode())
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        self.records.append(record)
        return record

    def reset(self) -> None:
        """Drop all records (called after they are flushed to a segment)."""
        self._handle.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self.records = []
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
