"""The label/time index and the manifest that persists it.

The index answers "which records match this query" without touching any
segment body.  Every record — segment-resident or still WAL-only — has one
:class:`RecordEntry` carrying its service, profile type, labels, and
wall-clock range plus its physical location.

The **manifest** (``MANIFEST.json``) is the store's root pointer: the list
of live segments with their record metadata, the next ingest sequence
number, and the format version.  It is rewritten atomically
(:mod:`repro.core.atomicio`) after every flush/compaction/gc, so the store
directory is always in one of two states: old manifest + old segments, or
new manifest + new segments.  Segment files not named by the manifest are
orphans (a crash between segment write and manifest update) and are
ignored on open and removed by ``gc``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.atomicio import atomic_write_text
from ..errors import StoreError
from .query import Query
from .segment import RecordMeta, Segment

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1


@dataclass
class RecordEntry:
    """One queryable record: labels + time range + physical location.

    ``segment`` is the owning segment's content address, or ``None`` while
    the record still lives only in the write-ahead log.
    """

    service: str
    ptype: str
    labels: Dict[str, str]
    time_nanos: int
    duration_nanos: int
    seq: int
    segment: Optional[str] = None
    offset: int = 0
    length: int = 0

    @property
    def end_nanos(self) -> int:
        return self.time_nanos + max(0, self.duration_nanos)

    def to_dict(self) -> Dict[str, object]:
        return {
            "service": self.service,
            "type": self.ptype,
            "labels": dict(self.labels),
            "timeNanos": self.time_nanos,
            "durationNanos": self.duration_nanos,
            "seq": self.seq,
            "segment": self.segment,
            "offset": self.offset,
            "length": self.length,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RecordEntry":
        return cls(service=str(payload.get("service", "")),
                   ptype=str(payload.get("type", "cpu")),
                   labels={str(k): str(v)
                           for k, v in (payload.get("labels") or {}).items()},
                   time_nanos=int(payload.get("timeNanos", 0)),
                   duration_nanos=int(payload.get("durationNanos", 0)),
                   seq=int(payload.get("seq", 0)),
                   segment=payload.get("segment"),  # type: ignore[arg-type]
                   offset=int(payload.get("offset", 0)),
                   length=int(payload.get("length", 0)))

    @classmethod
    def from_meta(cls, meta: RecordMeta,
                  segment_address: Optional[str]) -> "RecordEntry":
        return cls(service=meta.service, ptype=meta.ptype,
                   labels=dict(meta.labels), time_nanos=meta.time_nanos,
                   duration_nanos=meta.duration_nanos, seq=meta.seq,
                   segment=segment_address, offset=meta.offset,
                   length=meta.length)


@dataclass
class SegmentInfo:
    """Manifest row for one live segment."""

    address: str
    size_bytes: int
    created_nanos: int
    records: List[RecordEntry] = field(default_factory=list)

    @classmethod
    def from_segment(cls, segment: Segment) -> "SegmentInfo":
        return cls(address=segment.address, size_bytes=segment.size_bytes,
                   created_nanos=segment.created_nanos,
                   records=[RecordEntry.from_meta(meta, segment.address)
                            for meta in segment.records])


class Manifest:
    """The persisted root pointer: live segments + the ingest cursor."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, MANIFEST_NAME)
        self.segments: List[SegmentInfo] = []
        self.next_seq = 1

    def load(self) -> bool:
        """Read the manifest; returns False when none exists yet."""
        if not os.path.exists(self.path):
            return False
        with open(self.path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreError("manifest %s is not valid JSON: %s"
                                 % (self.path, exc)) from exc
        if payload.get("version") != MANIFEST_VERSION:
            raise StoreError("manifest %s has unsupported version %r"
                             % (self.path, payload.get("version")))
        self.next_seq = int(payload.get("nextSeq", 1))
        self.segments = []
        for info in payload.get("segments", []):
            self.segments.append(SegmentInfo(
                address=str(info["address"]),
                size_bytes=int(info.get("sizeBytes", 0)),
                created_nanos=int(info.get("createdNanos", 0)),
                records=[RecordEntry.from_dict(entry)
                         for entry in info.get("records", [])]))
        return True

    def save(self) -> None:
        """Atomically persist the manifest."""
        payload = {
            "version": MANIFEST_VERSION,
            "nextSeq": self.next_seq,
            "segments": [{
                "address": info.address,
                "sizeBytes": info.size_bytes,
                "createdNanos": info.created_nanos,
                "records": [entry.to_dict() for entry in info.records],
            } for info in self.segments],
        }
        atomic_write_text(self.path, json.dumps(payload, indent=1,
                                                sort_keys=True))

    def addresses(self) -> List[str]:
        return [info.address for info in self.segments]

    def add_segment(self, info: SegmentInfo) -> None:
        if info.address in set(self.addresses()):
            # Content-addressed: the same bytes re-flushed after a crash
            # land on the same file; adding it twice would double-count.
            return
        self.segments.append(info)

    def remove_segments(self, addresses: List[str]) -> List[SegmentInfo]:
        doomed = set(addresses)
        removed = [info for info in self.segments if info.address in doomed]
        self.segments = [info for info in self.segments
                         if info.address not in doomed]
        return removed


class LabelTimeIndex:
    """In-memory query index over every live record.

    Rebuilt from the manifest (plus WAL-resident entries) on open; lookups
    never touch segment bodies.  Matching records come back newest-first,
    so ``limit=N`` keeps the N most recent.
    """

    def __init__(self) -> None:
        self._entries: List[RecordEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: RecordEntry) -> None:
        self._entries.append(entry)

    def remove_segment(self, address: str) -> None:
        self._entries = [e for e in self._entries if e.segment != address]

    def remove_wal_entries(self) -> None:
        self._entries = [e for e in self._entries if e.segment is not None]

    def entries(self) -> List[RecordEntry]:
        return list(self._entries)

    def services(self) -> List[str]:
        return sorted({e.service for e in self._entries})

    def time_range(self) -> "tuple[int, int]":
        """(earliest start, latest end) across all records; (0, 0) empty."""
        if not self._entries:
            return 0, 0
        return (min(e.time_nanos for e in self._entries),
                max(e.end_nanos for e in self._entries))

    def match(self, query: Query) -> List[RecordEntry]:
        matched = [e for e in self._entries if query.matches(e)]
        matched.sort(key=lambda e: (e.time_nanos, e.seq), reverse=True)
        if query.limit is not None:
            matched = matched[:query.limit]
        return matched
