"""Multi-client serving benchmark: the asyncio PVP service under load.

One harness, two front ends: ``benchmarks/test_serve_bench.py`` runs it
under pytest and CI, and ``easyview bench serve`` runs it from the
command line.  Both emit the same ``BENCH_serve.json`` report.

For each client-count tier the harness starts an in-process
:class:`~repro.serve.server.PVPServer`, drives it with
:func:`~repro.serve.loadgen.run_load` scripted analysts (the
``repro.study`` task plans translated to PVP requests over a
``spark_profile`` workload), and records throughput plus p50/p95/p99
request latency.

Every run also gates on correctness: the deterministic (sequential)
script must produce response streams that are digest-identical across
every concurrent session *and* identical to the single-client
``StdioServer`` answering the same wire lines — volatile keys such as
``responseSeconds`` masked, ordering canonicalized — or
:class:`ServeMismatch` is raised.  A separate burst run (mouse-sweep
hovers fired without awaiting, a deliberately narrow dispatch pool)
measures cancellation effectiveness: the superseded ratio — cancelled
burst requests over burst requests sent — must be positive, proving the
supersession path actually fires under interactive load.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.atomicio import atomic_write_text
from ..core.serialize import dump
from ..profilers.workloads import spark_profile
from ..serve.loadgen import (LoadReport, analyst_script, canonical_line,
                             digest_lines, run_load, sequential_script,
                             wire_lines)
from ..serve.server import PVPServer, ServeConfig

#: Client-count tiers: quick keeps CI under a minute, full adds the
#: thousand-session tier the scalability claim is defined on.
QUICK_TIERS = (1, 16, 64)
FULL_TIERS = (1, 64, 1024)

#: Sessions and dispatch-pool width for the burst (cancellation) run: a
#: deliberately narrow pool so queues form and supersession fires.
BURST_SESSIONS = 32
BURST_WORKERS = 2

DEFAULT_REPORT = "BENCH_serve.json"


class ServeMismatch(AssertionError):
    """Concurrent serving disagreed with the single-client reference."""


def make_profile(directory: str) -> str:
    """Write the benchmark workload profile and return its path."""
    path = os.path.join(directory, "spark.ezvw")
    dump(spark_profile(), path)
    return path


def stdio_reference_digest(profile_path: str,
                           script: Sequence[Dict[str, Any]]) -> str:
    """The single-client ``StdioServer`` digest for ``script``.

    Two passes: the first learns the profile id the session assigns, the
    second replays the full wire script (identical requests and ids to a
    socket :class:`~repro.serve.loadgen.LoadClient`) and digests every
    stdout line — responses and notifications — canonicalized.
    """
    from ..ide.server import StdioServer

    probe = wire_lines([], profile_id=0, profile_path=profile_path)
    out = io.StringIO()
    StdioServer(stdin=io.StringIO("\n".join(probe) + "\n"), stdout=out,
                log=io.StringIO()).serve_forever()
    open_response = json.loads(out.getvalue().splitlines()[0])
    if open_response.get("result") is None:
        raise ServeMismatch("stdio reference failed to open %r: %s"
                            % (profile_path, open_response.get("error")))
    profile_id = open_response["result"]["profileId"]

    full = wire_lines(script, profile_id, profile_path)
    out = io.StringIO()
    StdioServer(stdin=io.StringIO("\n".join(full) + "\n"), stdout=out,
                log=io.StringIO()).serve_forever()
    lines = [canonical_line(json.loads(line))
             for line in out.getvalue().splitlines()]
    return digest_lines(lines)


async def _run_tier(sessions: int, profile_path: str,
                    script: Sequence[Dict[str, Any]],
                    workers: Optional[int] = None) -> LoadReport:
    config = ServeConfig(max_pending=max(1024, sessions * 4),
                         max_session_queue=64,
                         workers=workers)
    server = PVPServer(config, log=io.StringIO())
    await server.start()
    try:
        return await run_load("127.0.0.1", server.port, sessions,
                              profile_path, script=script)
    finally:
        await server.stop()


def bench_tier(sessions: int, profile_path: str,
               script: Sequence[Dict[str, Any]],
               reference_digest: str) -> Dict[str, Any]:
    """One client-count tier; raises :class:`ServeMismatch` on drift."""
    report = asyncio.run(_run_tier(sessions, profile_path, script))
    digests = set(report.digests)
    if len(digests) != 1:
        raise ServeMismatch(
            "%d concurrent sessions produced %d distinct response digests"
            % (sessions, len(digests)))
    digest = digests.pop()
    if digest != reference_digest:
        raise ServeMismatch(
            "socket responses at %d sessions (digest %s) differ from the "
            "single-client StdioServer reference (digest %s)"
            % (sessions, digest, reference_digest))
    if report.errors:
        raise ServeMismatch(
            "%d error responses in the deterministic run at %d sessions"
            % (report.errors, sessions))
    entry = report.to_dict()
    entry["digest"] = digest
    entry["digestMatchesStdio"] = True
    del entry["burstRequests"]  # no bursts in the deterministic script
    return entry


def bench_burst(profile_path: str,
                script: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The cancellation-effectiveness run (bursty script, narrow pool)."""
    report = asyncio.run(_run_tier(BURST_SESSIONS, profile_path, script,
                                   workers=BURST_WORKERS))
    ratio = (report.cancelled / report.burst_requests
             if report.burst_requests else 0.0)
    return {
        "sessions": BURST_SESSIONS,
        "workers": BURST_WORKERS,
        "requests": report.requests,
        "burstRequests": report.burst_requests,
        "cancelled": report.cancelled,
        "denied": report.denied,
        "supersededRatio": round(ratio, 4),
        "throughputRps": round(report.throughput_rps, 1),
    }


def run_serve_bench(tiers: Optional[Iterable[int]] = None,
                    task: str = "task1",
                    max_steps: int = 12) -> Dict[str, Any]:
    """Run the serving benchmark and return the full report dict."""
    names: List[int] = list(tiers if tiers is not None else FULL_TIERS)
    script = analyst_script(task, max_steps=max_steps)
    deterministic = sequential_script(script)
    with tempfile.TemporaryDirectory(prefix="easyview-bench-serve-"
                                     ) as directory:
        profile_path = make_profile(directory)
        reference = stdio_reference_digest(profile_path, deterministic)
        report_tiers = {
            str(sessions): bench_tier(sessions, profile_path,
                                      deterministic, reference)
            for sessions in names}
        burst = bench_burst(profile_path, script)
    return {
        "benchmark": "serve",
        "task": task,
        "stdioReferenceDigest": reference,
        "tiers": report_tiers,
        "burst": burst,
    }


def write_report(report: Dict[str, Any],
                 path: str = DEFAULT_REPORT) -> str:
    atomic_write_text(path,
                      json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary table for the CLI."""
    lines = ["serve: concurrent sessions vs single-client stdio reference"]
    header = "%-9s %9s %10s %9s %9s %9s  %s" % (
        "sessions", "requests", "req/s", "p50 ms", "p95 ms", "p99 ms",
        "digest")
    lines.append(header)
    for name in sorted(report["tiers"], key=int):
        entry = report["tiers"][name]
        latency = entry["latencyMs"]
        lines.append("%-9s %9d %10.1f %9.3f %9.3f %9.3f  %s" % (
            name, entry["requests"], entry["throughputRps"],
            latency["p50"], latency["p95"], latency["p99"],
            "ok" if entry["digestMatchesStdio"] else "MISMATCH"))
    burst = report["burst"]
    lines.append("burst: %d sessions x %d-wide pool, %d/%d burst requests "
                 "superseded (ratio %.3f)"
                 % (burst["sessions"], burst["workers"], burst["cancelled"],
                    burst["burstRequests"], burst["supersededRatio"]))
    return "\n".join(lines)
