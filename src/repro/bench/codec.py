"""Codec fast-path benchmark: fastwire vs the preserved reference codec.

One harness, two front ends: ``benchmarks/test_codec_fastpath.py`` runs it
under pytest and CI, and ``easyview bench codec`` runs it from the command
line.  Both emit the same ``BENCH_codec.json`` report.

For each corpus tier the harness measures raw pprof decode and encode
throughput for the fastwire path (:mod:`repro.proto.pprof_pb`) against the
pre-change codec preserved as :mod:`repro.proto.reference`, plus the cold
profile-open latency (raw pprof bytes all the way to a calling-context
tree via :mod:`repro.converters.pprof`).  Every run also gates on
correctness: the two codecs must produce equal decoded objects and
byte-identical serialized output, or :class:`CodecMismatch` is raised.

The documented target is fast-path decode >= 3x the reference codec on
the large tier (see ``docs/PERFORMANCE.md``); measured runs land well
above it when numpy is available.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional

from ..core.atomicio import atomic_write_text
from ..obs import get_registry
from ..profilers.corpus import generate_bytes, tier
from ..proto import reference
from ..proto.fastwire import packed_stats
from ..proto.pprof_pb import Profile

#: Tier sets: quick keeps CI under a few seconds, full adds the tier the
#: decode target is defined on.
QUICK_TIERS = ("small", "medium")
FULL_TIERS = ("small", "medium", "large")

#: Documented decode target on the large tier (fastpath vs reference).
DECODE_TARGET_SPEEDUP = 3.0

DEFAULT_REPORT = "BENCH_codec.json"


class CodecMismatch(AssertionError):
    """The fast path disagreed with the reference codec."""


def _interleaved_best(fns: Dict[str, object],
                      repeats: int) -> Dict[str, float]:
    """Best-of-N wall time per function, repetitions interleaved.

    Interleaving spreads machine-load noise evenly across the competing
    codecs instead of letting a load spike land entirely on whichever
    ran last, so the min/min speedup ratios stay comparable.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < best[name]:
                best[name] = elapsed
    return best


def _check_equality(name: str, raw: bytes, fast: Profile,
                    ref: Profile) -> None:
    if fast != ref:
        raise CodecMismatch(
            "decoded objects differ on tier %r (fastwire vs reference)"
            % name)
    fast_bytes = fast.serialize()
    ref_bytes = reference.serialize_pprof(ref)
    if fast_bytes != ref_bytes:
        raise CodecMismatch(
            "serialized bytes differ on tier %r (fastwire vs reference)"
            % name)
    if fast_bytes != raw:
        raise CodecMismatch(
            "re-encoded bytes differ from the corpus input on tier %r"
            % name)


def bench_tier(name: str, repeats: int = 3) -> Dict[str, object]:
    """Benchmark one corpus tier; raises :class:`CodecMismatch` on drift."""
    raw = generate_bytes(tier(name), compress=False)
    mb = len(raw) / 1e6

    fast = Profile.parse(raw)
    ref = reference.parse_pprof(raw)
    _check_equality(name, raw, fast, ref)

    from ..converters import pprof as pprof_converter

    times = _interleaved_best({
        "decode_fast": lambda: Profile.parse(raw),
        "decode_ref": lambda: reference.parse_pprof(raw),
        "encode_fast": fast.serialize,
        "encode_ref": lambda: reference.serialize_pprof(ref),
        "open_cold": lambda: pprof_converter.parse(raw),
    }, repeats)
    decode_fast = times["decode_fast"]
    decode_ref = times["decode_ref"]
    encode_fast = times["encode_fast"]
    encode_ref = times["encode_ref"]
    open_cold = times["open_cold"]

    return {
        "raw_bytes": len(raw),
        "decode": {
            "reference_s": round(decode_ref, 4),
            "fastpath_s": round(decode_fast, 4),
            "speedup": round(decode_ref / decode_fast, 2),
            "fastpath_mb_s": round(mb / decode_fast, 1),
        },
        "encode": {
            "reference_s": round(encode_ref, 4),
            "fastpath_s": round(encode_fast, 4),
            "speedup": round(encode_ref / encode_fast, 2),
            "fastpath_mb_s": round(mb / encode_fast, 1),
        },
        "cold_open": {
            # raw pprof bytes -> parsed message -> CCT, i.e. what the IDE
            # pays between click and first view render.
            "fastpath_s": round(open_cold, 4),
            "mb_s": round(mb / open_cold, 1),
        },
        "equality": {"objects_equal": True, "bytes_identical": True},
    }


def run_codec_bench(tiers: Optional[Iterable[str]] = None,
                    repeats: int = 3) -> Dict[str, object]:
    """Run the codec benchmark and return the full report dict."""
    registry = get_registry()
    calls_before = registry.counter(
        "codec.pprof.parse_calls", "pprof messages parsed via fastwire").value
    names: List[str] = list(tiers if tiers is not None else FULL_TIERS)
    report_tiers = {name: bench_tier(name, repeats=repeats)
                    for name in names}
    calls_after = registry.counter(
        "codec.pprof.parse_calls", "pprof messages parsed via fastwire").value
    report: Dict[str, object] = {
        "benchmark": "codec-fastpath",
        "target_decode_speedup_large": DECODE_TARGET_SPEEDUP,
        "kernels": packed_stats(),
        "fastwire_parse_calls": calls_after - calls_before,
        "tiers": report_tiers,
    }
    return report


def write_report(report: Dict[str, object],
                 path: str = DEFAULT_REPORT) -> str:
    atomic_write_text(path,
                      json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary table for the CLI."""
    lines = ["codec fast path vs reference  (best-of-N wall time)"]
    stats = report["kernels"]
    lines.append("numpy kernels: %s"
                 % ("available" if stats["numpyAvailable"] else
                    "unavailable (pure-python fallback)"))
    header = "%-8s %10s %14s %14s %9s %12s" % (
        "tier", "size", "decode MB/s", "encode MB/s", "speedup",
        "cold open")
    lines.append(header)
    for name, entry in report["tiers"].items():
        decode = entry["decode"]
        encode = entry["encode"]
        lines.append("%-8s %9.1fM %14.1f %14.1f %8.2fx %11.3fs" % (
            name, entry["raw_bytes"] / 1e6, decode["fastpath_mb_s"],
            encode["fastpath_mb_s"], decode["speedup"],
            entry["cold_open"]["fastpath_s"]))
    if "large" in report["tiers"]:
        speedup = report["tiers"]["large"]["decode"]["speedup"]
        lines.append("large-tier decode speedup %.2fx (target >= %.1fx)"
                     % (speedup, report["target_decode_speedup_large"]))
    return "\n".join(lines)
