"""Columnar CCT benchmark: struct-of-arrays core vs the object tree.

One harness, two front ends: ``benchmarks/test_cct_columnar.py`` runs it
under pytest and CI, and ``easyview bench cct`` runs it from the command
line.  Both emit the same ``BENCH_cct.json`` report.

For each corpus tier the harness measures the cold profile open (raw
pprof bytes to a queryable CCT) through the columnar fast path
(:func:`repro.converters.pprof.parse`) against the per-node object path
(:func:`~repro.converters.pprof.parse_object`), with a per-phase
breakdown of the columnar open (wire decode vs CCT build).  It also
measures digest and top-down view construction on both representations
and raw traversal throughput over the columnar kernels.

Every run gates on correctness first: the two representations must
produce equal profile digests, structurally identical materialized trees
(child order included), and equal top-down view trees, or
:class:`OracleMismatch` is raised — the benchmark refuses to report
numbers for a fast path that drifted.

The documented target is columnar cold open >= 3x the object path on the
large tier (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional

from ..analysis.transform import top_down
from ..analysis.diff import diff_profiles
from ..analysis.aggregate import aggregate_profiles
from ..core.atomicio import atomic_write_text
from ..core.cct_columnar import ColumnarCCT, numpy_available
from ..core.digest import profile_digest, viewtree_digest
from ..profilers.corpus import generate_bytes, tier

#: Tier sets: quick keeps CI under a few seconds, full adds the tier the
#: cold-open target is defined on.
QUICK_TIERS = ("small", "medium")
FULL_TIERS = ("small", "medium", "large")

#: Documented cold-open target on the large tier (columnar vs object).
COLD_OPEN_TARGET_SPEEDUP = 3.0

DEFAULT_REPORT = "BENCH_cct.json"


class OracleMismatch(AssertionError):
    """The columnar representation disagreed with the object tree."""


def _interleaved_best(fns: Dict[str, object],
                      repeats: int) -> Dict[str, float]:
    """Best-of-N wall time per function, repetitions interleaved.

    Interleaving spreads machine-load noise evenly across the competing
    implementations instead of letting a load spike land entirely on
    whichever ran last, so the min/min speedup ratios stay comparable.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < best[name]:
                best[name] = elapsed
    return best


def _assert_trees_equal(name: str, a, b) -> None:
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.frame != y.frame:
            raise OracleMismatch(
                "tier %r: frame mismatch (%r vs %r)"
                % (name, x.frame, y.frame))
        if x.metrics != y.metrics:
            raise OracleMismatch(
                "tier %r: metric mismatch at %s" % (name, x.frame.label()))
        if list(x.children) != list(y.children):
            raise OracleMismatch(
                "tier %r: child order mismatch at %s"
                % (name, x.frame.label()))
        stack.extend(zip(x.children.values(), y.children.values()))


def _check_equality(name: str, fast, ref) -> None:
    """The oracle gate: digests, trees, and view trees must all agree."""
    if profile_digest(fast) != profile_digest(ref):
        raise OracleMismatch(
            "tier %r: profile digests differ (columnar vs object)" % name)
    if viewtree_digest(top_down(fast)) != viewtree_digest(top_down(ref)):
        raise OracleMismatch(
            "tier %r: top-down view trees differ (columnar vs object)"
            % name)
    _assert_trees_equal(name, fast.root, ref.root)


def bench_tier(name: str, repeats: int = 3) -> Dict[str, object]:
    """Benchmark one corpus tier; raises :class:`OracleMismatch` on drift."""
    from ..converters import pprof as pprof_converter
    from ..proto import pprof_pb

    raw = generate_bytes(tier(name), compress=False)
    mb = len(raw) / 1e6

    fast = pprof_converter.parse(raw)
    ref = pprof_converter.parse_object(raw)
    columnar = fast.columnar()
    _check_equality(name, fast, ref)
    n_nodes = ref.node_count()

    other = pprof_converter.parse_object(raw)

    times = _interleaved_best({
        "wire_decode": lambda: pprof_pb.loads_columnar(raw),
        "open_columnar": lambda: pprof_converter.parse(raw),
        "open_object": lambda: pprof_converter.parse_object(raw),
        "digest_columnar": lambda: profile_digest(
            pprof_converter.parse(raw)),
        "digest_object": lambda: profile_digest(ref),
        "view_columnar": lambda: top_down(pprof_converter.parse(raw)),
        "view_object": lambda: top_down(ref),
    }, repeats)

    kernel_times = None
    if columnar is not None:
        # Rewrap the arrays per call so lazily-cached kernels (pre-order,
        # subtree sizes, inclusive) are recomputed, not replayed.
        def fresh() -> ColumnarCCT:
            return ColumnarCCT(parent=columnar.parent,
                               frame_id=columnar.frame_id,
                               depth=columnar.depth,
                               values=columnar.values,
                               present=columnar.present,
                               frames=columnar.frames)

        kernel_times = _interleaved_best({
            "preorder_columnar": lambda: fresh().preorder_ids(),
            "preorder_object": lambda: sum(
                1 for _ in ref.root.walk()),
            "inclusive_columnar": lambda: fresh().inclusive(),
            "diff": lambda: diff_profiles(ref, other),
            "aggregate": lambda: aggregate_profiles([ref, other]),
        }, repeats)

    cold_columnar = times["open_columnar"]
    cold_object = times["open_object"]
    entry: Dict[str, object] = {
        "raw_bytes": len(raw),
        "nodes": n_nodes,
        "cold_open": {
            # raw pprof bytes -> queryable CCT, i.e. what the IDE pays
            # between click and first query.
            "object_s": round(cold_object, 4),
            "columnar_s": round(cold_columnar, 4),
            "speedup": round(cold_object / cold_columnar, 2),
            "columnar_mb_s": round(mb / cold_columnar, 1),
            "phases": {
                "wire_decode_s": round(times["wire_decode"], 4),
                "cct_build_s": round(
                    max(cold_columnar - times["wire_decode"], 0.0), 4),
            },
        },
        "digest": {
            "object_s": round(times["digest_object"], 4),
            # Includes a fresh parse (digest consumes a cold profile).
            "columnar_s": round(times["digest_columnar"], 4),
        },
        "view_build": {
            "object_s": round(times["view_object"], 4),
            "columnar_s": round(times["view_columnar"], 4),
            "speedup": round(
                times["view_object"] / times["view_columnar"], 2),
        },
        "equality": {
            "digest_equal": True,
            "trees_identical": True,
            "views_identical": True,
        },
    }
    if kernel_times is not None:
        entry["throughput"] = {
            "preorder_object_mnodes_s": round(
                n_nodes / kernel_times["preorder_object"] / 1e6, 2),
            "preorder_columnar_mnodes_s": round(
                n_nodes / kernel_times["preorder_columnar"] / 1e6, 2),
            "inclusive_columnar_s": round(
                kernel_times["inclusive_columnar"], 4),
            "diff_s": round(kernel_times["diff"], 4),
            "aggregate_s": round(kernel_times["aggregate"], 4),
        }
    return entry


def run_cct_bench(tiers: Optional[Iterable[str]] = None,
                  repeats: int = 3) -> Dict[str, object]:
    """Run the columnar CCT benchmark and return the full report dict."""
    names: List[str] = list(tiers if tiers is not None else FULL_TIERS)
    report: Dict[str, object] = {
        "benchmark": "cct-columnar",
        "numpy_available": numpy_available(),
        "target_cold_open_speedup_large": COLD_OPEN_TARGET_SPEEDUP,
        "tiers": {name: bench_tier(name, repeats=repeats)
                  for name in names},
    }
    return report


def write_report(report: Dict[str, object],
                 path: str = DEFAULT_REPORT) -> str:
    atomic_write_text(path,
                      json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary table for the CLI."""
    lines = ["columnar CCT vs object tree  (best-of-N wall time)"]
    lines.append("numpy kernels: %s"
                 % ("available" if report["numpy_available"] else
                    "unavailable (object path only)"))
    header = "%-8s %10s %9s %11s %9s %11s %11s" % (
        "tier", "nodes", "open", "open obj", "speedup", "digest", "view")
    lines.append(header)
    for name, entry in report["tiers"].items():
        cold = entry["cold_open"]
        lines.append("%-8s %10d %8.3fs %10.3fs %8.2fx %10.3fs %10.3fs" % (
            name, entry["nodes"], cold["columnar_s"], cold["object_s"],
            cold["speedup"], entry["digest"]["columnar_s"],
            entry["view_build"]["columnar_s"]))
    if "large" in report["tiers"]:
        speedup = report["tiers"]["large"]["cold_open"]["speedup"]
        lines.append("large-tier cold open speedup %.2fx (target >= %.1fx)"
                     % (speedup, report["target_cold_open_speedup_large"]))
    return "\n".join(lines)
