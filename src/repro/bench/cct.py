"""Columnar CCT benchmark: struct-of-arrays core vs the object tree.

One harness, two front ends: ``benchmarks/test_cct_columnar.py`` runs it
under pytest and CI, and ``easyview bench cct`` runs it from the command
line.  Both emit the same ``BENCH_cct.json`` report.

For each corpus tier the harness measures the cold profile open (raw
pprof bytes to a queryable CCT) through the columnar fast path
(:func:`repro.converters.pprof.parse`) against the per-node object path
(:func:`~repro.converters.pprof.parse_object`), with a per-phase
breakdown of the columnar open (wire decode vs CCT build).  On top of
the open it measures the whole columnar *view pipeline* against the
object transforms — warm profile, cold view: every timed call builds a
fresh view tree, but the profile it reads is already open, so the
numbers isolate the operation instead of re-paying the parse (which the
pre-columnar-view harness mistakenly folded into ``view_columnar``).
Covered per tier: top-down, bottom-up, and flat builds, N-profile
aggregation, differential profiles, flame-graph layout, digests, and raw
traversal throughput over the columnar kernels.

Every run gates on correctness first: the two representations must
produce equal profile digests, structurally identical materialized
trees (child order included), equal view-tree digests on *every* shape
plus the aggregate and diff trees, and matching flame-graph rectangles,
or :class:`OracleMismatch` is raised — the benchmark refuses to report
numbers for a fast path that drifted.

Documented targets on the large tier (see ``docs/PERFORMANCE.md``):
columnar cold open >= 3x, top-down view build >= 1.5x.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional

from ..analysis.transform import bottom_up, flat, top_down
from ..analysis.aggregate import aggregate_profiles, merge_trees
from ..analysis.diff import diff_profiles, diff_trees
from ..core.atomicio import atomic_write_text
from ..core.cct_columnar import ColumnarCCT, numpy_available
from ..core.digest import profile_digest, viewtree_digest
from ..profilers.corpus import generate_bytes, tier
from ..viz.layout import layout

#: Tier sets: quick keeps CI under a few seconds, full adds the tier the
#: cold-open target is defined on.
QUICK_TIERS = ("small", "medium")
FULL_TIERS = ("small", "medium", "large")

#: Documented cold-open target on the large tier (columnar vs object).
COLD_OPEN_TARGET_SPEEDUP = 3.0

#: Documented top-down view-build target on the large tier.
VIEW_BUILD_TARGET_SPEEDUP = 1.5

DEFAULT_REPORT = "BENCH_cct.json"


class OracleMismatch(AssertionError):
    """The columnar representation disagreed with the object tree."""


def _interleaved_best(fns: Dict[str, object],
                      repeats: int) -> Dict[str, float]:
    """Best-of-N wall time per function, repetitions interleaved.

    Interleaving spreads machine-load noise evenly across the competing
    implementations instead of letting a load spike land entirely on
    whichever ran last, so the min/min speedup ratios stay comparable.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < best[name]:
                best[name] = elapsed
    return best


def _assert_trees_equal(name: str, a, b) -> None:
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.frame != y.frame:
            raise OracleMismatch(
                "tier %r: frame mismatch (%r vs %r)"
                % (name, x.frame, y.frame))
        if x.metrics != y.metrics:
            raise OracleMismatch(
                "tier %r: metric mismatch at %s" % (name, x.frame.label()))
        if list(x.children) != list(y.children):
            raise OracleMismatch(
                "tier %r: child order mismatch at %s"
                % (name, x.frame.label()))
        stack.extend(zip(x.children.values(), y.children.values()))


def _assert_view_digests(name: str, label: str, fast_tree, ref_tree) -> None:
    if fast_tree.columnar() is None:
        raise OracleMismatch(
            "tier %r: %s did not take the columnar path" % (name, label))
    if viewtree_digest(fast_tree) != viewtree_digest(ref_tree):
        raise OracleMismatch(
            "tier %r: %s view trees differ (columnar vs object)"
            % (name, label))


def _assert_layouts_equal(name: str, fast_layout, ref_layout) -> None:
    if (fast_layout.laid_out_nodes != ref_layout.laid_out_nodes
            or fast_layout.skipped_nodes != ref_layout.skipped_nodes
            or fast_layout.max_depth != ref_layout.max_depth):
        raise OracleMismatch(
            "tier %r: layout summary differs (columnar vs object)" % name)
    for ours, theirs in zip(fast_layout.rects, ref_layout.rects):
        # x sums sibling widths in a different float association (grouped
        # prefix sums vs a serial cursor) — rounding-equal, not bitwise.
        if (ours.node.frame != theirs.node.frame
                or ours.depth != theirs.depth
                or ours.width != theirs.width
                or abs(ours.x - theirs.x) > 1e-6 * max(1.0, abs(theirs.x))):
            raise OracleMismatch(
                "tier %r: layout rects differ (columnar vs object)" % name)


def _check_equality(name: str, fast, ref, fast_other, other) -> None:
    """The oracle gate: digests, trees, views, ops, and rects must agree."""
    if profile_digest(fast) != profile_digest(ref):
        raise OracleMismatch(
            "tier %r: profile digests differ (columnar vs object)" % name)
    _assert_trees_equal(name, fast.root, ref.root)

    fast_views = {}
    ref_views = {}
    for label, build in (("top_down", top_down), ("bottom_up", bottom_up),
                         ("flat", flat)):
        fast_views[label] = build(fast)
        ref_views[label] = build(ref)
        _assert_view_digests(name, label, fast_views[label],
                             ref_views[label])
    fast_views["aggregate"] = merge_trees(
        [fast_views["top_down"], top_down(fast_other)])
    ref_views["aggregate"] = merge_trees(
        [ref_views["top_down"], top_down(other)])
    _assert_view_digests(name, "aggregate", fast_views["aggregate"],
                         ref_views["aggregate"])
    fast_views["diff"] = diff_trees(fast_views["top_down"],
                                    top_down(fast_other))
    ref_views["diff"] = diff_trees(ref_views["top_down"], top_down(other))
    _assert_view_digests(name, "diff", fast_views["diff"],
                         ref_views["diff"])
    _assert_layouts_equal(name, layout(fast_views["top_down"]),
                          layout(ref_views["top_down"]))


def bench_tier(name: str, repeats: int = 3) -> Dict[str, object]:
    """Benchmark one corpus tier; raises :class:`OracleMismatch` on drift."""
    from ..converters import pprof as pprof_converter
    from ..proto import pprof_pb

    raw = generate_bytes(tier(name), compress=False)
    mb = len(raw) / 1e6

    fast = pprof_converter.parse(raw)
    ref = pprof_converter.parse_object(raw)
    columnar = fast.columnar()
    fast_other = pprof_converter.parse(raw)
    other = pprof_converter.parse_object(raw)
    # The gate also warms every profile-level cache (inclusive values,
    # traversal kernels), so the view timings below measure the operation,
    # not first-touch cache fills on one side only.
    _check_equality(name, fast, ref, fast_other, other)
    n_nodes = ref.node_count()

    times = _interleaved_best({
        "wire_decode": lambda: pprof_pb.loads_columnar(raw),
        "open_columnar": lambda: pprof_converter.parse(raw),
        "open_object": lambda: pprof_converter.parse_object(raw),
        "digest_columnar": lambda: profile_digest(
            pprof_converter.parse(raw)),
        "digest_object": lambda: profile_digest(ref),
    }, repeats)

    # Warm profile, cold view: every call builds a fresh view tree off an
    # already-open profile — symmetric on both sides.
    view_times = _interleaved_best({
        "top_down_columnar": lambda: top_down(fast),
        "top_down_object": lambda: top_down(ref),
        "bottom_up_columnar": lambda: bottom_up(fast),
        "bottom_up_object": lambda: bottom_up(ref),
        "flat_columnar": lambda: flat(fast),
        "flat_object": lambda: flat(ref),
        "aggregate_columnar": lambda: aggregate_profiles(
            [fast, fast_other]),
        "aggregate_object": lambda: aggregate_profiles([ref, other]),
        "diff_columnar": lambda: diff_profiles(fast, fast_other),
        "diff_object": lambda: diff_profiles(ref, other),
    }, repeats)

    # Layout on warm view trees: the columnar side emits rect geometry
    # without materializing a single ViewNode.
    fast_view = top_down(fast)
    ref_view = top_down(ref)
    layout_times = _interleaved_best({
        "layout_columnar": lambda: layout(fast_view),
        "layout_object": lambda: layout(ref_view),
    }, repeats)

    kernel_times = None
    if columnar is not None:
        # Rewrap the arrays per call so lazily-cached kernels (pre-order,
        # subtree sizes, inclusive) are recomputed, not replayed.
        def fresh() -> ColumnarCCT:
            return ColumnarCCT(parent=columnar.parent,
                               frame_id=columnar.frame_id,
                               depth=columnar.depth,
                               values=columnar.values,
                               present=columnar.present,
                               frames=columnar.frames)

        kernel_times = _interleaved_best({
            "preorder_columnar": lambda: fresh().preorder_ids(),
            "preorder_object": lambda: sum(
                1 for _ in ref.root.walk()),
            "inclusive_columnar": lambda: fresh().inclusive(),
        }, repeats)

    def versus(key: str) -> Dict[str, float]:
        obj = view_times["%s_object" % key]
        col = view_times["%s_columnar" % key]
        return {"object_s": round(obj, 4), "columnar_s": round(col, 4),
                "speedup": round(obj / col, 2)}

    cold_columnar = times["open_columnar"]
    cold_object = times["open_object"]
    entry: Dict[str, object] = {
        "raw_bytes": len(raw),
        "nodes": n_nodes,
        "cold_open": {
            # raw pprof bytes -> queryable CCT, i.e. what the IDE pays
            # between click and first query.
            "object_s": round(cold_object, 4),
            "columnar_s": round(cold_columnar, 4),
            "speedup": round(cold_object / cold_columnar, 2),
            "columnar_mb_s": round(mb / cold_columnar, 1),
            "phases": {
                "wire_decode_s": round(times["wire_decode"], 4),
                "cct_build_s": round(
                    max(cold_columnar - times["wire_decode"], 0.0), 4),
            },
        },
        "digest": {
            "object_s": round(times["digest_object"], 4),
            # Includes a fresh parse (digest consumes a cold profile).
            "columnar_s": round(times["digest_columnar"], 4),
        },
        "view_build": versus("top_down"),
        "bottom_up_build": versus("bottom_up"),
        "flat_build": versus("flat"),
        "aggregate": versus("aggregate"),
        "diff": versus("diff"),
        "layout": {
            "object_s": round(layout_times["layout_object"], 4),
            "columnar_s": round(layout_times["layout_columnar"], 4),
            "speedup": round(layout_times["layout_object"]
                             / layout_times["layout_columnar"], 2),
        },
        "equality": {
            "digest_equal": True,
            "trees_identical": True,
            "views_identical": True,
            "layouts_identical": True,
        },
    }
    if kernel_times is not None:
        entry["throughput"] = {
            "preorder_object_mnodes_s": round(
                n_nodes / kernel_times["preorder_object"] / 1e6, 2),
            "preorder_columnar_mnodes_s": round(
                n_nodes / kernel_times["preorder_columnar"] / 1e6, 2),
            "inclusive_columnar_s": round(
                kernel_times["inclusive_columnar"], 4),
            # Back-compat keys for the pre-columnar-view reports: the
            # object-path aggregate/diff wall times.
            "diff_s": round(view_times["diff_object"], 4),
            "aggregate_s": round(view_times["aggregate_object"], 4),
        }
    return entry


def run_cct_bench(tiers: Optional[Iterable[str]] = None,
                  repeats: int = 3) -> Dict[str, object]:
    """Run the columnar CCT benchmark and return the full report dict."""
    names: List[str] = list(tiers if tiers is not None else FULL_TIERS)
    report: Dict[str, object] = {
        "benchmark": "cct-columnar",
        "numpy_available": numpy_available(),
        "target_cold_open_speedup_large": COLD_OPEN_TARGET_SPEEDUP,
        "target_view_build_speedup_large": VIEW_BUILD_TARGET_SPEEDUP,
        "tiers": {name: bench_tier(name, repeats=repeats)
                  for name in names},
    }
    return report


def write_report(report: Dict[str, object],
                 path: str = DEFAULT_REPORT) -> str:
    atomic_write_text(path,
                      json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary table for the CLI."""
    lines = ["columnar CCT vs object tree  (best-of-N wall time)"]
    lines.append("numpy kernels: %s"
                 % ("available" if report["numpy_available"] else
                    "unavailable (object path only)"))
    header = "%-8s %10s %9s %9s %9s %9s %9s %9s %9s" % (
        "tier", "nodes", "open", "view", "botup", "flat", "aggr",
        "diff", "layout")
    lines.append(header)
    for name, entry in report["tiers"].items():
        lines.append(
            "%-8s %10d %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx"
            % (name, entry["nodes"], entry["cold_open"]["speedup"],
               entry["view_build"]["speedup"],
               entry["bottom_up_build"]["speedup"],
               entry["flat_build"]["speedup"],
               entry["aggregate"]["speedup"], entry["diff"]["speedup"],
               entry["layout"]["speedup"]))
    lines.append("(columnar speedup over the object path, min-of-N each)")
    if "large" in report["tiers"]:
        large = report["tiers"]["large"]
        lines.append("large-tier cold open speedup %.2fx (target >= %.1fx)"
                     % (large["cold_open"]["speedup"],
                        report["target_cold_open_speedup_large"]))
        lines.append("large-tier view build speedup %.2fx (target >= %.1fx)"
                     % (large["view_build"]["speedup"],
                        report["target_view_build_speedup_large"]))
    return "\n".join(lines)
