"""Reusable benchmark harnesses (shared by ``benchmarks/`` and the CLI)."""

from .codec import run_codec_bench, write_report  # noqa: F401
