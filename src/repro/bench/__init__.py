"""Reusable benchmark harnesses (shared by ``benchmarks/`` and the CLI)."""

from .codec import run_codec_bench, write_report  # noqa: F401
from .cct import run_cct_bench  # noqa: F401
from .serve import run_serve_bench  # noqa: F401
