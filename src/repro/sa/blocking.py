"""The blocking pass (rules EV411-EV413): slow calls in fast places.

Three places a known-blocking call does outsized damage:

* **under a lock** (``EV411``) — every other thread contending for that
  lock now waits on the disk or the network too; lock hold times should
  be bounded by memory work,
* **inside a hot tracer span** (``EV412``) — spans wrap the engine's and
  store's latency-sensitive paths; blocking I/O inside one usually means
  I/O crept onto a path that is profiled precisely because it must stay
  fast, and
* **inside an ``async def``** (``EV413``) — the socket server multiplexes
  every connected session onto one event loop; a blocking call in a
  coroutine stalls all of them at once.  Blocking work belongs on the
  dispatch pool via ``run_in_executor`` (``await asyncio.sleep`` is the
  non-blocking sleep and is not in the curated list).

"Known-blocking" is a curated list, not an inference: bare ``open()``,
``time.sleep``, anything under ``subprocess``/``socket``, the
filesystem-touching ``os.*`` calls, the repo's own segment/atomic-file
helpers, durability methods on WAL/manifest objects, and worker-pool
fan-out (``pool.map`` under a lock holds the lock across the whole
batch).  Precedence when one call qualifies for several rules: EV411,
then EV413, then EV412 — each call reports once.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..lint.pysource import attr_chain
from ..lint.registry import Findings, Rule, Severity, register
from .model import LockTracker, Scope, SourceModule, scopes

register(Rule(
    "EV411", "selfcheck", Severity.WARNING,
    "blocking call while holding a lock",
    bad="import threading\n"
        "class Journal:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def log(self, line):\n"
        "        with self._lock:\n"
        "            with open('journal.txt', 'a') as handle:\n"
        "                handle.write(line)\n",
    good="import threading\n"
         "class Journal:\n"
         "    def __init__(self):\n"
         "        self._lock = threading.Lock()\n"
         "        self._pending = []\n"
         "    def log(self, line):\n"
         "        with self._lock:\n"
         "            self._pending.append(line)\n"))
register(Rule(
    "EV412", "selfcheck", Severity.INFO,
    "blocking call inside a hot tracer span",
    bad="import time\n"
        "def render(tracer, tree):\n"
        "    with tracer.span('viewer.render'):\n"
        "        time.sleep(0.1)\n"
        "        return tree.layout()\n",
    good="import time\n"
         "def render(tracer, tree):\n"
         "    time.sleep(0.1)\n"
         "    with tracer.span('viewer.render'):\n"
         "        return tree.layout()\n"))
register(Rule(
    "EV413", "selfcheck", Severity.WARNING,
    "blocking call inside an async function",
    bad="import time\n"
        "async def poll(queue):\n"
        "    time.sleep(0.05)\n"
        "    return queue.get_nowait()\n",
    good="import asyncio\n"
         "async def poll(queue):\n"
         "    await asyncio.sleep(0.05)\n"
         "    return queue.get_nowait()\n"))

#: ``os.*`` calls that reach the filesystem.
_OS_BLOCKING = frozenset({
    "fsync", "fdatasync", "unlink", "remove", "rename", "replace",
    "listdir", "scandir", "makedirs", "rmdir", "stat", "truncate",
})

#: Repo-local helpers that read or write files whatever their receiver.
_IO_HELPERS = frozenset({
    "write_segment", "read_segment", "load_profile",
    "atomic_write_bytes", "atomic_write_text", "atomic_write",
})

#: Durability objects (by receiver-name substring) whose lifecycle
#: methods hit disk: the WAL fsyncs on ``append``/``reset``, manifests
#: rewrite their file on ``save``/``load``.
_DURABILITY_RECEIVERS = ("wal", "manifest")
_DURABILITY_METHODS = frozenset({"append", "reset", "save", "load"})

#: Worker-pool fan-out held across a lock blocks for the whole batch.
_SPAWN_METHODS = frozenset({"map", "submit", "apply_async"})
_POOL_HINTS = ("pool", "executor")


def classify_blocking(node: ast.Call) -> Optional[str]:
    """A short description when the call is known-blocking, else None."""
    chain = attr_chain(node.func)
    if not chain:
        return None
    joined = ".".join(chain)
    if chain == ("open",):
        return "open()"
    if chain[0] == "time" and chain[-1] == "sleep":
        return joined + "()"
    if chain[0] in ("subprocess", "socket"):
        return joined + "()"
    if chain[0] == "os" and chain[-1] in _OS_BLOCKING:
        return joined + "()"
    if chain[-1] in _IO_HELPERS:
        return joined + "()"
    if len(chain) >= 2 and chain[-1] in _DURABILITY_METHODS and any(
            hint in part.lower()
            for part in chain[:-1] for hint in _DURABILITY_RECEIVERS):
        return joined + "()"
    if len(chain) >= 2 and chain[-1] in _SPAWN_METHODS and any(
            hint in part.lower()
            for part in chain[:-1] for hint in _POOL_HINTS):
        return joined + "() (worker-pool fan-out)"
    return None


def is_hot_span(expr: ast.AST) -> bool:
    """True for ``with <...tracer...>.span(...)`` context expressions."""
    if not isinstance(expr, ast.Call):
        return False
    chain = attr_chain(expr.func)
    if not chain or chain[-1] != "span" or len(chain) < 2:
        return False
    return any("tracer" in part.lower() for part in chain[:-1])


class _BlockingVisitor(LockTracker):
    def __init__(self, module: SourceModule, scope: Scope, fn_name: str,
                 findings: Findings, is_async: bool = False) -> None:
        super().__init__(scope)
        self.module = module
        self.fn_name = fn_name
        self.findings = findings
        self.span_depth = 0
        self._span_stack: List[int] = []
        self.in_async = is_async
        self._async_stack: List[bool] = []

    def visit_With(self, node: ast.With) -> None:
        spans = sum(1 for item in node.items
                    if is_hot_span(item.context_expr))
        self.span_depth += spans
        try:
            super().visit_With(node)
        finally:
            self.span_depth -= spans

    visit_AsyncWith = visit_With

    def enter_function(self, node: ast.AST) -> None:
        # A nested function's body runs later, outside the span — and in
        # its own async-ness: a sync callback defined inside a coroutine
        # does not block the loop when *defined*, and a nested coroutine
        # does block it when run.
        self._span_stack.append(self.span_depth)
        self.span_depth = 0
        self._async_stack.append(self.in_async)
        self.in_async = isinstance(node, ast.AsyncFunctionDef)

    def leave_function(self, node: ast.AST) -> None:
        self.span_depth = self._span_stack.pop()
        self.in_async = self._async_stack.pop()

    def handle_node(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Call):
            return
        description = classify_blocking(node)
        if description is None:
            return
        if self.held:
            lock = self.scope.describe_lock(sorted(self.held)[0])
            self.findings.add(
                "EV411",
                "%s: calls %s while holding %s"
                % (self.fn_name, description, lock),
                span=self.module.span(node),
                line=getattr(node, "lineno", 0))
        elif self.in_async:
            self.findings.add(
                "EV413",
                "%s: calls %s inside an async function; a blocking call "
                "stalls the event loop for every session"
                % (self.fn_name, description),
                span=self.module.span(node),
                line=getattr(node, "lineno", 0))
        elif self.span_depth:
            self.findings.add(
                "EV412",
                "%s: calls %s inside a tracer span; blocking I/O on a "
                "traced hot path" % (self.fn_name, description),
                span=self.module.span(node),
                line=getattr(node, "lineno", 0))


def check_blocking(module: SourceModule, findings: Findings) -> None:
    """Run EV411/EV412/EV413 over every function in the file.

    Scopes without locks still run (EV412/EV413 need no lock);
    ``self.held`` just stays empty there.
    """
    for scope in scopes(module):
        for fn in scope.functions:
            name = getattr(fn, "name", "<lambda>")
            fn_name = "%s.%s" % (scope.name, name) if scope.name else name
            visitor = _BlockingVisitor(
                module, scope, fn_name, findings,
                is_async=isinstance(fn, ast.AsyncFunctionDef))
            for statement in fn.body:
                visitor.visit(statement)
