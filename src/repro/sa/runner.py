"""SelfCheck's driver: files in, diagnostics out, baseline applied.

``analyze_source`` runs all four passes over one Python source;
``analyze_paths`` walks directories (skipping hidden trees and
``__pycache__``) and analyzes every ``.py`` file; ``run_selfcheck``
layers the baseline on top and produces the triaged result the CLI, CI
gate, and PVP endpoint all share.

Subjects are normalized to repository-relative ``repro/...`` paths, so
the same baseline matches whether the scan was launched on ``src``,
``src/repro``, or an absolute path.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import Span
from ..lint.diagnostics import Diagnostic, sort_diagnostics
from ..lint.pysource import line_offsets
from ..lint.registry import Findings, LintConfig, Rule, Severity, register
from .baseline import Baseline, Waiver
from .blocking import check_blocking
from .lockset import check_lockset, check_task_callables
from .model import SourceModule
from .resources import check_resources

register(Rule(
    "EV400", "selfcheck", Severity.ERROR,
    "source file does not parse as Python",
    bad="def flush(self) return None",
    good="def flush(self): return None"))


def normalize_subject(path: str) -> str:
    """Repository-relative display path: ``.../src/repro/x.py`` →
    ``repro/x.py`` (unchanged when no ``repro`` component exists)."""
    normalized = path.replace(os.sep, "/").replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return "repro/" + normalized[index + len(marker):]
    if normalized.startswith("repro/"):
        return normalized
    return normalized.lstrip("./")


def analyze_source(source: str, subject: str,
                   config: Optional[LintConfig] = None
                   ) -> List[Diagnostic]:
    """All four SelfCheck passes over one source text."""
    findings = Findings(config, subject=subject)
    try:
        module = SourceModule.from_source(source, subject)
    except SyntaxError as exc:
        offsets = line_offsets(source)
        lineno = min(exc.lineno or 1, len(offsets) - 1)
        position = offsets[lineno - 1] + (exc.offset or 1) - 1
        findings.add("EV400", "syntax error: %s" % exc.msg,
                     span=Span.point(position), line=exc.lineno or 0)
        return findings.items
    except (ValueError, RecursionError) as exc:
        findings.add("EV400", "cannot analyze: %s" % exc)
        return findings.items
    check_lockset(module, findings)
    check_task_callables(module, findings)
    check_blocking(module, findings)
    check_resources(module, findings)
    return sort_diagnostics(findings.items)


def analyze_file(path: str,
                 config: Optional[LintConfig] = None) -> List[Diagnostic]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, normalize_subject(path), config=config)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted.

    Hidden directories and ``__pycache__`` are skipped; a path that is
    itself a ``.py`` file is taken as given.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d != "__pycache__")
                out.extend(os.path.join(root, name)
                           for name in sorted(names)
                           if name.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
    return out


def analyze_paths(paths: Sequence[str],
                  config: Optional[LintConfig] = None) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        diagnostics.extend(analyze_file(path, config=config))
    return sort_diagnostics(diagnostics)


@dataclass
class SelfCheckResult:
    """One full run: everything found, triaged against the baseline."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    new: List[Diagnostic] = field(default_factory=list)
    waived: List[Diagnostic] = field(default_factory=list)
    stale: List[Waiver] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.new

    def to_dict(self) -> dict:
        return {
            "tool": "easyview-selfcheck",
            "files": self.files,
            "findings": [d.to_dict() for d in self.diagnostics],
            "new": [d.to_dict() for d in self.new],
            "waived": len(self.waived),
            "staleWaivers": [w.to_dict() for w in self.stale],
            "clean": self.clean,
        }


def run_selfcheck(paths: Sequence[str],
                  baseline: Optional[Baseline] = None,
                  config: Optional[LintConfig] = None) -> SelfCheckResult:
    """Analyze ``paths`` and triage the findings against ``baseline``."""
    files = iter_python_files(paths)
    diagnostics: List[Diagnostic] = []
    for path in files:
        diagnostics.extend(analyze_file(path, config=config))
    diagnostics = sort_diagnostics(diagnostics)
    baseline = baseline or Baseline()
    new, waived, stale = baseline.split(diagnostics)
    return SelfCheckResult(diagnostics=diagnostics, new=new, waived=waived,
                           stale=stale, files=len(files))
