"""The SelfCheck baseline: known findings, each with a justification.

SelfCheck gates CI, and a gate that cries wolf gets disabled — so
intentional findings (the WAL's fsync under the store lock is the
durability contract, not a bug) are *waived*, not silenced.  A waiver
names the rule, the file, and the exact finding message, and must say
**why** the finding is acceptable; loading a baseline with an empty
justification is an error, which keeps "I'll explain later" entries out
of the tree.

Waivers match on ``(rule, subject, message)`` — never on line numbers.
Messages carry scope and field names (``ProfileStore.flush: calls
write_segment() ...``), so a waiver survives unrelated edits shifting
the file, yet dies the moment the code it describes changes shape.
Identical findings at several sites in one function share one waiver by
construction.

``easyview selfcheck`` exits non-zero on any finding the baseline does
not cover; ``--update-baseline`` rewrites the file from the current
findings, preserving existing justifications and stamping new entries
``UNREVIEWED: ...`` so review debt stays greppable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.atomicio import atomic_write_text
from ..core.jsonio import dumps_data
from ..errors import EasyViewError
from ..lint.diagnostics import Diagnostic

#: The stamp --update-baseline puts on entries nobody has justified yet.
UNREVIEWED = "UNREVIEWED: justify this waiver or fix the finding"

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = "SELFCHECK_BASELINE.json"


class BaselineError(EasyViewError):
    """The baseline file is malformed or under-justified."""


@dataclass(frozen=True)
class Waiver:
    """One accepted finding: its fingerprint plus the reason it stays."""

    rule: str
    subject: str
    message: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.subject, self.message)

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "subject": self.subject,
                "message": self.message,
                "justification": self.justification}


def _fingerprint(diagnostic: Diagnostic) -> Tuple[str, str, str]:
    return (diagnostic.rule, diagnostic.subject, diagnostic.message)


class Baseline:
    """An ordered set of waivers with (rule, subject, message) lookup."""

    def __init__(self, waivers: Sequence[Waiver] = ()) -> None:
        self.waivers: List[Waiver] = list(waivers)
        self._index: Dict[Tuple[str, str, str], Waiver] = {
            waiver.key: waiver for waiver in self.waivers}

    def __len__(self) -> int:
        return len(self.waivers)

    def match(self, diagnostic: Diagnostic) -> Optional[Waiver]:
        return self._index.get(_fingerprint(diagnostic))

    def split(self, diagnostics: Sequence[Diagnostic]
              ) -> Tuple[List[Diagnostic], List[Diagnostic], List[Waiver]]:
        """Partition findings into ``(new, waived)`` plus stale waivers.

        A waiver is *stale* when no current finding matches it — the code
        it excused has changed or been fixed, so the entry should go.
        """
        new: List[Diagnostic] = []
        waived: List[Diagnostic] = []
        used = set()
        for diagnostic in diagnostics:
            waiver = self.match(diagnostic)
            if waiver is None:
                new.append(diagnostic)
            else:
                waived.append(diagnostic)
                used.add(waiver.key)
        stale = [waiver for waiver in self.waivers
                 if waiver.key not in used]
        return new, waived, stale

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError("cannot read baseline %s: %s"
                                % (path, exc)) from exc
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("waivers"), list):
            raise BaselineError(
                "baseline %s must be an object with a 'waivers' list"
                % path)
        waivers = []
        for i, entry in enumerate(payload["waivers"]):
            if not isinstance(entry, dict):
                raise BaselineError("baseline %s: waiver #%d is not an "
                                    "object" % (path, i))
            missing = [key for key in
                       ("rule", "subject", "message", "justification")
                       if not isinstance(entry.get(key), str)]
            if missing:
                raise BaselineError(
                    "baseline %s: waiver #%d lacks %s"
                    % (path, i, ", ".join(missing)))
            if not entry["justification"].strip():
                raise BaselineError(
                    "baseline %s: waiver #%d (%s in %s) has an empty "
                    "justification; every waived finding must say why"
                    % (path, i, entry["rule"], entry["subject"]))
            waivers.append(Waiver(
                rule=entry["rule"], subject=entry["subject"],
                message=entry["message"],
                justification=entry["justification"]))
        return cls(waivers)

    def save(self, path: str) -> None:
        payload = {
            "version": 1,
            "tool": "easyview-selfcheck",
            "waivers": [waiver.to_dict() for waiver in self.waivers],
        }
        atomic_write_text(path, dumps_data(payload) + "\n")

    @classmethod
    def from_findings(cls, diagnostics: Sequence[Diagnostic],
                      previous: Optional["Baseline"] = None) -> "Baseline":
        """A baseline covering the given findings (``--update-baseline``).

        Justifications carry over from ``previous`` where fingerprints
        still match; genuinely new entries get the UNREVIEWED stamp.
        """
        waivers: List[Waiver] = []
        seen = set()
        for diagnostic in diagnostics:
            key = _fingerprint(diagnostic)
            if key in seen:
                continue
            seen.add(key)
            kept = previous.match(diagnostic) if previous else None
            waivers.append(Waiver(
                rule=key[0], subject=key[1], message=key[2],
                justification=kept.justification if kept else UNREVIEWED))
        waivers.sort(key=lambda waiver: waiver.key)
        return cls(waivers)
