"""The lockset pass (rules EV401-EV404): who guards what, and where.

For every class (or module) that owns a ``threading`` lock, the pass
infers which fields that lock guards — a field's *guard* is the lock
held at its accesses — and then flags:

* ``EV401`` — a field accessed both with and without its inferred guard,
* ``EV402`` — non-atomic read-modify-write (``x += 1``,
  ``x = x + ...``) on shared state outside any lock,
* ``EV403`` — check-then-act (``if self.x is None: self.x = ...``)
  outside any lock,
* ``EV404`` — a task callable handed to a worker pool / thread that
  mutates closed-over or module-level state.

Precision choices, deliberately conservative:

* Fields written only in ``__init__`` are configuration, not shared
  mutable state — never flagged.
* ``threading.local()`` and ``contextvars.ContextVar`` fields are
  thread-confined by construction — never flagged.
* A function that touches a field *under* its guard anywhere is exempt
  from unguarded-access reports for that field: this is what makes
  double-checked locking (``if x is None: with lock: if x is None:``)
  pass clean, as it should.
* Nested function bodies do not inherit the lexically enclosing ``with
  lock:`` — they run later, on other threads, without it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..lint.pysource import attr_chain
from ..lint.registry import Findings, Rule, Severity, register
from .model import (LockTracker, MUTATOR_METHODS, Scope, SourceModule,
                    is_dunder_init, scopes)

register(Rule(
    "EV401", "selfcheck", Severity.WARNING,
    "field accessed both with and without its inferred guarding lock",
    bad="import threading\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []\n"
        "    def add(self, x):\n"
        "        with self._lock:\n"
        "            self._items.append(x)\n"
        "    def drain(self):\n"
        "        with self._lock:\n"
        "            self._items.clear()\n"
        "    def first(self):\n"
        "        return self._items[0]\n",
    good="import threading\n"
         "class Box:\n"
         "    def __init__(self):\n"
         "        self._lock = threading.Lock()\n"
         "        self._items = []\n"
         "    def add(self, x):\n"
         "        with self._lock:\n"
         "            self._items.append(x)\n"
         "    def drain(self):\n"
         "        with self._lock:\n"
         "            self._items.clear()\n"
         "    def first(self):\n"
         "        with self._lock:\n"
         "            return self._items[0]\n"))
register(Rule(
    "EV402", "selfcheck", Severity.WARNING,
    "non-atomic read-modify-write on shared state outside any lock",
    bad="import threading\n"
        "class Stats:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.count = 0\n"
        "    def hit(self):\n"
        "        self.count += 1\n",
    good="import threading\n"
         "class Stats:\n"
         "    def __init__(self):\n"
         "        self._lock = threading.Lock()\n"
         "        self.count = 0\n"
         "    def hit(self):\n"
         "        with self._lock:\n"
         "            self.count += 1\n"))
register(Rule(
    "EV403", "selfcheck", Severity.WARNING,
    "check-then-act on shared state outside any lock",
    bad="import threading\n"
        "class Conn:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._conn = None\n"
        "    def get(self):\n"
        "        if self._conn is None:\n"
        "            self._conn = object()\n"
        "        return self._conn\n",
    good="import threading\n"
         "class Conn:\n"
         "    def __init__(self):\n"
         "        self._lock = threading.Lock()\n"
         "        self._conn = None\n"
         "    def get(self):\n"
         "        if self._conn is None:\n"
         "            with self._lock:\n"
         "                if self._conn is None:\n"
         "                    self._conn = object()\n"
         "        return self._conn\n"))
register(Rule(
    "EV404", "selfcheck", Severity.WARNING,
    "task callable mutates closed-over or module-level state",
    bad="def run_all(pool, items):\n"
        "    results = []\n"
        "    def work(item):\n"
        "        results.append(item * 2)\n"
        "    pool.map(work, items)\n"
        "    return results\n",
    good="def run_all(pool, items):\n"
         "    return pool.map(lambda item: item * 2, items)\n"))


@dataclass
class _Access:
    field: str
    fn: ast.AST               # the scope function containing the access
    fn_name: str
    node: ast.AST
    write: bool
    rmw: bool
    held: frozenset
    in_init: bool


class _AccessCollector(LockTracker):
    """Collects every access to a scope's shared fields in one function."""

    def __init__(self, scope: Scope, fn: ast.AST, fn_name: str,
                 module_globals: Set[str]) -> None:
        super().__init__(scope)
        self.fn = fn
        self.fn_name = fn_name
        self.in_init = is_dunder_init(fn)
        self.module_globals = module_globals
        self.accesses: List[_Access] = []
        self.checks: List[Tuple[ast.If, str, frozenset]] = []
        self._rmw_nodes: Set[int] = set()
        self._seen: Set[Tuple[str, int, bool]] = set()

    # -- field resolution --------------------------------------------------

    def _field_of(self, node: ast.AST) -> Optional[str]:
        """The scope field an expression touches, or None."""
        if self.scope.is_class:
            chain = attr_chain(node)
            if chain and len(chain) >= 2 and chain[0] == "self":
                return chain[1]
            return None
        if isinstance(node, ast.Name) and node.id in self.module_globals:
            return node.id
        return None

    def _record(self, field: Optional[str], node: ast.AST, write: bool,
                rmw: bool = False) -> None:
        if field is None or field in self.scope.locks \
                or field in self.scope.confined:
            return
        key = (field, getattr(node, "lineno", 0), write)
        if key in self._seen:
            return
        self._seen.add(key)
        self.accesses.append(_Access(
            field=field, fn=self.fn, fn_name=self.fn_name, node=node,
            write=write, rmw=rmw, held=frozenset(self.held),
            in_init=self.in_init))

    # -- classification ----------------------------------------------------

    def handle_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.AugAssign):
            self._rmw_nodes.add(id(node.target))
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            # `x = x + 1` spelled out is the same read-modify-write.
            target_field = self._target_field(node.targets[0])
            if target_field is not None and any(
                    self._field_of(read) == target_field
                    for read in ast.walk(node.value)
                    if isinstance(read, (ast.Attribute, ast.Name))):
                self._rmw_nodes.add(id(node.targets[0]))
        elif isinstance(node, ast.Attribute):
            if self.scope.is_class:
                field = self._field_of(node)
                if field is not None:
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        self._record(field, node, write=True,
                                     rmw=id(node) in self._rmw_nodes)
                    else:
                        self._record(field, node, write=False)
        elif isinstance(node, ast.Name):
            if not self.scope.is_class:
                field = self._field_of(node)
                if field is not None:
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        self._record(field, node, write=True,
                                     rmw=id(node) in self._rmw_nodes)
                    else:
                        self._record(field, node, write=False)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record(self._field_of(node.value), node, write=True,
                         rmw=id(node) in self._rmw_nodes)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS:
            self._record(self._field_of(node.func.value), node, write=True)
        elif isinstance(node, ast.If):
            self._note_check_then_act(node)

    def _target_field(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            return self._field_of(target.value)
        return self._field_of(target)

    def _note_check_then_act(self, node: ast.If) -> None:
        if self.held or self.in_init:
            return
        tested = {self._field_of(read)
                  for read in ast.walk(node.test)
                  if isinstance(read, (ast.Attribute, ast.Name))}
        tested.discard(None)
        if not tested:
            return
        written = set()
        for child in node.body:
            for statement in ast.walk(child):
                if isinstance(statement, (ast.Assign, ast.AugAssign,
                                          ast.AnnAssign)):
                    targets = (statement.targets
                               if isinstance(statement, ast.Assign)
                               else [statement.target])
                    for target in targets:
                        written.add(self._target_field(target))
        for field in sorted(tested & written):
            if field and field not in self.scope.locks \
                    and field not in self.scope.confined:
                self.checks.append((node, field, frozenset(self.held)))


def _scope_fn_name(scope: Scope, fn: ast.AST) -> str:
    name = getattr(fn, "name", "<lambda>")
    return "%s.%s" % (scope.name, name) if scope.name else name


def _infer_guard(accesses: List[_Access]) -> Optional[str]:
    """The lock most often held at this field's accesses, with evidence.

    Evidence bar: the candidate must guard at least one write outside
    ``__init__``, or at least two accesses overall — one incidental read
    under an unrelated lock does not make that lock the guard.
    """
    counts: Dict[str, int] = {}
    for access in accesses:
        for lock in access.held:
            counts[lock] = counts.get(lock, 0) + 1
    if not counts:
        return None
    guard = max(sorted(counts), key=lambda lock: counts[lock])
    guarded = [a for a in accesses if guard in a.held]
    if any(a.write and not a.in_init for a in guarded) or len(guarded) >= 2:
        return guard
    return None


def check_lockset(module: SourceModule, findings: Findings) -> None:
    """Run EV401-EV403 over every lock-owning scope in the file."""
    module_globals = _module_globals(module.tree)
    for scope in scopes(module):
        if not scope.locks:
            continue
        accesses: List[_Access] = []
        checks: List[Tuple[str, ast.If, str, frozenset, ast.AST]] = []
        guarded_fns: Dict[str, Set[ast.AST]] = {}
        for fn in scope.functions:
            collector = _AccessCollector(scope, fn, _scope_fn_name(scope, fn),
                                         module_globals)
            for statement in fn.body:
                collector.visit(statement)
            accesses.extend(collector.accesses)
            for node, field, held in collector.checks:
                checks.append((collector.fn_name, node, field, held, fn))
        for access in accesses:
            if access.held:
                guarded_fns.setdefault(access.field, set()).add(access.fn)

        by_field: Dict[str, List[_Access]] = {}
        for access in accesses:
            by_field.setdefault(access.field, []).append(access)

        for field in sorted(by_field):
            field_accesses = by_field[field]
            if not any(a.write and not a.in_init for a in field_accesses):
                continue  # written only in __init__: configuration
            guard = _infer_guard(field_accesses)
            exempt = guarded_fns.get(field, set())
            if guard is not None:
                for access in field_accesses:
                    if access.in_init or guard in access.held \
                            or access.fn in exempt:
                        continue
                    findings.add(
                        "EV401",
                        "%s: %s %r without holding %s, which guards its "
                        "other accesses"
                        % (access.fn_name,
                           "writes" if access.write else "reads",
                           _describe(scope, field),
                           scope.describe_lock(guard)),
                        span=module.span(access.node),
                        line=getattr(access.node, "lineno", 0))
            else:
                for access in field_accesses:
                    if access.rmw and not access.held and not access.in_init:
                        findings.add(
                            "EV402",
                            "%s: non-atomic read-modify-write of %r "
                            "outside any lock"
                            % (access.fn_name, _describe(scope, field)),
                            span=module.span(access.node),
                            line=getattr(access.node, "lineno", 0))
                for fn_name, node, check_field, held, fn in checks:
                    if check_field != field or held:
                        continue
                    if fn in guarded_fns.get(field, set()):
                        continue  # double-checked locking
                    findings.add(
                        "EV403",
                        "%s: check-then-act on %r outside any lock; "
                        "another thread can interleave between the test "
                        "and the update"
                        % (fn_name, _describe(scope, field)),
                        span=module.span(node.test),
                        line=getattr(node, "lineno", 0))


def _describe(scope: Scope, field: str) -> str:
    return ("self.%s" % field) if scope.is_class else field


def _module_globals(tree: ast.Module) -> Set[str]:
    """Names that live at module scope and get rebound somewhere."""
    names: Set[str] = set()
    for item in tree.body:
        targets: List[ast.AST] = []
        if isinstance(item, ast.Assign):
            targets = list(item.targets)
        elif isinstance(item, (ast.AnnAssign, ast.AugAssign)):
            targets = [item.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


# -- EV404: task callables ----------------------------------------------------

#: Call attribute names that hand work to other threads.
_SPAWN_METHODS = frozenset({"map", "submit", "apply_async"})

#: Substrings of the receiver chain that mark it as a pool/executor.
_POOL_HINTS = ("pool", "executor")


def _task_callable_args(node: ast.Call) -> List[ast.AST]:
    """The callable expressions this call hands to worker threads."""
    chain = attr_chain(node.func)
    if not chain:
        return []
    if chain[-1] in _SPAWN_METHODS and len(chain) >= 2:
        receiver = ".".join(chain[:-1]).lower()
        if any(hint in receiver for hint in _POOL_HINTS):
            return node.args[:1]
    if chain[-1] == "Thread":
        return [kw.value for kw in node.keywords if kw.arg == "target"]
    return []


class _TaskMutationChecker(ast.NodeVisitor):
    """Finds closed-over / global mutation inside one task callable."""

    def __init__(self, callable_node: ast.AST,
                 module_globals: Set[str]) -> None:
        self.module_globals = module_globals
        if isinstance(callable_node, ast.Lambda):
            self.name = "<lambda>"
            args = callable_node.args
            body: List[ast.AST] = [callable_node.body]
        else:
            self.name = callable_node.name
            args = callable_node.args
            body = list(callable_node.body)
        self.body = body
        self.locals: Set[str] = {
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
        if args.vararg:
            self.locals.add(args.vararg.arg)
        if args.kwarg:
            self.locals.add(args.kwarg.arg)
        self.escaped: Set[str] = set()  # nonlocal/global declarations
        for child in body:
            for node in ast.walk(child):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    self.escaped.update(node.names)
                elif isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Store):
                    self.locals.add(node.id)
        self.locals -= self.escaped
        self.mutated: List[Tuple[str, ast.AST]] = []
        self._seen: Set[str] = set()

    def check(self) -> List[Tuple[str, ast.AST]]:
        for child in self.body:
            self.visit(child)
        return self.mutated

    def _flag(self, root: Optional[str], node: ast.AST) -> None:
        if root is None or root in self.locals or root in self._seen:
            return
        self._seen.add(root)
        self.mutated.append((root, node))

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) \
                and node.id in self.escaped:
            self._flag(node.id, node)
        self.generic_visit(node)

    def _root(self, node: ast.AST) -> Optional[str]:
        chain = attr_chain(node)
        return chain[0] if chain else None

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._flag(self._root(node.value), node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            root = self._root(node.value)
            if root != "self":
                self._flag(root, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS:
            self._flag(self._root(node.func.value), node)
        self.generic_visit(node)


def check_task_callables(module: SourceModule, findings: Findings) -> None:
    """EV404 over every function that spawns tasks onto other threads."""
    module_globals = _module_globals(module.tree)
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nested: Dict[str, ast.AST] = {
            child.name: child for child in ast.walk(fn)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not fn}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            for task in _task_callable_args(node):
                target: Optional[ast.AST] = None
                if isinstance(task, ast.Lambda):
                    target = task
                elif isinstance(task, ast.Name) and task.id in nested:
                    target = nested[task.id]
                if target is None:
                    continue
                checker = _TaskMutationChecker(target, module_globals)
                for root, site in checker.check():
                    findings.add(
                        "EV404",
                        "%s: task callable %r mutates closed-over %r; it "
                        "runs on worker threads without synchronization"
                        % (fn.name, checker.name, root),
                        span=module.span(site),
                        line=getattr(site, "lineno", 0))
