"""SelfCheck: static concurrency & resource analysis of EasyView itself.

The ``EV1xx``–``EV3xx`` lint families vet *user* artifacts (formulas,
callbacks, profiles); this package turns the same diagnostic machinery on
the codebase that hosts them.  Three AST passes over repo source:

* :mod:`~repro.sa.lockset` (``EV401``–``EV404``) — infers which lock
  guards which field and flags inconsistently-guarded access, non-atomic
  read-modify-write, check-then-act, and task callables mutating shared
  state;
* :mod:`~repro.sa.blocking` (``EV411``–``EV412``) — blocking I/O while
  holding a lock or inside a hot tracer span;
* :mod:`~repro.sa.resources` (``EV421``–``EV422``) — persistence writes
  that bypass :mod:`repro.core.atomicio`, and leaked file handles.

Findings are ordinary ProfLint diagnostics: ``easyview selfcheck`` gates
on them (exit 1 on anything the checked-in ``SELFCHECK_BASELINE.json``
does not waive), CI runs that gate on ``src/``, and the PVP
``view/selfcheck`` request publishes them as ``ide/publishDiagnostics``
squiggles on repo source.  The rule catalog lives in
``docs/SELFCHECK.md``.
"""

from .baseline import (BaselineError, Baseline, DEFAULT_BASELINE, UNREVIEWED,
                       Waiver)
from .blocking import check_blocking, classify_blocking, is_hot_span
from .lockset import check_lockset, check_task_callables
from .model import (LOCK_FACTORIES, LockTracker, MUTATOR_METHODS, Scope,
                    SourceModule, THREAD_CONFINED_FACTORIES, scopes)
from .resources import check_resources, in_persistence_scope
from .runner import (SelfCheckResult, analyze_file, analyze_paths,
                     analyze_source, iter_python_files, normalize_subject,
                     run_selfcheck)

__all__ = [
    "Baseline", "BaselineError", "DEFAULT_BASELINE", "UNREVIEWED", "Waiver",
    "LOCK_FACTORIES", "LockTracker", "MUTATOR_METHODS", "Scope",
    "SourceModule", "THREAD_CONFINED_FACTORIES", "scopes",
    "check_blocking", "check_lockset", "check_resources",
    "check_task_callables", "classify_blocking", "in_persistence_scope",
    "is_hot_span",
    "SelfCheckResult", "analyze_file", "analyze_paths", "analyze_source",
    "iter_python_files", "normalize_subject", "run_selfcheck",
]
