"""The source model SelfCheck analyzers share.

A :class:`SourceModule` wraps one parsed Python file (source text, AST,
line offsets, display subject).  On top of it, this module provides the
two inferences every pass needs:

* **lock discovery** — which attributes of a class (or globals of a
  module) hold ``threading.Lock``/``RLock``/``Condition``/``Semaphore``
  objects, and
* **lock tracking** — a statement walker that knows, at every AST node,
  which of those locks are lexically held (``with self._lock:`` bodies,
  including multi-item ``with`` statements), and that correctly *resets*
  the held set inside nested function definitions, whose bodies run
  later, outside the lock.

Thread-confined state is recognized and exempted here once for all
passes: attributes holding ``threading.local()`` or
``contextvars.ContextVar(...)`` are not shared state however they are
accessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint.pysource import attr_chain, line_offsets, node_span

#: Constructor attributes that mean "this is a lock object".
LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Constructor attributes that mean "this state is thread-confined".
THREAD_CONFINED_FACTORIES = frozenset({"local", "ContextVar"})


def _factory_name(value: ast.AST) -> Optional[str]:
    """``threading.Lock()`` / ``Lock()`` → ``"Lock"`` (None otherwise)."""
    if not isinstance(value, ast.Call):
        return None
    chain = attr_chain(value.func)
    if not chain:
        return None
    return chain[-1]


@dataclass
class SourceModule:
    """One parsed file: text, AST, offsets, and its display subject."""

    subject: str
    source: str
    tree: ast.Module
    offsets: List[int] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, subject: str) -> "SourceModule":
        return cls(subject=subject, source=source,
                   tree=ast.parse(source), offsets=line_offsets(source))

    def span(self, node: ast.AST):
        return node_span(node, self.offsets)


@dataclass
class Scope:
    """A class body or a module top level, viewed as a lock domain.

    ``locks`` are the attribute/global names bound to lock objects in
    this scope; ``confined`` the names bound to thread-local or
    contextvar state; ``functions`` the scope's directly-owned callables
    (methods for a class scope, top-level functions for a module scope).
    """

    name: str                      # "" for the module scope
    is_class: bool
    node: ast.AST
    locks: Set[str] = field(default_factory=set)
    confined: Set[str] = field(default_factory=set)
    functions: List[ast.AST] = field(default_factory=list)

    @property
    def base(self) -> Optional[str]:
        """The receiver name lock chains hang off: ``self`` for classes,
        None (bare globals) for the module scope."""
        return "self" if self.is_class else None

    def describe_lock(self, lock: str) -> str:
        return ("self.%s" % lock) if self.is_class else lock


def _collect_class_scope(node: ast.ClassDef) -> Scope:
    scope = Scope(name=node.name, is_class=True, node=node)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.functions.append(item)
    # Lock fields can be assigned in any method (usually __init__).
    for assign in ast.walk(node):
        if isinstance(assign, ast.Assign):
            targets = assign.targets
        elif isinstance(assign, ast.AnnAssign) and assign.value is not None:
            targets = [assign.target]
        else:
            continue
        factory = _factory_name(assign.value)
        if factory is None:
            continue
        for target in targets:
            chain = attr_chain(target)
            if chain is None or len(chain) != 2 or chain[0] != "self":
                continue
            if factory in LOCK_FACTORIES:
                scope.locks.add(chain[1])
            elif factory in THREAD_CONFINED_FACTORIES:
                scope.confined.add(chain[1])
    return scope


def _collect_module_scope(tree: ast.Module) -> Scope:
    scope = Scope(name="", is_class=False, node=tree)
    for item in tree.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.functions.append(item)
        elif isinstance(item, (ast.Assign, ast.AnnAssign)):
            value = item.value
            if value is None:
                continue
            factory = _factory_name(value)
            if factory is None:
                continue
            targets = (item.targets if isinstance(item, ast.Assign)
                       else [item.target])
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if factory in LOCK_FACTORIES:
                    scope.locks.add(target.id)
                elif factory in THREAD_CONFINED_FACTORIES:
                    scope.confined.add(target.id)
    return scope


def scopes(module: SourceModule) -> Iterator[Scope]:
    """Every lock domain in the file: the module itself, then classes.

    Nested classes are found too (``ast.walk``); a scope with no locks
    is still yielded so passes can decide their own applicability.
    """
    yield _collect_module_scope(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            yield _collect_class_scope(node)


def lock_key(scope: Scope, expr: ast.AST) -> Optional[str]:
    """The scope lock named by a ``with`` item (or acquire call), if any.

    ``self._lock`` in a class scope → ``"_lock"``; a bare module global
    ``_lock`` in the module scope → ``"_lock"``.
    """
    chain = attr_chain(expr)
    if chain is None:
        return None
    if scope.is_class:
        if len(chain) == 2 and chain[0] == "self" and chain[1] in scope.locks:
            return chain[1]
    else:
        if len(chain) == 1 and chain[0] in scope.locks:
            return chain[0]
    return None


class LockTracker(ast.NodeVisitor):
    """A function-body walker that maintains the lexically-held lock set.

    Subclasses override the ``handle_*`` hooks; the tracker guarantees:

    * ``self.held`` is the set of scope locks held at the visited node,
    * nested ``def``/``lambda`` bodies are visited with an *empty* held
      set (their bodies execute later, when the lock is gone), and
    * ``self.took_lock_for`` records, per function, every lock the
      function acquires at any point — the raw material for the
      double-checked-locking exemption.
    """

    def __init__(self, scope: Scope) -> None:
        self.scope = scope
        self.held: Set[str] = set()
        self.took_locks: Set[str] = set()

    # -- hooks -------------------------------------------------------------

    def handle_node(self, node: ast.AST) -> None:
        """Called for every visited node with ``self.held`` current."""

    def enter_function(self, node: ast.AST) -> None:
        """Called when descending into a nested function/lambda."""

    def leave_function(self, node: ast.AST) -> None:
        """Called when leaving a nested function/lambda."""

    # -- traversal ---------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            key = lock_key(self.scope, item.context_expr)
            if key is not None and key not in self.held:
                acquired.append(key)
            self.handle_node(item.context_expr)
            self.visit(item.context_expr)
        self.held.update(acquired)
        self.took_locks.update(acquired)
        for statement in node.body:
            self.visit(statement)
        self.held.difference_update(acquired)

    visit_AsyncWith = visit_With

    def _visit_nested(self, node: ast.AST, body) -> None:
        self.enter_function(node)
        saved = self.held
        self.held = set()
        try:
            for child in body:
                self.visit(child)
        finally:
            self.held = saved
            self.leave_function(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node, node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node, node.body)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node, [node.body])

    def generic_visit(self, node: ast.AST) -> None:
        self.handle_node(node)
        super().generic_visit(node)


#: Method names whose call on an object mutates it in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "sort", "reverse", "add", "discard",
    "appendleft", "popleft", "move_to_end", "write", "truncate",
})


def is_dunder_init(fn: ast.AST) -> bool:
    return isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) \
        and fn.name == "__init__"
