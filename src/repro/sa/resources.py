"""The resource pass (rules EV421-EV422): file handles and durability.

``EV421`` — the repo's durability story (crash-safe WAL, atomic segment
and manifest replacement) rests on :mod:`repro.core.atomicio`: a write
that matters goes to a temp file, is fsynced, and is renamed into place.
A raw ``open(path, "w")`` in a persistence module truncates the
destination *before* writing — a crash mid-write leaves a torn file with
no recovery story.  The rule fires on truncating ``open`` modes inside
the persistence-scoped modules (``repro/store/``, ``repro/bench/``, and
anything named ``serialize``/``export``); the rest of the codebase, and
:mod:`repro.core.atomicio` itself, are out of scope.

``EV422`` — a handle from ``open()`` that is neither managed by ``with``,
nor stored on ``self`` (instance-owned, closed by a lifecycle method),
nor explicitly ``close()``d/returned in the same function, leaks until
the GC gets to it — on some platforms with buffered data unflushed.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..lint.pysource import attr_chain
from ..lint.registry import Findings, Rule, Severity, register
from .model import SourceModule

register(Rule(
    "EV421", "selfcheck", Severity.WARNING,
    "persistence write bypasses atomicio (truncate-then-write)",
    bad="import json\n"
        "def save_manifest(path, payload):\n"
        "    with open(path, 'w') as handle:\n"
        "        json.dump(payload, handle)\n",
    good="import json\n"
         "from repro.core.atomicio import atomic_write_text\n"
         "def save_manifest(path, payload):\n"
         "    atomic_write_text(path, json.dumps(payload))\n"))
register(Rule(
    "EV422", "selfcheck", Severity.WARNING,
    "file handle opened without with/close/ownership",
    bad="import json\n"
        "def read_config(path):\n"
        "    return json.load(open(path))\n",
    good="import json\n"
         "def read_config(path):\n"
         "    with open(path) as handle:\n"
         "        return json.load(handle)\n"))

#: Subject fragments that put a file in EV421's persistence scope.
PERSISTENCE_SCOPES = ("repro/store/", "repro/bench/")
PERSISTENCE_NAMES = ("serialize", "export")

#: Files whose whole purpose is the raw write EV421 polices.
PERSISTENCE_EXEMPT = ("atomicio",)


def in_persistence_scope(subject: str) -> bool:
    normalized = subject.replace("\\", "/")
    final = normalized.rsplit("/", 1)[-1]
    if any(name in final for name in PERSISTENCE_EXEMPT):
        return False
    if any(fragment in normalized for fragment in PERSISTENCE_SCOPES):
        return True
    return any(name in final for name in PERSISTENCE_NAMES)


def _is_open(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open")


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode argument of an ``open`` call, if one is given."""
    candidates = list(node.args[1:2])
    candidates.extend(kw.value for kw in node.keywords if kw.arg == "mode")
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) \
                and isinstance(candidate.value, str):
            return candidate.value
    return None


def _truncating(mode: Optional[str]) -> bool:
    return mode is not None and "w" in mode


class _FunctionHandles(ast.NodeVisitor):
    """Classifies every ``open()`` in one function body."""

    def __init__(self) -> None:
        self.managed: Set[int] = set()      # with-items, self.X = open(...)
        self.assigned: Dict[int, str] = {}  # open node -> local name
        self.closed: Set[str] = set()       # names .close()d
        self.escaped: Set[str] = set()      # names returned / re-with'd
        self.opens: List[ast.Call] = []

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested callables are classified on their own
        super().visit(node)

    def collect(self, body: List[ast.AST]) -> None:
        for child in body:
            self.visit(child)

    def generic_visit(self, node: ast.AST) -> None:
        if _is_open(node):
            self.opens.append(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_open(item.context_expr):
                    self.managed.add(id(item.context_expr))
                elif isinstance(item.context_expr, ast.Name):
                    self.escaped.add(item.context_expr.id)
        elif isinstance(node, ast.Assign) and _is_open(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.assigned[id(node.value)] = target.id
                elif isinstance(target, ast.Attribute):
                    # Instance-owned: `self._handle = open(...)` pairs
                    # with a close() elsewhere in the class lifecycle.
                    self.managed.add(id(node.value))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "close" \
                and isinstance(node.func.value, ast.Name):
            self.closed.add(node.func.value.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            for name in ast.walk(node.value):
                if isinstance(name, ast.Name):
                    self.escaped.add(name.id)
        super().generic_visit(node)

    def leaks(self) -> List[ast.Call]:
        out = []
        for call in self.opens:
            if id(call) in self.managed:
                continue
            name = self.assigned.get(id(call))
            if name is not None and (name in self.closed
                                     or name in self.escaped):
                continue
            out.append(call)
        return out


def _function_name(owner: Optional[ast.ClassDef], fn: ast.AST) -> str:
    name = getattr(fn, "name", "<lambda>")
    return "%s.%s" % (owner.name, name) if owner is not None else name


def check_resources(module: SourceModule, findings: Findings) -> None:
    """Run EV421/EV422 over every function in the file."""
    persistence = in_persistence_scope(module.subject)
    owners: Dict[int, ast.ClassDef] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    owners.setdefault(id(child), node)
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fn_name = _function_name(owners.get(id(fn)), fn)
        handles = _FunctionHandles()
        handles.collect(list(fn.body))
        if persistence:
            for call in handles.opens:
                mode = _open_mode(call)
                if _truncating(mode):
                    findings.add(
                        "EV421",
                        "%s: open(..., %r) truncates in place; "
                        "persistence writes go through "
                        "repro.core.atomicio so a crash mid-write "
                        "cannot tear the file" % (fn_name, mode),
                        span=module.span(call),
                        line=getattr(call, "lineno", 0))
        for call in handles.leaks():
            findings.add(
                "EV422",
                "%s: open() handle is never closed; use `with open(...)` "
                "or close it on every path" % fn_name,
                span=module.span(call),
                line=getattr(call, "lineno", 0))
