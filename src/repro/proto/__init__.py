"""From-scratch Protocol Buffers wire codec plus the two schemas EasyView
speaks: its own generic profile representation and pprof's profile.proto."""

from . import easyview_pb, pprof_pb, wire
from .wire import WireError

__all__ = ["wire", "pprof_pb", "easyview_pb", "WireError"]
