"""The pre-fastwire codec, preserved as an executable specification.

When :mod:`repro.proto.fastwire` replaced the original chunk-list writer
and per-call varint decoders on every hot path, the original
implementations moved here instead of being deleted.  They serve three
jobs:

1. **Correctness oracle** — ``tests/test_proto_fastwire.py`` asserts that
   the fast path produces byte-identical encodes and equal decoded
   objects against this module on every fixture and on
   hypothesis-generated messages.
2. **Benchmark baseline** — ``benchmarks/test_codec_fastpath.py`` and
   ``easyview bench codec`` measure the fast path's speedup against this
   codec (the documented target: ≥3x decode on the large pprof tier).
3. **CI gate** — the ``codec-bench`` workflow job fails if the fast path
   ever diverges from this module on the fixture corpus.

Nothing in the production tree imports this module; changing it should
only ever mean documenting a semantic the fast path must also adopt.

The scalar primitives (``encode_varint`` and friends) live on unchanged
in :mod:`repro.proto.wire`; this module reuses them and keeps the
composite pieces the fast path replaced: the chunk-list :class:`Writer`,
the per-field :func:`iter_fields` / :func:`decode_packed_varints`
decoders, and the original message codecs for both schemas plus the
store's WAL payload and segment footer encodings.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

from .wire import (WIRETYPE_FIXED32, WIRETYPE_FIXED64,
                   WIRETYPE_LENGTH_DELIMITED, WIRETYPE_VARINT, WireError,
                   decode_bytes, decode_fixed32, decode_fixed64,
                   decode_signed_varint, decode_tag, encode_bytes,
                   encode_double, encode_string, encode_tag, encode_varint,
                   zigzag_encode)
from . import easyview_pb, pprof_pb

_DOUBLE_ZERO = encode_double(0.0)
_UINT64_MASK = (1 << 64) - 1


def iter_fields(data: bytes) -> Iterator[Tuple[int, int, object]]:
    """The original field iterator: one decoder call per varint."""
    pos = 0
    end = len(data)
    while pos < end:
        field_number, wire_type, pos = decode_tag(data, pos)
        if wire_type == WIRETYPE_VARINT:
            value, pos = _decode_varint(data, pos)
        elif wire_type == WIRETYPE_FIXED64:
            value, pos = decode_fixed64(data, pos)
        elif wire_type == WIRETYPE_LENGTH_DELIMITED:
            value, pos = decode_bytes(data, pos)
        elif wire_type == WIRETYPE_FIXED32:
            value, pos = decode_fixed32(data, pos)
        else:
            raise WireError("unsupported wire type %d for field %d"
                            % (wire_type, field_number))
        yield field_number, wire_type, value


def _decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    from .wire import decode_varint
    return decode_varint(data, pos)


def decode_packed_varints(payload: bytes) -> List[int]:
    """The original packed decoder: one function call per value."""
    values: List[int] = []
    pos = 0
    end = len(payload)
    while pos < end:
        value, pos = decode_signed_varint(payload, pos)
        values.append(value)
    return values


def encode_packed_varints(values: List[int]) -> bytes:
    """The original packed encoder (length-prefixed body)."""
    body = b"".join(encode_varint(v & _UINT64_MASK) for v in values)
    return encode_bytes(body)


class Writer:
    """The original chunk-list message writer.

    Accumulates each encoded field as a separate ``bytes`` object and
    joins them at the end — the child-bytes-then-copy pattern the
    fastwire writer replaced.  ``__len__`` tracks a running total as
    chunks are appended instead of recomputing a sum per call (the one
    fix applied here, since byte output is unaffected).
    """

    def __init__(self, emit_defaults: bool = False) -> None:
        self._chunks: List[bytes] = []
        self._length = 0
        self._emit_defaults = emit_defaults

    def _append(self, chunk: bytes) -> None:
        self._chunks.append(chunk)
        self._length += len(chunk)

    def varint(self, field_number: int, value: int) -> "Writer":
        if value or self._emit_defaults:
            self._append(encode_tag(field_number, WIRETYPE_VARINT))
            self._append(encode_varint(int(value) & _UINT64_MASK))
        return self

    def sint(self, field_number: int, value: int) -> "Writer":
        if value or self._emit_defaults:
            self._append(encode_tag(field_number, WIRETYPE_VARINT))
            self._append(encode_varint(zigzag_encode(value)))
        return self

    def double(self, field_number: int, value: float) -> "Writer":
        if self._emit_defaults or encode_double(value) != _DOUBLE_ZERO:
            self._append(encode_tag(field_number, WIRETYPE_FIXED64))
            self._append(encode_double(value))
        return self

    def bytes(self, field_number: int, value: bytes) -> "Writer":
        if value or self._emit_defaults:
            self._append(encode_tag(field_number, WIRETYPE_LENGTH_DELIMITED))
            self._append(encode_bytes(value))
        return self

    def string(self, field_number: int, value: str) -> "Writer":
        if value or self._emit_defaults:
            self._append(encode_tag(field_number, WIRETYPE_LENGTH_DELIMITED))
            self._append(encode_string(value))
        return self

    def message(self, field_number: int, payload: bytes) -> "Writer":
        self._append(encode_tag(field_number, WIRETYPE_LENGTH_DELIMITED))
        self._append(encode_bytes(payload))
        return self

    def packed(self, field_number: int, values: List[int]) -> "Writer":
        if values:
            self._append(encode_tag(field_number, WIRETYPE_LENGTH_DELIMITED))
            self._append(encode_packed_varints(values))
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def __len__(self) -> int:
        return self._length


def _as_int64(value: object) -> int:
    if not isinstance(value, int):
        raise WireError("expected numeric field, got length-delimited")
    result = int(value)
    if result >= 1 << 63:
        result -= 1 << 64
    return result


def _repeated_int(value: object, wtype: int) -> List[int]:
    if wtype == WIRETYPE_LENGTH_DELIMITED:
        assert isinstance(value, bytes)
        return decode_packed_varints(value)
    return [_as_int64(value)]


# --------------------------------------------------------------------------
# pprof profile.proto (original message codec)
# --------------------------------------------------------------------------

def _serialize_value_type(vt: pprof_pb.ValueType) -> bytes:
    return (Writer().varint(1, vt.type).varint(2, vt.unit).getvalue())


def _parse_value_type(data: bytes) -> pprof_pb.ValueType:
    msg = pprof_pb.ValueType()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.type = _as_int64(value)
        elif num == 2:
            msg.unit = _as_int64(value)
    return msg


def _serialize_label(lbl: pprof_pb.Label) -> bytes:
    return (Writer().varint(1, lbl.key).varint(2, lbl.str)
            .varint(3, lbl.num).varint(4, lbl.num_unit).getvalue())


def _parse_label(data: bytes) -> pprof_pb.Label:
    msg = pprof_pb.Label()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.key = _as_int64(value)
        elif num == 2:
            msg.str = _as_int64(value)
        elif num == 3:
            msg.num = _as_int64(value)
        elif num == 4:
            msg.num_unit = _as_int64(value)
    return msg


def _serialize_sample(smp: pprof_pb.Sample) -> bytes:
    writer = Writer()
    writer.packed(1, smp.location_id)
    writer.packed(2, smp.value)
    for lbl in smp.label:
        writer.message(3, _serialize_label(lbl))
    return writer.getvalue()


def _parse_sample(data: bytes) -> pprof_pb.Sample:
    msg = pprof_pb.Sample()
    for num, wtype, value in iter_fields(data):
        if num == 1:
            msg.location_id.extend(_repeated_int(value, wtype))
        elif num == 2:
            msg.value.extend(_repeated_int(value, wtype))
        elif num == 3:
            msg.label.append(_parse_label(value))
    return msg


def _serialize_mapping(mp: pprof_pb.Mapping) -> bytes:
    return (Writer()
            .varint(1, mp.id).varint(2, mp.memory_start)
            .varint(3, mp.memory_limit).varint(4, mp.file_offset)
            .varint(5, mp.filename).varint(6, mp.build_id)
            .varint(7, int(mp.has_functions))
            .varint(8, int(mp.has_filenames))
            .varint(9, int(mp.has_line_numbers))
            .varint(10, int(mp.has_inline_frames)).getvalue())


def _parse_mapping(data: bytes) -> pprof_pb.Mapping:
    msg = pprof_pb.Mapping()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.id = _as_int64(value)
        elif num == 2:
            msg.memory_start = _as_int64(value)
        elif num == 3:
            msg.memory_limit = _as_int64(value)
        elif num == 4:
            msg.file_offset = _as_int64(value)
        elif num == 5:
            msg.filename = _as_int64(value)
        elif num == 6:
            msg.build_id = _as_int64(value)
        elif num == 7:
            msg.has_functions = bool(value)
        elif num == 8:
            msg.has_filenames = bool(value)
        elif num == 9:
            msg.has_line_numbers = bool(value)
        elif num == 10:
            msg.has_inline_frames = bool(value)
    return msg


def _serialize_line(ln: pprof_pb.Line) -> bytes:
    return (Writer().varint(1, ln.function_id).varint(2, ln.line).getvalue())


def _parse_line(data: bytes) -> pprof_pb.Line:
    msg = pprof_pb.Line()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.function_id = _as_int64(value)
        elif num == 2:
            msg.line = _as_int64(value)
    return msg


def _serialize_location(loc: pprof_pb.Location) -> bytes:
    writer = (Writer().varint(1, loc.id).varint(2, loc.mapping_id)
              .varint(3, loc.address))
    for ln in loc.line:
        writer.message(4, _serialize_line(ln))
    writer.varint(5, int(loc.is_folded))
    return writer.getvalue()


def _parse_location(data: bytes) -> pprof_pb.Location:
    msg = pprof_pb.Location()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.id = _as_int64(value)
        elif num == 2:
            msg.mapping_id = _as_int64(value)
        elif num == 3:
            msg.address = _as_int64(value)
        elif num == 4:
            msg.line.append(_parse_line(value))
        elif num == 5:
            msg.is_folded = bool(value)
    return msg


def _serialize_function(fn: pprof_pb.Function) -> bytes:
    return (Writer()
            .varint(1, fn.id).varint(2, fn.name).varint(3, fn.system_name)
            .varint(4, fn.filename).varint(5, fn.start_line).getvalue())


def _parse_function(data: bytes) -> pprof_pb.Function:
    msg = pprof_pb.Function()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.id = _as_int64(value)
        elif num == 2:
            msg.name = _as_int64(value)
        elif num == 3:
            msg.system_name = _as_int64(value)
        elif num == 4:
            msg.filename = _as_int64(value)
        elif num == 5:
            msg.start_line = _as_int64(value)
    return msg


def serialize_pprof(profile: pprof_pb.Profile) -> bytes:
    """Serialize a pprof profile exactly as the original codec did."""
    writer = Writer()
    for vt in profile.sample_type:
        writer.message(1, _serialize_value_type(vt))
    for smp in profile.sample:
        writer.message(2, _serialize_sample(smp))
    for mp in profile.mapping:
        writer.message(3, _serialize_mapping(mp))
    for loc in profile.location:
        writer.message(4, _serialize_location(loc))
    for fn in profile.function:
        writer.message(5, _serialize_function(fn))
    for s in profile.string_table:
        writer.message(6, s.encode("utf-8"))
    writer.varint(7, profile.drop_frames)
    writer.varint(8, profile.keep_frames)
    writer.varint(9, profile.time_nanos)
    writer.varint(10, profile.duration_nanos)
    if profile.period_type.type or profile.period_type.unit:
        writer.message(11, _serialize_value_type(profile.period_type))
    writer.varint(12, profile.period)
    writer.packed(13, profile.comment)
    writer.varint(14, profile.default_sample_type)
    return writer.getvalue()


def parse_pprof(data: bytes) -> pprof_pb.Profile:
    """Parse a raw (uncompressed) pprof payload with the original codec."""
    msg = pprof_pb.Profile(string_table=[])
    for num, wtype, value in iter_fields(bytes(data)):
        if num == 1:
            msg.sample_type.append(_parse_value_type(value))
        elif num == 2:
            msg.sample.append(_parse_sample(value))
        elif num == 3:
            msg.mapping.append(_parse_mapping(value))
        elif num == 4:
            msg.location.append(_parse_location(value))
        elif num == 5:
            msg.function.append(_parse_function(value))
        elif num == 6:
            msg.string_table.append(value.decode("utf-8"))
        elif num == 7:
            msg.drop_frames = _as_int64(value)
        elif num == 8:
            msg.keep_frames = _as_int64(value)
        elif num == 9:
            msg.time_nanos = _as_int64(value)
        elif num == 10:
            msg.duration_nanos = _as_int64(value)
        elif num == 11:
            msg.period_type = _parse_value_type(value)
        elif num == 12:
            msg.period = _as_int64(value)
        elif num == 13:
            msg.comment.extend(_repeated_int(value, wtype))
        elif num == 14:
            msg.default_sample_type = _as_int64(value)
    if not msg.string_table:
        msg.string_table = [""]
    return msg


# --------------------------------------------------------------------------
# EasyView profile schema (original message codec)
# --------------------------------------------------------------------------

def _serialize_metric_descriptor(md: easyview_pb.MetricDescriptor) -> bytes:
    return (Writer().varint(1, md.name).varint(2, md.unit)
            .varint(3, md.description).varint(4, md.aggregation).getvalue())


def _parse_metric_descriptor(data: bytes) -> easyview_pb.MetricDescriptor:
    msg = easyview_pb.MetricDescriptor()
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.name = int(value)
        elif num == 2:
            msg.unit = int(value)
        elif num == 3:
            msg.description = int(value)
        elif num == 4:
            msg.aggregation = int(value)
    return msg


def _serialize_context_node(node: easyview_pb.ContextNode) -> bytes:
    return (Writer()
            .varint(1, node.id).varint(2, node.parent_id)
            .varint(3, node.kind).varint(4, node.name)
            .varint(5, node.file).varint(6, node.line)
            .varint(7, node.module).varint(8, node.address).getvalue())


def _parse_context_node(data: bytes) -> easyview_pb.ContextNode:
    msg = easyview_pb.ContextNode(kind=easyview_pb.CONTEXT_ROOT)
    for num, _, value in iter_fields(data):
        if num == 1:
            msg.id = int(value)
        elif num == 2:
            msg.parent_id = int(value)
        elif num == 3:
            msg.kind = int(value)
        elif num == 4:
            msg.name = int(value)
        elif num == 5:
            msg.file = int(value)
        elif num == 6:
            msg.line = int(value)
        elif num == 7:
            msg.module = int(value)
        elif num == 8:
            msg.address = int(value)
    return msg


def _serialize_metric_value(mv: easyview_pb.MetricValue) -> bytes:
    return (Writer().varint(1, mv.metric_id).double(2, mv.value).getvalue())


def _parse_metric_value(data: bytes) -> easyview_pb.MetricValue:
    import struct
    msg = easyview_pb.MetricValue()
    for num, wtype, value in iter_fields(data):
        if num == 1:
            msg.metric_id = int(value)
        elif num == 2:
            if wtype != WIRETYPE_FIXED64:
                raise WireError("MetricValue.value must be a double")
            msg.value = struct.unpack(
                "<d", struct.pack("<Q", int(value) & _UINT64_MASK))[0]
    return msg


def _serialize_point(point: easyview_pb.MonitoringPoint) -> bytes:
    writer = Writer()
    writer.packed(1, point.context_id)
    for mv in point.values:
        writer.message(2, _serialize_metric_value(mv))
    writer.varint(3, point.kind)
    writer.varint(4, point.sequence)
    return writer.getvalue()


def _parse_point(data: bytes) -> easyview_pb.MonitoringPoint:
    msg = easyview_pb.MonitoringPoint()
    for num, wtype, value in iter_fields(data):
        if num == 1:
            if wtype == WIRETYPE_LENGTH_DELIMITED:
                msg.context_id.extend(decode_packed_varints(value))
            else:
                msg.context_id.append(int(value))
        elif num == 2:
            msg.values.append(_parse_metric_value(value))
        elif num == 3:
            msg.kind = int(value)
        elif num == 4:
            msg.sequence = int(value)
    return msg


def serialize_easyview(message: easyview_pb.ProfileMessage) -> bytes:
    """Serialize an EasyView message exactly as the original codec did."""
    writer = Writer()
    writer.varint(1, message.tool)
    for s in message.string_table:
        writer.message(2, s.encode("utf-8"))
    for md in message.metrics:
        writer.message(3, _serialize_metric_descriptor(md))
    for node in message.nodes:
        writer.message(4, _serialize_context_node(node))
    for point in message.points:
        writer.message(5, _serialize_point(point))
    writer.varint(6, message.time_nanos)
    writer.varint(7, message.duration_nanos)
    return writer.getvalue()


def parse_easyview(data: bytes) -> easyview_pb.ProfileMessage:
    """Parse an EasyView message body with the original codec."""
    msg = easyview_pb.ProfileMessage(string_table=[])
    for num, _, value in iter_fields(bytes(data)):
        if num == 1:
            msg.tool = int(value)
        elif num == 2:
            msg.string_table.append(value.decode("utf-8"))
        elif num == 3:
            msg.metrics.append(_parse_metric_descriptor(value))
        elif num == 4:
            msg.nodes.append(_parse_context_node(value))
        elif num == 5:
            msg.points.append(_parse_point(value))
        elif num == 6:
            msg.time_nanos = int(value)
        elif num == 7:
            msg.duration_nanos = int(value)
    if not msg.string_table:
        msg.string_table = [""]
    return msg


# --------------------------------------------------------------------------
# ProfStore encodings (original WAL payload and segment footer)
# --------------------------------------------------------------------------

def wal_payload(record) -> bytes:
    """Encode a :class:`repro.store.wal.WalRecord` payload (original form)."""
    writer = Writer()
    writer.string(1, record.service)
    writer.string(2, record.ptype)
    writer.string(3, json.dumps(record.labels, sort_keys=True)
                  if record.labels else "")
    writer.varint(4, record.time_nanos)
    writer.varint(5, record.duration_nanos)
    writer.bytes(6, record.blob)
    writer.varint(7, record.seq)
    return writer.getvalue()


def record_meta_bytes(meta) -> bytes:
    """Encode a :class:`repro.store.segment.RecordMeta` (original form)."""
    writer = Writer()
    writer.string(1, meta.service)
    writer.string(2, meta.ptype)
    writer.string(3, json.dumps(meta.labels, sort_keys=True)
                  if meta.labels else "")
    writer.varint(4, meta.time_nanos)
    writer.varint(5, meta.duration_nanos)
    writer.varint(6, meta.offset)
    writer.varint(7, meta.length)
    writer.varint(8, meta.seq)
    return writer.getvalue()


def segment_footer(strings: List[str], records, created_nanos: int) -> bytes:
    """Encode a segment footer (original form)."""
    writer = Writer()
    for text in strings:
        writer.message(1, text.encode("utf-8"))
    for meta in records:
        writer.message(2, record_meta_bytes(meta))
    writer.varint(3, created_nanos)
    return writer.getvalue()
