"""Hand-written implementation of pprof's ``profile.proto`` messages.

The message and field layout follows the canonical schema from
https://github.com/google/pprof/blob/main/proto/profile.proto, so byte
streams produced by Go's ``runtime/pprof``, ``net/http/pprof``, Google Cloud
Profiler, and ``perf``'s pprof converter all parse with this module.

Repeated scalar fields are encoded *packed* (the proto3 default) but both
packed and unpacked encodings are accepted on decode, like real protobuf
runtimes.  Profiles are conventionally gzip-compressed on disk; the
:func:`loads`/:func:`dumps` helpers handle both raw and gzipped framing.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass, field
from typing import List

from . import wire

GZIP_MAGIC = b"\x1f\x8b"


@dataclass
class ValueType:
    """A (metric type, unit) pair, both as string-table indices."""

    type: int = 0
    unit: int = 0

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.type)
                .varint(2, self.unit)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "ValueType":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.type = _as_int64(value)
            elif num == 2:
                msg.unit = _as_int64(value)
        return msg


@dataclass
class Label:
    """A key/value annotation attached to a sample."""

    key: int = 0
    str: int = 0
    num: int = 0
    num_unit: int = 0

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.key)
                .varint(2, self.str)
                .varint(3, self.num)
                .varint(4, self.num_unit)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "Label":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.key = _as_int64(value)
            elif num == 2:
                msg.str = _as_int64(value)
            elif num == 3:
                msg.num = _as_int64(value)
            elif num == 4:
                msg.num_unit = _as_int64(value)
        return msg


@dataclass
class Sample:
    """One monitoring point: a call stack (leaf first) plus metric values."""

    location_id: List[int] = field(default_factory=list)
    value: List[int] = field(default_factory=list)
    label: List[Label] = field(default_factory=list)

    def serialize(self) -> bytes:
        writer = wire.Writer()
        writer.packed(1, self.location_id)
        writer.packed(2, self.value)
        for lbl in self.label:
            writer.message(3, lbl.serialize())
        return writer.getvalue()

    @classmethod
    def parse(cls, data: bytes) -> "Sample":
        msg = cls()
        for num, wtype, value in wire.iter_fields(data):
            if num == 1:
                msg.location_id.extend(_repeated_int(value, wtype))
            elif num == 2:
                msg.value.extend(_repeated_int(value, wtype))
            elif num == 3:
                msg.label.append(Label.parse(value))
        return msg


@dataclass
class Mapping:
    """A loaded binary or shared object (load module)."""

    id: int = 0
    memory_start: int = 0
    memory_limit: int = 0
    file_offset: int = 0
    filename: int = 0
    build_id: int = 0
    has_functions: bool = False
    has_filenames: bool = False
    has_line_numbers: bool = False
    has_inline_frames: bool = False

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.id)
                .varint(2, self.memory_start)
                .varint(3, self.memory_limit)
                .varint(4, self.file_offset)
                .varint(5, self.filename)
                .varint(6, self.build_id)
                .varint(7, int(self.has_functions))
                .varint(8, int(self.has_filenames))
                .varint(9, int(self.has_line_numbers))
                .varint(10, int(self.has_inline_frames))
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "Mapping":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.id = _as_int64(value)
            elif num == 2:
                msg.memory_start = _as_int64(value)
            elif num == 3:
                msg.memory_limit = _as_int64(value)
            elif num == 4:
                msg.file_offset = _as_int64(value)
            elif num == 5:
                msg.filename = _as_int64(value)
            elif num == 6:
                msg.build_id = _as_int64(value)
            elif num == 7:
                msg.has_functions = bool(value)
            elif num == 8:
                msg.has_filenames = bool(value)
            elif num == 9:
                msg.has_line_numbers = bool(value)
            elif num == 10:
                msg.has_inline_frames = bool(value)
        return msg


@dataclass
class Line:
    """A (function, line) pair within a location; supports inlining."""

    function_id: int = 0
    line: int = 0

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.function_id)
                .varint(2, self.line)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "Line":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.function_id = _as_int64(value)
            elif num == 2:
                msg.line = _as_int64(value)
        return msg


@dataclass
class Location:
    """An instruction address attributed to one or more source lines."""

    id: int = 0
    mapping_id: int = 0
    address: int = 0
    line: List[Line] = field(default_factory=list)
    is_folded: bool = False

    def serialize(self) -> bytes:
        writer = (wire.Writer()
                  .varint(1, self.id)
                  .varint(2, self.mapping_id)
                  .varint(3, self.address))
        for ln in self.line:
            writer.message(4, ln.serialize())
        writer.varint(5, int(self.is_folded))
        return writer.getvalue()

    @classmethod
    def parse(cls, data: bytes) -> "Location":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.id = _as_int64(value)
            elif num == 2:
                msg.mapping_id = _as_int64(value)
            elif num == 3:
                msg.address = _as_int64(value)
            elif num == 4:
                msg.line.append(Line.parse(value))
            elif num == 5:
                msg.is_folded = bool(value)
        return msg


@dataclass
class Function:
    """A source-level function with name and file attribution."""

    id: int = 0
    name: int = 0
    system_name: int = 0
    filename: int = 0
    start_line: int = 0

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.id)
                .varint(2, self.name)
                .varint(3, self.system_name)
                .varint(4, self.filename)
                .varint(5, self.start_line)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "Function":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.id = _as_int64(value)
            elif num == 2:
                msg.name = _as_int64(value)
            elif num == 3:
                msg.system_name = _as_int64(value)
            elif num == 4:
                msg.filename = _as_int64(value)
            elif num == 5:
                msg.start_line = _as_int64(value)
        return msg


@dataclass
class Profile:
    """The top-level pprof profile message."""

    sample_type: List[ValueType] = field(default_factory=list)
    sample: List[Sample] = field(default_factory=list)
    mapping: List[Mapping] = field(default_factory=list)
    location: List[Location] = field(default_factory=list)
    function: List[Function] = field(default_factory=list)
    string_table: List[str] = field(default_factory=lambda: [""])
    drop_frames: int = 0
    keep_frames: int = 0
    time_nanos: int = 0
    duration_nanos: int = 0
    period_type: ValueType = field(default_factory=ValueType)
    period: int = 0
    comment: List[int] = field(default_factory=list)
    default_sample_type: int = 0

    def serialize(self) -> bytes:
        writer = wire.Writer()
        for vt in self.sample_type:
            writer.message(1, vt.serialize())
        for smp in self.sample:
            writer.message(2, smp.serialize())
        for mp in self.mapping:
            writer.message(3, mp.serialize())
        for loc in self.location:
            writer.message(4, loc.serialize())
        for fn in self.function:
            writer.message(5, fn.serialize())
        for s in self.string_table:
            # Index 0 must be "" and proto3 drops empty strings, so emit the
            # tag explicitly for every entry to keep indices stable.
            writer.message(6, s.encode("utf-8"))
        writer.varint(7, self.drop_frames)
        writer.varint(8, self.keep_frames)
        writer.varint(9, self.time_nanos)
        writer.varint(10, self.duration_nanos)
        if self.period_type.type or self.period_type.unit:
            writer.message(11, self.period_type.serialize())
        writer.varint(12, self.period)
        writer.packed(13, self.comment)
        writer.varint(14, self.default_sample_type)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: bytes) -> "Profile":
        msg = cls(string_table=[])
        for num, wtype, value in wire.iter_fields(data):
            if num == 1:
                msg.sample_type.append(ValueType.parse(value))
            elif num == 2:
                msg.sample.append(Sample.parse(value))
            elif num == 3:
                msg.mapping.append(Mapping.parse(value))
            elif num == 4:
                msg.location.append(Location.parse(value))
            elif num == 5:
                msg.function.append(Function.parse(value))
            elif num == 6:
                msg.string_table.append(value.decode("utf-8"))
            elif num == 7:
                msg.drop_frames = _as_int64(value)
            elif num == 8:
                msg.keep_frames = _as_int64(value)
            elif num == 9:
                msg.time_nanos = _as_int64(value)
            elif num == 10:
                msg.duration_nanos = _as_int64(value)
            elif num == 11:
                msg.period_type = ValueType.parse(value)
            elif num == 12:
                msg.period = _as_int64(value)
            elif num == 13:
                msg.comment.extend(_repeated_int(value, wtype))
            elif num == 14:
                msg.default_sample_type = _as_int64(value)
        if not msg.string_table:
            msg.string_table = [""]
        return msg

    # -- convenience -----------------------------------------------------

    def string(self, index: int) -> str:
        """Resolve a string-table index, tolerating out-of-range indices."""
        if 0 <= index < len(self.string_table):
            return self.string_table[index]
        return ""


def _as_int64(value: object) -> int:
    """Normalize a decoded varint/fixed value to a signed 64-bit int."""
    if isinstance(value, bytes):
        raise wire.WireError("expected numeric field, got length-delimited")
    result = int(value)  # type: ignore[arg-type]
    if result >= 1 << 63:
        result -= 1 << 64
    return result


def _repeated_int(value: object, wtype: int) -> List[int]:
    """Decode a repeated int field that may be packed or unpacked."""
    if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
        assert isinstance(value, bytes)
        return wire.decode_packed_varints(value)
    return [_as_int64(value)]


def dumps(profile: Profile, compress: bool = True) -> bytes:
    """Serialize a profile, gzip-compressed by default like pprof files."""
    raw = profile.serialize()
    if compress:
        return gzip.compress(raw, compresslevel=6)
    return raw


def loads(data: bytes) -> Profile:
    """Parse a pprof payload, transparently handling gzip framing."""
    if data[:2] == GZIP_MAGIC:
        data = gzip.decompress(data)
    return Profile.parse(data)
